//! Symbolic per-epoch lineage summaries and their hash-cons merge.
//!
//! This is lineage's ride onto the epoch-parallel pipeline (DESIGN §9,
//! §17). Each helper shard summarizes one epoch of the step stream in
//! a **private roBDD arena**, with no access to the shadow state the
//! prefix of the stream produced. The trick that keeps the summary
//! exact is that lineage is a pure union semilattice: every lineage
//! set is a union of input-index singletons, so a set that depends on
//! epoch-entry state is *exactly*
//!
//! ```text
//!   (arena node over in-epoch inputs) ∪ ⋃ entry(loc)  for loc ∈ incoming
//! ```
//!
//! — a [`SymSet`]: one shard-local roBDD node plus a sorted list of
//! interned incoming locations. No expression DAG is needed (unlike
//! taint's `EpochSummary`, whose labels propagate through arbitrary
//! `T::propagate` functions); union's associativity, commutativity and
//! idempotence let composition defer the entry sets to merge time.
//!
//! Composition ([`LineageEpochSummary::apply`]) rewrites the arena's
//! live nodes into the primary manager with
//! [`BddManager::absorb`] — a bottom-up `mk`-based translation that
//! preserves canonicity, so merged sets are pointer-equal to
//! serially-built ones — resolves each `incoming` location against the
//! engine's pre-epoch shadow state, and replays final register/memory
//! rows, input-channel provenance, and outputs in stream order. The
//! result is bit-identical to the serial [`LineageEngine`] (the
//! `lineage_shard_diff` proptests pin this).

use crate::backend::{BddBackend, LineageBackend};
use crate::engine::LineageEngine;
use dift_isa::{Addr, MemAddr, Opcode, Reg};
use dift_robdd::{BddManager, NodeId, FALSE};
use dift_taint::{IoBase, Loc};
use dift_vm::{StepEffects, ThreadId};
use std::collections::{BTreeMap, HashMap};

/// A lineage set that may depend on epoch-entry state: the union of a
/// shard-arena roBDD node (inputs consumed in-epoch) and the
/// epoch-entry sets of the summary's `incoming` locations.
#[derive(Clone, Debug, PartialEq)]
pub struct SymSet {
    /// Concrete in-epoch part, a node in the summary's private arena.
    node: NodeId,
    /// Sorted, deduped indices into the summary's incoming-loc table.
    incoming: Vec<u32>,
}

impl SymSet {
    fn empty() -> SymSet {
        SymSet { node: FALSE, incoming: Vec::new() }
    }

    /// False only when the set is *definitely* empty; a symbolic set
    /// may still resolve empty at composition time.
    fn maybe_non_empty(&self) -> bool {
        self.node != FALSE || !self.incoming.is_empty()
    }
}

/// Sorted-merge two deduped index lists.
fn merge_incoming(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One `Out` emission, with enough site context for sink capture.
#[derive(Clone, Debug)]
struct EpochOutput {
    step: u64,
    tid: ThreadId,
    at: Addr,
    channel: u16,
    set: SymSet,
}

/// Sink-site captures mirrored from the sentinel's `SinkObserver`.
#[derive(Clone, Debug, Default)]
struct EpochSinks {
    /// Pre-step lineage of the address register, per step.
    addr: Vec<(u64, SymSet)>,
    /// `(step, tid, at, cell, set)` for each store.
    stores: Vec<(u64, ThreadId, Addr, MemAddr, SymSet)>,
}

/// [`EpochSinks`] with every set resolved to a primary-manager node.
type ResolvedSinks = (Vec<(u64, NodeId)>, Vec<(u64, ThreadId, Addr, MemAddr, NodeId)>);

/// Resolved sink-site lineage from a sharded run, field-for-field what
/// the sentinel's serial `SinkObservations` captures (the sentinel
/// crate assembles its own type from this plus the engine's channel
/// map).
#[derive(Clone, Debug, Default)]
pub struct SinkLog {
    /// Pre-step address-register lineage, keyed by step.
    pub addr_lineage: BTreeMap<u64, Vec<u64>>,
    /// `(step, tid, at, cell, lineage)` per store with non-empty set.
    pub stores: Vec<(u64, ThreadId, Addr, MemAddr, Vec<u64>)>,
    /// `(step, tid, at, channel, emit index, lineage)` per output.
    pub outputs: Vec<(u64, ThreadId, Addr, u16, u64, Vec<u64>)>,
}

/// The per-epoch lineage delta: final shadow rows, outputs and input
/// provenance as [`SymSet`]s over a private arena, composable onto a
/// primary [`LineageEngine`] in epoch order.
pub struct LineageEpochSummary {
    arena: BddManager,
    incoming: Vec<Loc>,
    regs: HashMap<(ThreadId, Reg), SymSet>,
    mem: HashMap<MemAddr, SymSet>,
    outputs: Vec<EpochOutput>,
    input_channels: Vec<u16>,
    /// Global input index of the epoch's first `In` (from the
    /// label-independent [`IoBase`] pre-scan).
    base_inputs: u64,
    instrs: u64,
    unions: u64,
    sinks: Option<EpochSinks>,
}

impl LineageEpochSummary {
    /// Steps summarized — the composer's integrity check compares this
    /// against the chunk length to detect corrupted summaries.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Arena nodes built shard-side (merge-cost reporting).
    pub fn arena_nodes(&self) -> usize {
        self.arena.node_count()
    }

    /// Apply this epoch's delta to the primary engine. Epochs must be
    /// applied in stream order; `log`, when given, receives the
    /// resolved sink captures (only summaries built with
    /// `capture_sinks` produce address/store entries — outputs are
    /// always captured).
    ///
    /// Exactness: incoming locations are resolved against the engine's
    /// *pre-epoch* shadow state before any row is updated, and the
    /// arena's live nodes are absorbed through the primary manager's
    /// hash-consing, so every resolved set is the same canonical node a
    /// serial run would have produced. `instrs`/`max_output_set` stay
    /// exact; `unions` and the sampled peak statistics are approximate
    /// (shard-side union counts plus one memory sample per epoch
    /// instead of every 64 instructions).
    pub fn apply(&self, eng: &mut LineageEngine<BddBackend>, mut log: Option<&mut SinkLog>) {
        debug_assert_eq!(eng.inputs_seen, self.base_inputs, "epochs must compose in stream order");

        // 1. Absorb the arena's live roots into the primary manager.
        let mut roots: Vec<NodeId> = Vec::new();
        let mut slot: HashMap<NodeId, usize> = HashMap::new();
        let note = |s: &SymSet, roots: &mut Vec<NodeId>, slot: &mut HashMap<NodeId, usize>| {
            if s.node != FALSE && !slot.contains_key(&s.node) {
                slot.insert(s.node, roots.len());
                roots.push(s.node);
            }
        };
        for s in self.regs.values() {
            note(s, &mut roots, &mut slot);
        }
        for s in self.mem.values() {
            note(s, &mut roots, &mut slot);
        }
        for o in &self.outputs {
            note(&o.set, &mut roots, &mut slot);
        }
        if let Some(sinks) = &self.sinks {
            for (_, s) in &sinks.addr {
                note(s, &mut roots, &mut slot);
            }
            for (_, _, _, _, s) in &sinks.stores {
                note(s, &mut roots, &mut slot);
            }
        }
        let translated = eng.backend.manager_mut().absorb(&self.arena, &roots);

        // 2. Resolve incoming locations against pre-epoch shadow state.
        let entry: Vec<NodeId> = self
            .incoming
            .iter()
            .map(|loc| match *loc {
                Loc::Reg(tid, r) => eng
                    .regs
                    .get(tid as usize)
                    .and_then(|regs| regs.get(r.index()))
                    .copied()
                    .unwrap_or(FALSE),
                Loc::Mem(addr) => eng.mem.get(&addr).copied().unwrap_or(FALSE),
            })
            .collect();
        let resolve = |s: &SymSet, eng: &mut LineageEngine<BddBackend>| -> NodeId {
            let mut n = if s.node == FALSE { FALSE } else { translated[slot[&s.node]] };
            for &i in &s.incoming {
                let (u, _) = eng.backend.union(&n, &entry[i as usize]);
                if u != n {
                    eng.stats.unions += 1;
                }
                n = u;
            }
            n
        };

        // 3. Resolve everything BEFORE mutating shadow rows (entry sets
        //    above already snapshot pre-epoch values, but resolution
        //    itself only touches the manager, so this is belt and
        //    braces for future backends).
        let reg_updates: Vec<((ThreadId, Reg), NodeId)> =
            self.regs.iter().map(|(k, s)| (*k, resolve(s, eng))).collect();
        let mem_updates: Vec<(MemAddr, NodeId)> =
            self.mem.iter().map(|(a, s)| (*a, resolve(s, eng))).collect();
        let out_updates: Vec<(u64, ThreadId, Addr, u16, NodeId)> = self
            .outputs
            .iter()
            .map(|o| (o.step, o.tid, o.at, o.channel, resolve(&o.set, eng)))
            .collect();
        let sink_updates: Option<ResolvedSinks> = self.sinks.as_ref().map(|sinks| {
            (
                sinks.addr.iter().map(|(step, s)| (*step, resolve(s, eng))).collect(),
                sinks
                    .stores
                    .iter()
                    .map(|(step, tid, at, cell, s)| (*step, *tid, *at, *cell, resolve(s, eng)))
                    .collect(),
            )
        });

        // 4. Input provenance.
        eng.inputs_seen += self.input_channels.len() as u64;
        eng.input_channels.extend_from_slice(&self.input_channels);

        // 5. Shadow rows.
        for ((tid, r), n) in reg_updates {
            eng.ensure_tid(tid);
            eng.regs[tid as usize][r.index()] = n;
        }
        for (addr, n) in mem_updates {
            if n == FALSE {
                eng.mem.remove(&addr);
            } else {
                eng.mem.insert(addr, n);
            }
        }

        // 6. Outputs, in stream order, with global per-channel indices.
        for (step, tid, at, ch, n) in out_updates {
            let idx = eng.out_counts.entry(ch).or_insert(0);
            let elems = eng.backend.elements(&n);
            eng.stats.max_output_set = eng.stats.max_output_set.max(elems.len() as u64);
            if let Some(l) = log.as_deref_mut() {
                if !elems.is_empty() {
                    l.outputs.push((step, tid, at, ch, *idx, elems.clone()));
                }
            }
            eng.outputs.push((ch, *idx, elems));
            *idx += 1;
        }

        // 7. Sink captures (empty resolved sets are dropped, matching
        //    the serial observer's non-empty filter).
        if let (Some(l), Some((addr, stores))) = (log, sink_updates) {
            for (step, n) in addr {
                let elems = eng.backend.elements(&n);
                if !elems.is_empty() {
                    l.addr_lineage.insert(step, elems);
                }
            }
            for (step, tid, at, cell, n) in stores {
                let elems = eng.backend.elements(&n);
                if !elems.is_empty() {
                    l.stores.push((step, tid, at, cell, elems));
                }
            }
        }

        eng.stats.instrs += self.instrs;
        eng.stats.unions += self.unions;
        eng.sample_memory();
    }
}

/// Streaming builder for a [`LineageEpochSummary`] — the shard-side
/// mirror of [`LineageEngine::process`], with untouched-location reads
/// interned as symbolic incoming references instead of shadow lookups.
pub struct LineageEpochSummarizer {
    sum: LineageEpochSummary,
    loc_ids: HashMap<Loc, u32>,
    inputs_in_epoch: u64,
}

impl LineageEpochSummarizer {
    /// `id_bits` must match the primary engine's backend;
    /// `base` is the label-independent pre-scan state at epoch entry;
    /// `capture_sinks` additionally records the sentinel's sink-site
    /// captures (address-register and store-cell lineage).
    pub fn new(id_bits: u32, base: &IoBase, capture_sinks: bool) -> LineageEpochSummarizer {
        LineageEpochSummarizer {
            sum: LineageEpochSummary {
                arena: BddManager::new(id_bits),
                incoming: Vec::new(),
                regs: HashMap::new(),
                mem: HashMap::new(),
                outputs: Vec::new(),
                input_channels: Vec::new(),
                base_inputs: base.inputs.values().sum(),
                instrs: 0,
                unions: 0,
                sinks: capture_sinks.then(EpochSinks::default),
            },
            loc_ids: HashMap::new(),
            inputs_in_epoch: 0,
        }
    }

    fn intern(&mut self, loc: Loc) -> SymSet {
        let id = match self.loc_ids.get(&loc) {
            Some(&i) => i,
            None => {
                let i = self.sum.incoming.len() as u32;
                self.sum.incoming.push(loc);
                self.loc_ids.insert(loc, i);
                i
            }
        };
        SymSet { node: FALSE, incoming: vec![id] }
    }

    fn read_reg(&mut self, tid: ThreadId, r: Reg) -> SymSet {
        match self.sum.regs.get(&(tid, r)) {
            Some(s) => s.clone(),
            None => self.intern(Loc::Reg(tid, r)),
        }
    }

    fn read_mem(&mut self, addr: MemAddr) -> SymSet {
        match self.sum.mem.get(&addr) {
            Some(s) => s.clone(),
            None => self.intern(Loc::Mem(addr)),
        }
    }

    fn union(&mut self, a: &SymSet, b: &SymSet) -> SymSet {
        self.sum.unions += 1;
        SymSet {
            node: self.sum.arena.union(a.node, b.node),
            incoming: merge_incoming(&a.incoming, &b.incoming),
        }
    }

    /// Summarize one step (steps must arrive in stream order).
    pub fn step(&mut self, fx: &StepEffects) {
        let tid = fx.tid;
        self.sum.instrs += 1;

        // Sink pre-capture: the address register's lineage before this
        // step's register write (mirrors `SinkObserver::process`).
        if self.sum.sinks.is_some() {
            if let Some(&r) = fx.insn.addr_uses().as_slice().first() {
                let s = self.read_reg(tid, r);
                if s.maybe_non_empty() {
                    self.sum.sinks.as_mut().expect("checked").addr.push((fx.step, s));
                }
            }
        }

        let out_set = if let Opcode::In { channel, .. } = fx.insn.op {
            let idx = self.sum.base_inputs + self.inputs_in_epoch;
            self.inputs_in_epoch += 1;
            self.sum.input_channels.push(channel);
            SymSet { node: self.sum.arena.singleton(idx), incoming: Vec::new() }
        } else {
            let mut acc = SymSet::empty();
            for &r in fx.insn.data_uses().as_slice() {
                let s = self.read_reg(tid, r);
                if s.maybe_non_empty() {
                    acc = self.union(&acc, &s);
                }
            }
            if let Some((addr, _)) = fx.mem_read {
                let s = self.read_mem(addr);
                if s.maybe_non_empty() {
                    acc = self.union(&acc, &s);
                }
            }
            acc
        };

        if let Some((r, _, _)) = fx.reg_write {
            self.sum.regs.insert((tid, r), out_set.clone());
        }
        if let Some((addr, _, _)) = fx.mem_write {
            // A definitely-empty set still overwrites the overlay: at
            // composition it resolves empty and removes the cell,
            // matching the serial engine's remove-on-empty.
            self.sum.mem.insert(addr, out_set.clone());
        }

        if let Some((ch, _)) = fx.output {
            let set = match fx.insn.data_uses().as_slice().first() {
                Some(&r) => self.read_reg(tid, r),
                None => SymSet::empty(),
            };
            self.sum.outputs.push(EpochOutput {
                step: fx.step,
                tid,
                at: fx.addr,
                channel: ch,
                set,
            });
        }

        // Sink post-capture: the written cell's lineage.
        if self.sum.sinks.is_some() {
            if let Some((cell, _, _)) = fx.mem_write {
                let s = self.read_mem(cell);
                if s.maybe_non_empty() {
                    self.sum
                        .sinks
                        .as_mut()
                        .expect("checked")
                        .stores
                        .push((fx.step, tid, fx.addr, cell, s));
                }
            }
        }
    }

    pub fn finish(self) -> LineageEpochSummary {
        self.sum
    }
}

/// Summarize one epoch of the step stream into a composable delta.
pub fn summarize_lineage_epoch(
    fxs: &[StepEffects],
    id_bits: u32,
    base: &IoBase,
    capture_sinks: bool,
) -> LineageEpochSummary {
    let mut s = LineageEpochSummarizer::new(id_bits, base, capture_sinks);
    for fx in fxs {
        s.step(fx);
    }
    s.finish()
}
