//! # dift-lineage — data lineage tracing (§3.4, VLDB'07)
//!
//! DIFT generalized from a bit to a **set of input identifiers** per
//! value: the lineage of each output names exactly the inputs that
//! contributed to it through dependences — what scientific data
//! validation needs when computation happens outside the DBMS.
//!
//! The challenge is cost: a set per live value, set unions per executed
//! instruction. The paper's observation is that lineage sets *overlap*
//! (neighbouring values share contributors) and *cluster* (contributors
//! are contiguous in the input stream), which an roBDD representation
//! exploits. This crate provides:
//!
//! * [`LineageBackend`] — the set-representation abstraction;
//! * [`BddBackend`] — roBDD sets (`dift-robdd`), hash-consed and shared;
//! * [`NaiveBackend`] — one materialized `BTreeSet` per shadow location
//!   (the baseline whose memory explodes);
//! * [`LineageEngine`] — the DBI tool performing set-valued propagation,
//!   with cycle charges per instruction and per set operation, and
//!   shadow-memory accounting for the E7 table;
//! * [`shard`] — per-epoch symbolic lineage summaries over private
//!   roBDD arenas, composed onto a primary engine by a canonicity-
//!   preserving hash-cons merge (the epoch-parallel path).

pub mod backend;
pub mod engine;
pub mod shard;

pub use backend::{BddBackend, LineageBackend, NaiveBackend};
pub use engine::{LineageEngine, LineageStats};
pub use shard::{
    summarize_lineage_epoch, LineageEpochSummarizer, LineageEpochSummary, SinkLog, SymSet,
};

/// Cycle charges for lineage tracing.
pub mod costs {
    /// Per-instruction dispatch + shadow bookkeeping.
    pub const LINEAGE_PER_INSN: u64 = 10;
    /// One roBDD union (amortized: hash-cons and apply-cache hits
    /// dominate, independent of set size).
    pub const BDD_UNION: u64 = 18;
    /// Naive set union: per element copied (tree-node allocation and
    /// insertion).
    pub const NAIVE_PER_ELEM: u64 = 6;
    /// Naive union base cost.
    pub const NAIVE_UNION_BASE: u64 = 10;
}
