//! The set-valued DIFT engine.

use crate::backend::LineageBackend;
use crate::costs;
use dift_dbi::Tool;
use dift_isa::{MemAddr, Opcode, NUM_REGS};
use dift_vm::{Machine, RunResult, StepEffects, ThreadId};
use std::collections::HashMap;

/// Lineage-tracing statistics (the E7 rows).
#[derive(Clone, Debug, Default)]
pub struct LineageStats {
    pub instrs: u64,
    pub unions: u64,
    /// Peak bytes of shadow lineage state.
    pub peak_shadow_bytes: usize,
    /// Peak tainted (lineage-carrying) memory words.
    pub peak_tracked_words: usize,
    /// Largest single lineage set observed at an output.
    pub max_output_set: u64,
}

/// The lineage engine, generic over the set backend.
///
/// Fields are `pub(crate)` so the shard-compose path
/// ([`crate::shard`]) can apply per-epoch symbolic summaries directly
/// to the shadow state.
pub struct LineageEngine<B: LineageBackend> {
    pub(crate) backend: B,
    pub(crate) regs: Vec<Vec<B::Set>>,
    pub(crate) mem: HashMap<MemAddr, B::Set>,
    pub(crate) inputs_seen: u64,
    /// Channel that produced input index `i` (indexed by input index).
    pub(crate) input_channels: Vec<u16>,
    /// `(channel, emit index, lineage elements)` per output word.
    pub outputs: Vec<(u16, u64, Vec<u64>)>,
    pub(crate) out_counts: HashMap<u16, u64>,
    pub(crate) stats: LineageStats,
    /// Sample shadow memory every N instructions (full scans are
    /// expensive for the naive backend).
    sample_every: u64,
}

impl<B: LineageBackend> LineageEngine<B> {
    pub fn new(backend: B) -> LineageEngine<B> {
        LineageEngine {
            backend,
            regs: Vec::new(),
            mem: HashMap::new(),
            inputs_seen: 0,
            input_channels: Vec::new(),
            outputs: Vec::new(),
            out_counts: HashMap::new(),
            stats: LineageStats::default(),
            sample_every: 64,
        }
    }

    pub fn stats(&self) -> &LineageStats {
        &self.stats
    }

    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Total input words consumed so far (= next input index).
    pub fn inputs_seen(&self) -> u64 {
        self.inputs_seen
    }

    pub(crate) fn ensure_tid(&mut self, tid: ThreadId) {
        while self.regs.len() <= tid as usize {
            let empty = self.backend.empty();
            self.regs.push(vec![empty; NUM_REGS]);
        }
    }

    /// Lineage of an output word, resolved to sorted input indices.
    pub fn output_lineage(&self, channel: u16, index: u64) -> Option<&[u64]> {
        self.outputs
            .iter()
            .find(|(ch, i, _)| *ch == channel && *i == index)
            .map(|(_, _, v)| v.as_slice())
    }

    /// Lineage of a live register, resolved to sorted input indices.
    pub fn reg_elements(&self, tid: ThreadId, reg: usize) -> Vec<u64> {
        self.regs
            .get(tid as usize)
            .and_then(|regs| regs.get(reg))
            .map(|s| self.backend.elements(s))
            .unwrap_or_default()
    }

    /// Lineage of a live memory cell, resolved to sorted input indices.
    pub fn mem_elements(&self, addr: MemAddr) -> Vec<u64> {
        self.mem.get(&addr).map(|s| self.backend.elements(s)).unwrap_or_default()
    }

    /// Bounded variant of [`reg_elements`](Self::reg_elements): the
    /// `limit` smallest indices, at cost proportional to the output.
    /// Reporting paths should prefer this.
    pub fn reg_elements_up_to(&self, tid: ThreadId, reg: usize, limit: usize) -> Vec<u64> {
        self.regs
            .get(tid as usize)
            .and_then(|regs| regs.get(reg))
            .map(|s| self.backend.elements_up_to(s, limit))
            .unwrap_or_default()
    }

    /// Bounded variant of [`mem_elements`](Self::mem_elements).
    pub fn mem_elements_up_to(&self, addr: MemAddr, limit: usize) -> Vec<u64> {
        self.mem.get(&addr).map(|s| self.backend.elements_up_to(s, limit)).unwrap_or_default()
    }

    /// Channel that produced each input index (indexed by input index).
    pub fn input_channels(&self) -> &[u16] {
        &self.input_channels
    }

    /// Distinct input channels behind a set of input indices, sorted.
    pub fn channels_of(&self, elements: &[u64]) -> Vec<u16> {
        let mut chs: Vec<u16> =
            elements.iter().filter_map(|&i| self.input_channels.get(i as usize).copied()).collect();
        chs.sort_unstable();
        chs.dedup();
        chs
    }

    /// Apply one step's effects to the lineage state, Machine-free.
    ///
    /// Returns the cycle charge the instrumented machine should pay
    /// ([`costs::LINEAGE_PER_INSN`] plus per-union backend costs); the
    /// [`Tool`] impl forwards it to [`Machine::charge`], offline
    /// consumers (the sentinel's sink observer) discard or re-account
    /// it.
    pub fn process(&mut self, fx: &StepEffects) -> u64 {
        let tid = fx.tid;
        self.ensure_tid(tid);
        let t = tid as usize;
        self.stats.instrs += 1;
        let mut charge = costs::LINEAGE_PER_INSN;

        // Source label.
        let out_set = if let Opcode::In { channel, .. } = fx.insn.op {
            let idx = self.inputs_seen;
            self.inputs_seen += 1;
            debug_assert_eq!(self.input_channels.len() as u64, idx);
            self.input_channels.push(channel);
            self.backend.singleton(idx)
        } else {
            // Union of data sources.
            let mut acc = self.backend.empty();
            for r in &fx.insn.data_uses() {
                let s = self.regs[t][r.index()].clone();
                if !self.backend.is_empty(&s) {
                    let (u, c) = self.backend.union(&acc, &s);
                    acc = u;
                    self.stats.unions += 1;
                    charge += c;
                }
            }
            if let Some((addr, _)) = fx.mem_read {
                if let Some(s) = self.mem.get(&addr).cloned() {
                    let (u, c) = self.backend.union(&acc, &s);
                    acc = u;
                    self.stats.unions += 1;
                    charge += c;
                }
            }
            acc
        };

        if let Some((r, _, _)) = fx.reg_write {
            self.regs[t][r.index()] = out_set.clone();
        }
        if let Some((addr, _, _)) = fx.mem_write {
            if self.backend.is_empty(&out_set) {
                self.mem.remove(&addr);
            } else {
                self.mem.insert(addr, out_set.clone());
            }
        }

        if let Some((ch, _)) = fx.output {
            let idx = self.out_counts.entry(ch).or_insert(0);
            let set = fx
                .insn
                .data_uses()
                .as_slice()
                .first()
                .map(|r| self.regs[t][r.index()].clone())
                .unwrap_or_else(|| self.backend.empty());
            let elems = self.backend.elements(&set);
            self.stats.max_output_set = self.stats.max_output_set.max(elems.len() as u64);
            self.outputs.push((ch, *idx, elems));
            *idx += 1;
        }

        if self.stats.instrs % self.sample_every == 0 {
            self.sample_memory();
        }
        charge
    }

    pub(crate) fn sample_memory(&mut self) {
        // Resident shadow state: memory cells plus live register labels.
        let mut stored: Vec<&B::Set> = self.mem.values().collect();
        for regs in &self.regs {
            for s in regs {
                if !self.backend.is_empty(s) {
                    stored.push(s);
                }
            }
        }
        let bytes = self.backend.shadow_bytes(&stored);
        if bytes > self.stats.peak_shadow_bytes {
            self.stats.peak_shadow_bytes = bytes;
        }
        if self.mem.len() > self.stats.peak_tracked_words {
            self.stats.peak_tracked_words = self.mem.len();
        }
    }
}

impl<B: LineageBackend> Tool for LineageEngine<B> {
    fn after(&mut self, m: &mut Machine, fx: &StepEffects) {
        let charge = self.process(fx);
        m.charge(charge);
    }

    fn on_finish(&mut self, _m: &mut Machine, _r: &RunResult) {
        self.sample_memory();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BddBackend, NaiveBackend};
    use dift_dbi::Engine;
    use dift_workloads::science::{self, SciencePipeline};

    fn run_pipeline<B: LineageBackend>(p: &SciencePipeline, backend: B) -> (LineageEngine<B>, u64) {
        let m = p.workload.machine();
        let mut eng = LineageEngine::new(backend);
        let mut dbi = Engine::new(m);
        let r = dbi.run_tool(&mut eng);
        assert!(r.status.is_clean(), "{:?}", r.status);
        (eng, r.cycles)
    }

    #[test]
    fn binning_lineage_matches_ground_truth_bdd() {
        let p = science::binning(32, 8);
        let (eng, _) = run_pipeline(&p, BddBackend::new(16));
        for (k, want) in p.expected_lineage.iter().enumerate() {
            let got = eng.output_lineage(0, k as u64).expect("output traced");
            assert_eq!(got, want.as_slice(), "bin {k}");
        }
    }

    #[test]
    fn binning_lineage_matches_ground_truth_naive() {
        let p = science::binning(32, 8);
        let (eng, _) = run_pipeline(&p, NaiveBackend::new());
        for (k, want) in p.expected_lineage.iter().enumerate() {
            let got = eng.output_lineage(0, k as u64).expect("output traced");
            assert_eq!(got, want.as_slice(), "bin {k}");
        }
    }

    #[test]
    fn window_lineage_matches_ground_truth() {
        let p = science::sliding_window(24, 4);
        let (eng, _) = run_pipeline(&p, BddBackend::new(16));
        for (k, want) in p.expected_lineage.iter().enumerate() {
            let got = eng.output_lineage(0, k as u64).expect("output traced");
            assert_eq!(got, want.as_slice(), "window {k}");
        }
    }

    #[test]
    fn scatter_lineage_matches_ground_truth() {
        let p = science::scatter_sum(48, 8);
        let (eng, _) = run_pipeline(&p, BddBackend::new(16));
        for (k, want) in p.expected_lineage.iter().enumerate() {
            let got = eng.output_lineage(0, k as u64).expect("output traced");
            assert_eq!(got, want.as_slice(), "bin {k}");
        }
    }

    #[test]
    fn prefix_sum_lineage_matches_ground_truth() {
        let p = science::prefix_sum(24);
        let (eng, _) = run_pipeline(&p, BddBackend::new(16));
        for (k, want) in p.expected_lineage.iter().enumerate() {
            let got = eng.output_lineage(0, k as u64).expect("output traced");
            assert_eq!(got, want.as_slice(), "cell {k}");
        }
    }

    #[test]
    fn bdd_backend_uses_less_peak_memory_on_resident_overlap() {
        // prefix_sum keeps {0..=k} resident per cell: the naive backend
        // pays O(n^2) words while roBDD ranges share structure.
        let p = science::prefix_sum(96);
        let (bdd, _) = run_pipeline(&p, BddBackend::new(16));
        let p2 = science::prefix_sum(96);
        let (naive, _) = run_pipeline(&p2, NaiveBackend::new());
        assert!(
            bdd.stats().peak_shadow_bytes * 2 < naive.stats().peak_shadow_bytes,
            "bdd {} vs naive {}",
            bdd.stats().peak_shadow_bytes,
            naive.stats().peak_shadow_bytes
        );
    }

    #[test]
    fn bdd_backend_is_cheaper_in_cycles_on_large_sets() {
        let p = science::prefix_sum(96);
        let (_, bdd_cycles) = run_pipeline(&p, BddBackend::new(16));
        let p2 = science::prefix_sum(96);
        let (_, naive_cycles) = run_pipeline(&p2, NaiveBackend::new());
        assert!(bdd_cycles < naive_cycles, "{bdd_cycles} vs {naive_cycles}");
    }

    #[test]
    fn slowdown_is_bounded() {
        // The paper: typical slowdown < 40x with infrastructure overhead
        // discounted. Our whole-stack factor must stay in that regime.
        let p = science::binning(64, 8);
        let native = p.workload.machine().run().cycles;
        let (_, traced) = run_pipeline(&p, BddBackend::new(16));
        let factor = traced as f64 / native as f64;
        assert!(factor < 40.0, "slowdown {factor:.1}x");
        assert!(factor > 1.0);
    }
}
