//! Set-representation backends for lineage labels.

use dift_robdd::{BddManager, NodeId, FALSE};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A lineage-set representation.
///
/// Sets are value-like handles; the backend owns any shared structure.
/// `union_cost` reports the cycle charge of the union just performed, so
/// the engine's cost model reflects representation-specific work.
pub trait LineageBackend {
    type Set: Clone + PartialEq + std::fmt::Debug;

    fn empty(&mut self) -> Self::Set;
    fn singleton(&mut self, input_index: u64) -> Self::Set;
    /// Union, plus the modeled cycle cost of performing it.
    fn union(&mut self, a: &Self::Set, b: &Self::Set) -> (Self::Set, u64);
    fn is_empty(&self, s: &Self::Set) -> bool;
    /// Materialize (ascending) — reporting/validation only.
    fn elements(&self, s: &Self::Set) -> Vec<u64>;
    /// The `limit` smallest elements, ascending, at cost proportional
    /// to the output. Reporting paths use this instead of
    /// [`elements`](Self::elements) so pathological sets (near-universal
    /// at wide widths) cannot hang them.
    fn elements_up_to(&self, s: &Self::Set, limit: usize) -> Vec<u64> {
        let mut v = self.elements(s);
        v.truncate(limit);
        v
    }
    fn len(&self, s: &Self::Set) -> u64;
    /// Bytes attributable to storing `stored` live sets right now.
    fn shadow_bytes(&self, stored: &[&Self::Set]) -> usize;
    fn name(&self) -> &'static str;
}

/// roBDD-backed sets: canonical, hash-consed, range-friendly.
pub struct BddBackend {
    mgr: BddManager,
}

impl BddBackend {
    /// `id_bits` bounds the representable input indices (`2^id_bits`).
    pub fn new(id_bits: u32) -> BddBackend {
        BddBackend { mgr: BddManager::new(id_bits) }
    }

    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// Mutable manager access — the shard-compose path absorbs private
    /// per-epoch arenas into this primary manager.
    pub fn manager_mut(&mut self) -> &mut BddManager {
        &mut self.mgr
    }
}

impl LineageBackend for BddBackend {
    type Set = NodeId;

    fn empty(&mut self) -> NodeId {
        FALSE
    }

    fn singleton(&mut self, input_index: u64) -> NodeId {
        self.mgr.singleton(input_index)
    }

    fn union(&mut self, a: &NodeId, b: &NodeId) -> (NodeId, u64) {
        (self.mgr.union(*a, *b), crate::costs::BDD_UNION)
    }

    fn is_empty(&self, s: &NodeId) -> bool {
        *s == FALSE
    }

    fn elements(&self, s: &NodeId) -> Vec<u64> {
        self.mgr.elements(*s)
    }

    fn elements_up_to(&self, s: &NodeId, limit: usize) -> Vec<u64> {
        // The manager's bounded walk is O(limit · nvars) even on sets
        // whose full enumeration would be astronomical.
        self.mgr.elements_up_to(*s, limit)
    }

    fn len(&self, s: &NodeId) -> u64 {
        self.mgr.count(*s)
    }

    fn shadow_bytes(&self, stored: &[&NodeId]) -> usize {
        // Live store of a GC'd manager: nodes reachable from the stored
        // sets (shared nodes counted once) plus 4-byte handles.
        let roots: Vec<NodeId> = stored.iter().map(|&&n| n).collect();
        self.mgr.reachable(&roots) * 16 + stored.len() * 4
    }

    fn name(&self) -> &'static str {
        "robdd"
    }
}

/// Naive baseline: a materialized ordered set per shadow location.
/// `Arc` keeps clones cheap during propagation, but the *memory
/// accounting* deliberately charges each stored set as if unshared —
/// that is what a per-location `std::set` implementation (the paper's
/// baseline) pays.
#[derive(Default)]
pub struct NaiveBackend;

impl NaiveBackend {
    pub fn new() -> NaiveBackend {
        NaiveBackend
    }
}

impl LineageBackend for NaiveBackend {
    type Set = Arc<BTreeSet<u64>>;

    fn empty(&mut self) -> Self::Set {
        Arc::new(BTreeSet::new())
    }

    fn singleton(&mut self, input_index: u64) -> Self::Set {
        Arc::new([input_index].into_iter().collect())
    }

    fn union(&mut self, a: &Self::Set, b: &Self::Set) -> (Self::Set, u64) {
        if a.is_empty() {
            return (b.clone(), crate::costs::NAIVE_UNION_BASE);
        }
        if b.is_empty() {
            return (a.clone(), crate::costs::NAIVE_UNION_BASE);
        }
        let mut out: BTreeSet<u64> = (**a).clone();
        out.extend(b.iter().copied());
        let cost = crate::costs::NAIVE_UNION_BASE
            + crate::costs::NAIVE_PER_ELEM * (a.len() + b.len()) as u64;
        (Arc::new(out), cost)
    }

    fn is_empty(&self, s: &Self::Set) -> bool {
        s.is_empty()
    }

    fn elements(&self, s: &Self::Set) -> Vec<u64> {
        s.iter().copied().collect()
    }

    fn len(&self, s: &Self::Set) -> u64 {
        s.len() as u64
    }

    fn shadow_bytes(&self, stored: &[&Self::Set]) -> usize {
        stored.iter().map(|s| 24 + s.len() * 8).sum()
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<B: LineageBackend>(mut b: B) {
        let e = b.empty();
        assert!(b.is_empty(&e));
        let s1 = b.singleton(5);
        let s2 = b.singleton(9);
        let (u, _) = b.union(&s1, &s2);
        assert_eq!(b.elements(&u), vec![5, 9]);
        assert_eq!(b.len(&u), 2);
        let (u2, _) = b.union(&u, &e);
        assert_eq!(b.elements(&u2), vec![5, 9]);
        let (uu, _) = b.union(&u, &u);
        assert_eq!(b.elements(&uu), vec![5, 9], "idempotent");
    }

    #[test]
    fn bdd_backend_set_algebra() {
        exercise(BddBackend::new(16));
    }

    #[test]
    fn naive_backend_set_algebra() {
        exercise(NaiveBackend::new());
    }

    #[test]
    fn bdd_shares_overlapping_sets_naive_does_not() {
        let mut bdd = BddBackend::new(16);
        let mut naive = NaiveBackend::new();
        // Build 20 sets sharing a 256-element clustered base.
        let mut base_b = bdd.empty();
        let mut base_n = naive.empty();
        for i in 0..256u64 {
            let (nb, _) = {
                let s = bdd.singleton(i);
                bdd.union(&base_b, &s)
            };
            base_b = nb;
            let (nn, _) = {
                let s = naive.singleton(i);
                naive.union(&base_n, &s)
            };
            base_n = nn;
        }
        let mut bdd_sets = Vec::new();
        let mut naive_sets = Vec::new();
        for k in 0..20u64 {
            let s = bdd.singleton(1000 + k);
            bdd_sets.push(bdd.union(&base_b, &s).0);
            let s = naive.singleton(1000 + k);
            naive_sets.push(naive.union(&base_n, &s).0);
        }
        let bdd_refs: Vec<&_> = bdd_sets.iter().collect();
        let naive_refs: Vec<&_> = naive_sets.iter().collect();
        let bdd_bytes = bdd.shadow_bytes(&bdd_refs);
        let naive_bytes = naive.shadow_bytes(&naive_refs);
        assert!(
            bdd_bytes * 2 < naive_bytes,
            "roBDD must win on overlap: {bdd_bytes} vs {naive_bytes}"
        );
    }

    #[test]
    fn union_costs_scale_differently() {
        let mut bdd = BddBackend::new(16);
        let mut naive = NaiveBackend::new();
        // A large clustered set union'ed with a singleton.
        let mut big_b = bdd.empty();
        let mut big_n = naive.empty();
        for i in 0..512u64 {
            big_b = {
                let s = bdd.singleton(i);
                bdd.union(&big_b, &s).0
            };
            big_n = {
                let s = naive.singleton(i);
                naive.union(&big_n, &s).0
            };
        }
        let sb = bdd.singleton(9999);
        let (_, cost_b) = bdd.union(&big_b, &sb);
        let sn = naive.singleton(9999);
        let (_, cost_n) = naive.union(&big_n, &sn);
        assert!(cost_b < cost_n, "bdd {cost_b} vs naive {cost_n}");
    }
}
