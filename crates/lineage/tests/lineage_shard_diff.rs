//! Differential property tests for the epoch-sharded lineage pipeline:
//! [`shard_lineage_stream`] must reproduce the serial [`LineageEngine`]
//! bit for bit — per-output lineage sets, per-value register and memory
//! sets (via `elements`), input-channel provenance — across random
//! programs × shard counts × epoch lengths, with and without injected
//! faults.
//!
//! The programs interleave mid-stream `input` instructions with ALU
//! mixes and direct/indirect memory traffic, so input identifiers are
//! allocated across epoch boundaries and the `IoBase` numbering has to
//! agree with the serial engine's running counter.

use dift_dbi::{Engine, Tool};
use dift_isa::{BinOp, Program, ProgramBuilder, Reg};
use dift_lineage::{BddBackend, LineageEngine};
use dift_multicore::{
    shard_lineage_stream, shard_lineage_stream_tolerant, silence_injected_panics, FaultSite,
    Injection, LineageShardConfig, LineageShardRun, ScriptedFaults,
};
use dift_vm::{Machine, MachineConfig, StepEffects};
use proptest::prelude::*;
use std::sync::Arc;

const OPS: [BinOp; 6] = [BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::And, BinOp::Min, BinOp::Shl];
const SLOT_BASE: i64 = 500;

#[derive(Clone, Debug)]
enum Step {
    Alu {
        op: usize,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Store {
        rs: u8,
        slot: u8,
    },
    Load {
        rd: u8,
        slot: u8,
    },
    /// Store through an address derived from a register (keeps lineage
    /// flowing through address computations).
    StoreVia {
        rs: u8,
    },
    LoadVia {
        rd: u8,
        rs: u8,
    },
    /// Mid-stream input word from channel 1: allocates a fresh input
    /// identifier wherever it lands in the epoch grid.
    Input {
        rd: u8,
    },
    /// Mid-stream output on channel 2.
    Output {
        rs: u8,
    },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..OPS.len(), 1u8..10, 1u8..10, 1u8..10).prop_map(|(op, rd, rs1, rs2)| Step::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..10, 0u8..8).prop_map(|(rs, slot)| Step::Store { rs, slot }),
        (1u8..10, 0u8..8).prop_map(|(rd, slot)| Step::Load { rd, slot }),
        (1u8..10).prop_map(|rs| Step::StoreVia { rs }),
        (1u8..10, 1u8..10).prop_map(|(rd, rs)| Step::LoadVia { rd, rs }),
        (1u8..10).prop_map(|rd| Step::Input { rd }),
        (1u8..10).prop_map(|rs| Step::Output { rs }),
    ]
}

fn build(ninputs: usize, steps: &[Step]) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    b.func("main");
    for i in 0..ninputs {
        b.input(Reg(i as u8 + 1), 0);
    }
    b.li(Reg(11), SLOT_BASE);
    for s in steps {
        match s {
            Step::Alu { op, rd, rs1, rs2 } => {
                b.bin(OPS[*op], Reg(*rd), Reg(*rs1), Reg(*rs2));
            }
            Step::Store { rs, slot } => {
                b.store(Reg(*rs), Reg(11), *slot as i64);
            }
            Step::Load { rd, slot } => {
                b.load(Reg(*rd), Reg(11), *slot as i64);
            }
            Step::StoreVia { rs } => {
                b.bini(BinOp::And, Reg(12), Reg(*rs), 63);
                b.add(Reg(12), Reg(12), Reg(11));
                b.store(Reg(*rs), Reg(12), 0);
            }
            Step::LoadVia { rd, rs } => {
                b.bini(BinOp::And, Reg(12), Reg(*rs), 63);
                b.add(Reg(12), Reg(12), Reg(11));
                b.load(Reg(*rd), Reg(12), 0);
            }
            Step::Input { rd } => {
                b.input(Reg(*rd), 1);
            }
            Step::Output { rs } => {
                b.output(Reg(*rs), 2);
            }
        }
    }
    for i in 1..10u8 {
        b.output(Reg(i), 3);
    }
    b.halt();
    Arc::new(b.build().unwrap())
}

#[derive(Default)]
struct Capture {
    fxs: Vec<StepEffects>,
}

impl Tool for Capture {
    fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
        self.fxs.push(fx.clone());
    }
}

fn capture(p: &Arc<Program>, inputs: &[u64], steps: &[Step]) -> Vec<StepEffects> {
    let mut m = Machine::new(p.clone(), MachineConfig::small());
    m.feed_input(0, inputs);
    let ch1: Vec<u64> = steps
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Step::Input { .. }))
        .map(|(i, _)| 1000 + i as u64)
        .collect();
    m.feed_input(1, &ch1);
    let mut cap = Capture::default();
    let r = Engine::new(m).run_tool(&mut cap);
    assert!(r.status.is_clean(), "{:?}", r.status);
    cap.fxs
}

fn serial(fxs: &[StepEffects]) -> LineageEngine<BddBackend> {
    let mut eng = LineageEngine::new(BddBackend::new(16));
    for fx in fxs {
        eng.process(fx);
    }
    eng
}

/// Every observable the serial engine exposes must agree.
fn assert_agrees(run: &LineageShardRun, want: &LineageEngine<BddBackend>, what: &str) {
    let got = &run.engine;
    assert_eq!(got.outputs, want.outputs, "{what}: per-output lineage sets");
    assert_eq!(got.input_channels(), want.input_channels(), "{what}: input provenance");
    assert_eq!(got.inputs_seen(), want.inputs_seen(), "{what}: input count");
    for r in 0..16usize {
        assert_eq!(got.reg_elements(0, r), want.reg_elements(0, r), "{what}: r{r} lineage");
    }
    for s in 0..64u64 {
        let a = SLOT_BASE as u64 + s;
        assert_eq!(got.mem_elements(a), want.mem_elements(a), "{what}: mem[{a}] lineage");
    }
    assert_eq!(got.stats().instrs, want.stats().instrs, "{what}: instrs");
    assert_eq!(got.stats().max_output_set, want.stats().max_output_set, "{what}: max output set");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault-free sharded runs across random programs × shard counts ×
    /// epoch lengths.
    #[test]
    fn sharded_lineage_matches_serial(
        steps in proptest::collection::vec(step(), 8..48),
        inputs in proptest::collection::vec(0u64..1000, 1..4),
        epoch_len in 3usize..24,
        workers in 1usize..5,
    ) {
        let p = build(inputs.len(), &steps);
        let fxs = capture(&p, &inputs, &steps);
        let want = serial(&fxs);
        let mem_words = MachineConfig::small().mem_words;
        let cfg = LineageShardConfig::new(workers, epoch_len, 16);
        let run = shard_lineage_stream(&fxs, &p, mem_words, &cfg);
        assert_agrees(&run, &want, &format!("workers={workers} epoch_len={epoch_len}"));
        prop_assert!(!run.recovery.eventful(), "fault-free run must be uneventful");
        prop_assert_eq!(run.stats.epochs, fxs.len().div_ceil(epoch_len) as u64);
    }

    /// Random seeded fault plans: whatever fires, the run completes
    /// bit-identical and accounts its recoveries.
    #[test]
    fn sharded_lineage_matches_serial_under_faults(
        steps in proptest::collection::vec(step(), 8..48),
        inputs in proptest::collection::vec(0u64..1000, 1..4),
        epoch_len in 3usize..24,
        workers in 2usize..5,
        seed in 0u64..u64::MAX,
        nfaults in 1usize..6,
    ) {
        silence_injected_panics();
        let p = build(inputs.len(), &steps);
        let fxs = capture(&p, &inputs, &steps);
        let want = serial(&fxs);
        let mem_words = MachineConfig::small().mem_words;
        let cfg = LineageShardConfig::new(workers, epoch_len, 16);
        let epochs = fxs.len() / epoch_len + 1;
        let plan = ScriptedFaults::seeded(seed, nfaults, workers, epochs);
        let run = shard_lineage_stream_tolerant(&fxs, &p, mem_words, &cfg, plan);
        assert_agrees(&run, &want, "tolerant sharded lineage");
        prop_assert_eq!(run.recovery.epochs_recovered, run.recovery.epochs_lost, "{:?}", run.recovery);
    }
}

/// The deterministic fault grid: every site × the first two shards.
#[test]
fn every_fault_site_recovers_bit_identical() {
    silence_injected_panics();
    let steps: Vec<Step> = (0..40)
        .map(|i| match i % 5 {
            0 => Step::Alu { op: i % OPS.len(), rd: 2, rs1: 1, rs2: 2 },
            1 => Step::Store { rs: 2, slot: (i % 8) as u8 },
            2 => Step::LoadVia { rd: 3, rs: 2 },
            3 => Step::Input { rd: 4 },
            _ => Step::Output { rs: 2 },
        })
        .collect();
    let p = build(2, &steps);
    let fxs = capture(&p, &[7, 13], &steps);
    let want = serial(&fxs);
    let mem_words = MachineConfig::small().mem_words;
    let cfg = LineageShardConfig::new(3, 8, 16);
    for site in FaultSite::ALL {
        for epoch in 0..2usize {
            // Epoch→shard assignment is claim-based (nondeterministic),
            // so arm the site on every shard: whichever worker claims
            // the target epoch hits it.
            let plan = ScriptedFaults::new(
                (0..cfg.workers).map(|shard| Injection { site, shard, epoch }).collect(),
            );
            let run = shard_lineage_stream_tolerant(&fxs, &p, mem_words, &cfg, plan);
            let what = format!("{site:?} at epoch {epoch}");
            assert_agrees(&run, &want, &what);
            assert!(run.recovery.faults_injected >= 1, "{what}: fault must fire");
            assert!(run.recovery.epochs_recovered >= 1, "{what}: must recover");
        }
    }
}

/// Epoch boundaries falling mid-input-burst: the symbolic numbering
/// must still line up with the serial running counter.
#[test]
fn inputs_straddling_epoch_boundaries_number_correctly() {
    let steps: Vec<Step> = (0..30)
        .map(|i| {
            if i % 2 == 0 {
                Step::Input { rd: (i % 8 + 1) as u8 }
            } else {
                Step::Output { rs: (i % 8 + 1) as u8 }
            }
        })
        .collect();
    let p = build(1, &steps);
    let fxs = capture(&p, &[3], &steps);
    let want = serial(&fxs);
    let mem_words = MachineConfig::small().mem_words;
    for epoch_len in [1usize, 2, 3, 5, 7] {
        let cfg = LineageShardConfig::new(2, epoch_len, 16);
        let run = shard_lineage_stream(&fxs, &p, mem_words, &cfg);
        assert_agrees(&run, &want, &format!("epoch_len={epoch_len}"));
    }
}
