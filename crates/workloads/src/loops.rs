//! Loop-dominated kernels for the hot-code summary cache (T5).
//!
//! The SPEC-like kernels in [`crate::spec`] walk induction-variable
//! addresses (edge arrays, pointer chases, data-dependent stores), so a
//! shape-guarded summary cache bails on nearly every iteration — which
//! is the honest behavior, but not the regime the cache targets. These
//! kernels model the *other* dominant loop shape in long-running code:
//! an outer loop whose body re-scans **fixed** buffers (reduction
//! sweeps, stencils over a static grid, polynomial/hash evaluation over
//! fixed tables). There the entire outer-loop body repeats its address
//! stream and branch path exactly, only the *data* changes — and data
//! values are precisely what the guard does not need to pin.
//!
//! Shape contract shared by the cacheable kernels:
//!
//! * ingest `n` tainted words from channel 0 into a fixed buffer
//!   (an uncacheable prefix — `In` advances global input indices);
//! * run [`SWEEPS`] outer iterations whose inner loop touches only
//!   fixed addresses with a fixed branch path, threading a live
//!   accumulator register through every sweep so the cached region has
//!   real dataflow;
//! * emit the accumulator as a checksum on channel 0.
//!
//! [`sliding_like`] deliberately breaks the contract (its inner base
//! address advances every sweep) so harnesses can report the
//! cache-hostile case alongside the wins.

use crate::{Lcg, Workload};
use dift_isa::{BinOp, BranchCond, ProgramBuilder, Reg};
use std::sync::Arc;

pub use crate::spec::Size;

/// Outer-loop sweeps every kernel executes. With trace-formation
/// thresholds in the single digits, all but the first few sweeps run
/// out of the summary cache (~98 % coverage) — the long-running
/// hot-code regime the cache targets, where detection, recording and
/// summarization amortize to noise.
pub const SWEEPS: i64 = 192;

const A: u64 = 1_000; // ingested (tainted) buffer base
const B: u64 = 18_000; // output/scratch buffer base

const R: fn(u8) -> Reg = Reg;

/// Emit the tainted-ingest prefix: read `n` words from channel 0 into
/// `A[0..n]`.
fn ingest(b: &mut ProgramBuilder, n: u64) {
    b.li(R(7), n as i64);
    b.li(R(1), 0);
    b.li(R(2), A as i64);
    b.label("ingest");
    b.branch(BranchCond::Geu, R(1), R(7), "body");
    b.input(R(5), 0);
    b.add(R(6), R(2), R(1));
    b.store(R(5), R(6), 0);
    b.addi(R(1), R(1), 1);
    b.jump("ingest");
    b.label("body");
}

fn inputs(n: u64, seed: u64) -> Vec<u64> {
    let mut rng = Lcg::new(seed);
    (0..n).map(|_| rng.next() & 0xff).collect()
}

/// `ssum`: repeated checksum reduction over a fixed buffer — the
/// cache's best case (load + add inner loop, one store per sweep).
pub fn ssum_like(size: Size) -> Workload {
    let n = size.n();
    let mut b = ProgramBuilder::new();
    b.func("main");
    ingest(&mut b, n);
    b.li(R(3), SWEEPS); // sweeps left
    b.li(R(9), B as i64);
    b.label("sweep");
    b.li(R(1), 0); // i
    b.label("inner");
    b.branch(BranchCond::Geu, R(1), R(7), "sweep_end");
    b.add(R(6), R(2), R(1));
    b.load(R(5), R(6), 0);
    b.add(R(11), R(11), R(5)); // acc += A[i]
    b.addi(R(1), R(1), 1);
    b.jump("inner");
    b.label("sweep_end");
    b.store(R(11), R(9), 0); // B[0] = acc
    b.bini(BinOp::Sub, R(3), R(3), 1);
    b.branch(BranchCond::Ne, R(3), R(0), "sweep");
    b.output(R(11), 0);
    b.halt();
    Workload::new(format!("ssum.{size:?}"), Arc::new(b.build().unwrap()))
        .with_input(0, inputs(n, 0x55u64))
}

/// `stencil`: 3-point stencil from a fixed tainted grid into a fixed
/// output grid — one store per inner iteration, so summary applications
/// replay a large event list (the apply-cost stress case).
pub fn stencil_like(size: Size) -> Workload {
    let n = size.n();
    let mut b = ProgramBuilder::new();
    b.func("main");
    ingest(&mut b, n);
    b.li(R(3), SWEEPS);
    b.li(R(9), B as i64);
    b.bini(BinOp::Sub, R(8), R(7), 1); // n - 1
    b.label("sweep");
    b.li(R(1), 1); // i
    b.label("inner");
    b.branch(BranchCond::Geu, R(1), R(8), "sweep_end");
    b.add(R(6), R(2), R(1));
    b.load(R(4), R(6), -1);
    b.load(R(5), R(6), 0);
    b.add(R(4), R(4), R(5));
    b.load(R(5), R(6), 1);
    b.add(R(4), R(4), R(5));
    b.add(R(4), R(4), R(11)); // + acc keeps sweeps data-dependent
    b.add(R(6), R(9), R(1));
    b.store(R(4), R(6), 0); // B[i]
    b.mov(R(11), R(4));
    b.addi(R(1), R(1), 1);
    b.jump("inner");
    b.label("sweep_end");
    b.bini(BinOp::Sub, R(3), R(3), 1);
    b.branch(BranchCond::Ne, R(3), R(0), "sweep");
    b.output(R(11), 0);
    b.halt();
    Workload::new(format!("stencil.{size:?}"), Arc::new(b.build().unwrap()))
        .with_input(0, inputs(n, 0x77u64))
}

/// `horner`: polynomial evaluation over fixed (tainted) coefficients —
/// register-dense inner loop, one load per iteration, no stores inside
/// the sweep.
pub fn horner_like(size: Size) -> Workload {
    let n = size.n();
    let mut b = ProgramBuilder::new();
    b.func("main");
    ingest(&mut b, n);
    b.li(R(3), SWEEPS);
    b.li(R(10), 33); // x
    b.label("sweep");
    b.mov(R(4), R(11)); // h = acc
    b.li(R(1), 0);
    b.label("inner");
    b.branch(BranchCond::Geu, R(1), R(7), "sweep_end");
    b.add(R(6), R(2), R(1));
    b.load(R(5), R(6), 0);
    b.bin(BinOp::Mul, R(4), R(4), R(10)); // h = h*x + C[i]
    b.add(R(4), R(4), R(5));
    b.addi(R(1), R(1), 1);
    b.jump("inner");
    b.label("sweep_end");
    b.add(R(11), R(11), R(4)); // acc += h
    b.bini(BinOp::Sub, R(3), R(3), 1);
    b.branch(BranchCond::Ne, R(3), R(0), "sweep");
    b.output(R(11), 0);
    b.halt();
    Workload::new(format!("horner.{size:?}"), Arc::new(b.build().unwrap()))
        .with_input(0, inputs(n, 0x99u64))
}

/// `hash`: multiply-xor-shift mixing over a fixed tainted table —
/// ALU-dense with bit operations, the instruction mix of checksum and
/// hash inner loops.
pub fn hash_like(size: Size) -> Workload {
    let n = size.n();
    let mut b = ProgramBuilder::new();
    b.func("main");
    ingest(&mut b, n);
    b.li(R(3), SWEEPS);
    b.li(R(10), 0x100_0193); // FNV-ish multiplier
    b.label("sweep");
    b.li(R(1), 0);
    b.label("inner");
    b.branch(BranchCond::Geu, R(1), R(7), "sweep_end");
    b.add(R(6), R(2), R(1));
    b.load(R(5), R(6), 0);
    b.bin(BinOp::Xor, R(11), R(11), R(5));
    b.bin(BinOp::Mul, R(11), R(11), R(10));
    b.bini(BinOp::Shr, R(4), R(11), 13);
    b.bin(BinOp::Xor, R(11), R(11), R(4));
    b.addi(R(1), R(1), 1);
    b.jump("inner");
    b.label("sweep_end");
    b.bini(BinOp::Sub, R(3), R(3), 1);
    b.branch(BranchCond::Ne, R(3), R(0), "sweep");
    b.output(R(11), 0);
    b.halt();
    Workload::new(format!("hash.{size:?}"), Arc::new(b.build().unwrap()))
        .with_input(0, inputs(n, 0xbbu64))
}

/// `sliding`: the cache-hostile control — identical structure to
/// [`ssum_like`] but the scan base advances one word per sweep, so every
/// sweep's address stream differs and shape guards must bail. Harnesses
/// report it alongside the cacheable kernels as the honesty row.
pub fn sliding_like(size: Size) -> Workload {
    let n = size.n();
    let mut b = ProgramBuilder::new();
    b.func("main");
    // Ingest n + SWEEPS words so every window stays in bounds.
    ingest(&mut b, n + SWEEPS as u64);
    b.li(R(7), n as i64); // window length (ingest left n + SWEEPS in R7)
    b.li(R(3), SWEEPS);
    b.label("sweep");
    b.li(R(1), 0);
    b.label("inner");
    b.branch(BranchCond::Geu, R(1), R(7), "sweep_end");
    b.add(R(6), R(2), R(1));
    b.load(R(5), R(6), 0);
    b.add(R(11), R(11), R(5));
    b.addi(R(1), R(1), 1);
    b.jump("inner");
    b.label("sweep_end");
    b.addi(R(2), R(2), 1); // slide the window base
    b.bini(BinOp::Sub, R(3), R(3), 1);
    b.branch(BranchCond::Ne, R(3), R(0), "sweep");
    b.output(R(11), 0);
    b.halt();
    Workload::new(format!("sliding.{size:?}"), Arc::new(b.build().unwrap()))
        .with_input(0, inputs(n + SWEEPS as u64, 0xddu64))
}

/// The loop suite at a size class: four cacheable kernels plus the
/// cache-hostile control.
pub fn all_loops(size: Size) -> Vec<Workload> {
    vec![
        ssum_like(size),
        stencil_like(size),
        horner_like(size),
        hash_like(size),
        sliding_like(size),
    ]
}

/// The kernels whose sweeps are shape-stable (the gated geomean set —
/// [`sliding_like`] is excluded by design, not by measurement).
pub fn cacheable_loop_names() -> Vec<&'static str> {
    vec!["ssum", "stencil", "horner", "hash"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_loop_kernels_run_and_emit_checksums() {
        for w in all_loops(Size::Tiny) {
            let mut m = w.machine();
            let r = m.run();
            assert!(r.status.is_clean(), "{} must finish cleanly: {:?}", w.name, r.status);
            assert_eq!(m.output(0).len(), 1, "{} emits one checksum", w.name);
        }
    }

    #[test]
    fn checksums_are_deterministic() {
        for (a, b) in all_loops(Size::Tiny).iter().zip(all_loops(Size::Tiny)) {
            let mut ma = a.machine();
            let mut mb = b.machine();
            ma.run();
            mb.run();
            assert_eq!(ma.output(0), mb.output(0), "{} must be deterministic", a.name);
        }
    }
}
