//! The multithreaded key-value server (the MySQL 3.23.56 scenario).
//!
//! A main thread spawns `workers` worker threads; each worker serves a
//! request stream from its own input channel. Requests are triples
//! `(op, key, value)`: `op` 1 = PUT, 2 = GET (emits the value on output
//! channel 1), 3 = quit. The store is a shared open-addressing hash table
//! protected by a CAS spin lock — the synchronization pattern the sync
//! detector recognizes.
//!
//! With [`ServerConfig::with_bug`], a PUT whose *value* is the poison
//! constant `0xBAD` triggers the seeded memory bug: the worker copies the
//! value into a fixed 4-word scratch area with an unchecked length taken
//! from `key % 8`, overrunning into the adjacent word that holds the
//! worker's dispatch pointer, so the next request faults with a wild
//! jump. Placing the poison request near the end of a long stream
//! reproduces the paper's "fails after executing for a long time".

use crate::Workload;
use dift_isa::{BinOp, BranchCond, ProgramBuilder, Reg};
use std::sync::Arc;

const LOCK: u64 = 100; // lock word
const TABLE: u64 = 4_096; // hash table base (1024 slots: key, value pairs)
const TABLE_SLOTS: u64 = 1_024;
const SCRATCH: u64 = 200; // per-worker scratch: 8 words apart
const R: fn(u8) -> Reg = Reg;

/// Server workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    pub workers: u64,
    /// Requests per worker (excluding the final quit).
    pub requests_per_worker: u64,
    /// Inject the memory-corruption bug near the end of worker 0's
    /// stream.
    pub with_bug: bool,
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 2, requests_per_worker: 60, with_bug: false, seed: 11 }
    }
}

/// Build the server program + request streams.
pub fn server(cfg: ServerConfig) -> Workload {
    let mut rng = crate::Lcg::new(cfg.seed);
    let mut streams = Vec::new();
    for wid in 0..cfg.workers {
        let mut stream = Vec::new();
        for i in 0..cfg.requests_per_worker {
            let key = rng.below(500) + 1;
            if cfg.with_bug && wid == 0 && i == cfg.requests_per_worker - 2 {
                // The malformed request: poison value.
                stream.extend_from_slice(&[1, 6, 0xBAD]);
            } else if rng.below(3) == 0 {
                stream.extend_from_slice(&[2, key, 0]); // GET
            } else {
                stream.extend_from_slice(&[1, key, rng.below(10_000)]); // PUT
            }
        }
        streams.push(stream);
    }
    server_with_streams(cfg, streams)
}

/// Build the server with explicit per-worker request streams instead of
/// the seeded random mix: `streams[wid]` feeds worker `wid` (channel
/// `wid + 1`) as `(op, key, value)` triples. The quit request is
/// appended automatically. Multi-tenant scenarios (the sentinel's
/// exfiltration corpus) use this to stage one tenant's secrets against
/// another tenant's reads.
pub fn server_with_streams(cfg: ServerConfig, streams: Vec<Vec<u64>>) -> Workload {
    assert_eq!(streams.len(), cfg.workers as usize, "one stream per worker");
    let mut b = ProgramBuilder::new();

    b.func("main");
    b.li(R(1), 0);
    b.li(R(20), cfg.workers as i64);
    b.li(R(21), 0); // wid
    b.label("spawn_loop");
    b.branch(BranchCond::Geu, R(21), R(20), "join_all");
    b.spawn(R(22), "worker", R(21));
    // Remember tid at TIDS + wid.
    b.li(R(23), 60);
    b.add(R(23), R(23), R(21));
    b.store(R(22), R(23), 0);
    b.addi(R(21), R(21), 1);
    b.jump("spawn_loop");
    b.label("join_all");
    b.li(R(21), 0);
    b.label("join_loop");
    b.branch(BranchCond::Geu, R(21), R(20), "main_done");
    b.li(R(23), 60);
    b.add(R(23), R(23), R(21));
    b.load(R(24), R(23), 0);
    b.join(R(24));
    b.addi(R(21), R(21), 1);
    b.jump("join_loop");
    b.label("main_done");
    b.li(R(25), 1);
    b.output(R(25), 0); // server completed marker
    b.halt();

    // Worker: r4 = wid (spawn arg); input channel = wid + 1.
    b.func("worker");
    // channel register r26 = wid + 1 — In takes a static channel, so
    // dispatch by wid (supports up to 4 workers).
    b.li(R(1), 1);
    b.branch(BranchCond::Eq, R(4), R(0), "serve_ch1");
    b.branch(BranchCond::Eq, R(4), R(1), "serve_ch2");
    b.li(R(2), 2);
    b.branch(BranchCond::Eq, R(4), R(2), "serve_ch3");
    b.jump("serve_ch4");

    for (ch, label, next) in [
        (1u16, "serve_ch1", "w1"),
        (2, "serve_ch2", "w2"),
        (3, "serve_ch3", "w3"),
        (4, "serve_ch4", "w4"),
    ] {
        b.label(label);
        worker_body(&mut b, ch, next, cfg.with_bug);
    }

    // Request streams.
    let mut w = Workload::new(
        format!(
            "server.w{}x{}{}",
            cfg.workers,
            cfg.requests_per_worker,
            if cfg.with_bug { ".bug" } else { "" }
        ),
        Arc::new(b.build().unwrap()),
    )
    .with_quantum(16);
    for (wid, mut stream) in streams.into_iter().enumerate() {
        stream.extend_from_slice(&[3, 0, 0]); // quit
        w = w.with_input(wid as u16 + 1, stream);
    }
    w
}

/// Emit one worker's serve loop reading from `ch`. `p` prefixes labels so
/// the four copies don't collide.
fn worker_body(b: &mut ProgramBuilder, ch: u16, p: &str, with_bug: bool) {
    let l = |s: &str| format!("{p}_{s}");
    // Scratch base for this worker: SCRATCH + ch * 8.
    b.li(R(19), (SCRATCH + ch as u64 * 8) as i64);
    // Dispatch pointer: scratch[5] holds the serve-loop address, used
    // between requests (the word the bug clobbers).
    b.label(&l("entry"));
    let serve_addr = b.here();
    b.li(R(18), serve_addr as i64 + 2); // address of the loop head below
    b.store(R(18), R(19), 5);
    b.label(&l("loop"));
    b.input(R(5), ch); // op
    b.li(R(6), 3);
    b.branch(BranchCond::Eq, R(5), R(6), l("quit"));
    b.input(R(7), ch); // key
    b.input(R(8), ch); // value
    if with_bug {
        // Poison check: value == 0xBAD triggers the buggy path.
        b.li(R(9), 0xBAD);
        b.branch(BranchCond::Eq, R(8), R(9), l("bug"));
    }
    b.li(R(9), 1);
    b.branch(BranchCond::Eq, R(5), R(9), l("put"));
    // GET: lock, probe, unlock, emit.
    emit_lock(b, &l("get_lock"));
    emit_probe(b, &l("getp"));
    // r12 = slot addr or 0
    b.branch(BranchCond::Eq, R(12), R(0), l("get_miss"));
    b.load(R(13), R(12), 1);
    b.jump(l("get_out"));
    b.label(&l("get_miss"));
    b.li(R(13), 0);
    b.label(&l("get_out"));
    emit_unlock(b);
    b.output(R(13), 1);
    b.jump(l("cont"));
    // PUT: lock, probe-or-insert, store value, unlock.
    b.label(&l("put"));
    emit_lock(b, &l("put_lock"));
    emit_probe_insert(b, &l("puti"));
    b.store(R(8), R(12), 1);
    emit_unlock(b);
    b.jump(l("cont"));
    if with_bug {
        // The bug: copy `key % 8` words of the value into a 4-word
        // scratch buffer (unchecked length — words 4..7 overrun, word 5
        // is the dispatch pointer).
        b.label(&l("bug"));
        b.bini(BinOp::Rem, R(10), R(7), 8); // len = key % 8 (6 for key=6)
        b.li(R(11), 0);
        b.label(&l("bugcopy"));
        b.branch(BranchCond::Geu, R(11), R(10), l("cont"));
        b.add(R(12), R(19), R(11));
        b.store(R(8), R(12), 0); // scratch[i] = poison value
        b.addi(R(11), R(11), 1);
        b.jump(l("bugcopy"));
    }
    // Between requests: return to the serve loop through the dispatch
    // pointer (clobbered by the bug -> wild jump on the next request).
    b.label(&l("cont"));
    b.load(R(17), R(19), 5);
    b.jump_ind(R(17));
    b.label(&l("quit"));
    b.halt();
}

/// CAS spin lock acquire on LOCK.
fn emit_lock(b: &mut ProgramBuilder, p: &str) {
    b.li(R(14), LOCK as i64);
    b.li(R(15), 1);
    b.label(p);
    b.cas(R(16), R(14), R(0), R(15)); // expect 0, set 1
    b.branch(BranchCond::Ne, R(16), R(0), p); // retry while held
}

/// Lock release.
fn emit_unlock(b: &mut ProgramBuilder) {
    b.li(R(14), LOCK as i64);
    b.store(R(0), R(14), 0);
}

/// Probe for key r7; r12 = slot base address or 0 when absent.
/// Clobbers r10, r11.
fn emit_probe(b: &mut ProgramBuilder, p: &str) {
    b.bini(BinOp::Mul, R(10), R(7), 0x9E3779B1);
    b.bini(BinOp::Shr, R(10), R(10), 16);
    b.bini(BinOp::And, R(10), R(10), (TABLE_SLOTS - 1) as i64);
    b.li(R(11), 0); // probes tried
    b.label(p);
    b.bini(BinOp::Shl, R(12), R(10), 1);
    b.addi(R(12), R(12), TABLE as i64); // slot addr = TABLE + 2*idx
    b.load(R(13), R(12), 0);
    b.branch(BranchCond::Eq, R(13), R(7), format!("{p}_done"));
    b.branch(BranchCond::Eq, R(13), R(0), format!("{p}_miss"));
    b.addi(R(10), R(10), 1);
    b.bini(BinOp::And, R(10), R(10), (TABLE_SLOTS - 1) as i64);
    b.addi(R(11), R(11), 1);
    b.jump(p);
    b.label(&format!("{p}_miss"));
    b.li(R(12), 0);
    b.label(&format!("{p}_done"));
}

/// Probe-or-insert for key r7; r12 = slot base address (key written).
fn emit_probe_insert(b: &mut ProgramBuilder, p: &str) {
    b.bini(BinOp::Mul, R(10), R(7), 0x9E3779B1);
    b.bini(BinOp::Shr, R(10), R(10), 16);
    b.bini(BinOp::And, R(10), R(10), (TABLE_SLOTS - 1) as i64);
    b.label(p);
    b.bini(BinOp::Shl, R(12), R(10), 1);
    b.addi(R(12), R(12), TABLE as i64);
    b.load(R(13), R(12), 0);
    b.branch(BranchCond::Eq, R(13), R(7), format!("{p}_done"));
    b.branch(BranchCond::Eq, R(13), R(0), format!("{p}_new"));
    b.addi(R(10), R(10), 1);
    b.bini(BinOp::And, R(10), R(10), (TABLE_SLOTS - 1) as i64);
    b.jump(p);
    b.label(&format!("{p}_new"));
    b.store(R(7), R(12), 0);
    b.label(&format!("{p}_done"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dift_vm::ExitStatus;

    #[test]
    fn healthy_server_completes() {
        let w = server(ServerConfig::default());
        let mut m = w.machine();
        let r = m.run();
        assert!(r.status.is_clean(), "{:?}", r.status);
        assert_eq!(m.output(0), &[1], "completion marker");
        assert!(!m.output(1).is_empty(), "GETs answered");
        assert_eq!(r.threads, 3, "main + 2 workers");
    }

    #[test]
    fn buggy_server_faults_late() {
        let w = server(ServerConfig { with_bug: true, ..Default::default() });
        let mut m = w.machine();
        let r = m.run();
        assert!(
            matches!(r.status, ExitStatus::Faulted { .. }),
            "poison request must crash the worker: {:?}",
            r.status
        );
        // The fault strikes late in the run (the paper's long-running
        // failure): past 3/4 of the healthy run length.
        let healthy_steps = {
            let w2 = server(ServerConfig::default());
            let mut m2 = w2.machine();
            m2.run().steps
        };
        assert!(r.steps > healthy_steps / 2, "{} vs {healthy_steps}", r.steps);
    }

    #[test]
    fn server_is_deterministic_under_fixed_schedule() {
        let w = server(ServerConfig::default());
        let a = {
            let mut m = w.machine();
            m.run();
            m.output(1).to_vec()
        };
        let b = {
            let mut m = w.machine();
            m.run();
            m.output(1).to_vec()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn four_workers_are_supported() {
        let w = server(ServerConfig { workers: 4, requests_per_worker: 20, ..Default::default() });
        let mut m = w.machine();
        let r = m.run();
        assert!(r.status.is_clean(), "{:?}", r.status);
        assert_eq!(r.threads, 5);
    }
}
