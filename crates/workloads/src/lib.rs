//! # dift-workloads — the benchmark programs
//!
//! The paper evaluates on SPEC 2000 integer benchmarks, a MySQL server
//! run, SPLASH parallel kernels and scientific applications. None of
//! those binaries can run on this substrate, so this crate provides
//! synthetic equivalents *written for our ISA* that reproduce the
//! relevant characteristics:
//!
//! * [`spec`] — seven single-threaded CPU-bound kernels spanning the
//!   instruction mixes that drive tracing overheads (compression,
//!   parsing, graph relaxation, transforms, hashing, permutation
//!   chasing, annealing).
//! * [`server`] — a multithreaded key-value server processing a request
//!   stream, with an optional seeded memory-corruption bug that fires
//!   late in the run (the MySQL 3.23.56 scenario of §2.2).
//! * [`loops`] — loop-dominated kernels whose outer sweeps re-scan
//!   fixed buffers: the regime the hot-code taint summary cache (T5)
//!   targets, plus a cache-hostile sliding-window control.
//! * [`parallel`] — barrier/lock/flag-synchronized parallel kernels in
//!   the style of SPLASH (fft-like staged butterflies, lu-like blocked
//!   elimination, radix-like counted histogramming).
//! * [`science`] — input-consuming pipelines whose *lineage structure*
//!   (overlap, clustering) matches the scientific workloads of §3.4.
//!
//! Every workload is a [`Workload`]: a program plus inputs and machine
//! settings, so harnesses run them uniformly.

pub mod loops;
pub mod parallel;
pub mod science;
pub mod server;
pub mod spec;

use dift_isa::Program;
use dift_vm::{Arrival, Machine, MachineConfig, SchedPolicy};
use std::sync::Arc;

/// A runnable benchmark: program + inputs + machine settings.
#[derive(Clone)]
pub struct Workload {
    pub name: String,
    pub program: Arc<Program>,
    /// Pre-seeded inputs per channel.
    pub inputs: Vec<(u16, Vec<u64>)>,
    /// Timed arrivals (server workloads).
    pub arrivals: Vec<Arrival>,
    /// Scheduler quantum (parallel workloads pick small quanta).
    pub quantum: u32,
    /// Scheduling policy.
    pub sched: SchedPolicy,
    /// Data memory size in words.
    pub mem_words: usize,
}

impl Workload {
    pub fn new(name: impl Into<String>, program: Arc<Program>) -> Workload {
        Workload {
            name: name.into(),
            program,
            inputs: Vec::new(),
            arrivals: Vec::new(),
            quantum: 64,
            sched: SchedPolicy::RoundRobin,
            mem_words: 1 << 16,
        }
    }

    pub fn with_input(mut self, channel: u16, values: Vec<u64>) -> Workload {
        self.inputs.push((channel, values));
        self
    }

    pub fn with_quantum(mut self, q: u32) -> Workload {
        self.quantum = q;
        self
    }

    pub fn with_sched(mut self, s: SchedPolicy) -> Workload {
        self.sched = s;
        self
    }

    /// The machine configuration this workload wants.
    pub fn config(&self) -> MachineConfig {
        MachineConfig {
            mem_words: self.mem_words,
            heap_base: (self.mem_words / 2) as u64,
            quantum: self.quantum,
            sched: self.sched.clone(),
            arrivals: self.arrivals.clone(),
            ..MachineConfig::default()
        }
    }

    /// Build a ready-to-run machine.
    pub fn machine(&self) -> Machine {
        let mut m = Machine::new(self.program.clone(), self.config());
        for (ch, vals) in &self.inputs {
            m.feed_input(*ch, vals);
        }
        m
    }
}

/// Simple deterministic PRNG for workload data (host side).
pub(crate) struct Lcg(u64);

impl Lcg {
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed.max(1))
    }

    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_spec_workloads_run_clean() {
        for w in spec::all_spec(spec::Size::Tiny) {
            let mut m = w.machine();
            let r = m.run();
            assert!(r.status.is_clean(), "{}: {:?}", w.name, r.status);
            assert!(!m.output(0).is_empty(), "{}: must emit a checksum", w.name);
        }
    }

    #[test]
    fn spec_workloads_are_deterministic() {
        for w in spec::all_spec(spec::Size::Tiny) {
            let out1 = {
                let mut m = w.machine();
                m.run();
                m.output(0).to_vec()
            };
            let out2 = {
                let mut m = w.machine();
                m.run();
                m.output(0).to_vec()
            };
            assert_eq!(out1, out2, "{}", w.name);
        }
    }

    #[test]
    fn lcg_is_deterministic_and_varied() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        let xs: Vec<u64> = (0..10).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 5);
    }
}
