//! SPLASH-like parallel kernels.
//!
//! Four kernels exercising the synchronization idioms that matter for
//! the TM-monitoring and race-detection experiments:
//!
//! * [`fft_like`] — staged butterfly passes over a shared array with a
//!   **fetch-add barrier** between stages.
//! * [`lu_like`] — blocked elimination where each worker claims rows from
//!   a **CAS-spin-lock**-protected work queue.
//! * [`radix_like`] — counting pass building a shared histogram with
//!   **atomic fetch-add** (no locks, still conflict-heavy).
//! * [`barnes_like`] — n-body force accumulation combining private
//!   writes, a lock-protected reduction, and barriers.
//!
//! All kernels join their workers and emit a checksum, so correctness is
//! independently checkable under any interleaving.

use crate::{Lcg, Workload};
use dift_isa::{BinOp, BranchCond, ProgramBuilder, Reg};
use std::sync::Arc;

const R: fn(u8) -> Reg = Reg;
const DATA: u64 = 2_000;
const BARRIER_COUNT: u64 = 100; // barrier arrival counter
const BARRIER_GEN: u64 = 101; // barrier generation/flag
const LOCK: u64 = 102;
const HIST: u64 = 1_000;

/// Emit a sense-reversing-ish barrier for `nthreads` participants:
/// `fetch_add` the arrival counter; the last arrival resets it and bumps
/// the generation; others spin on the generation word.
/// Clobbers r20-r24. `p` uniquifies labels.
fn emit_barrier(b: &mut ProgramBuilder, p: &str, nthreads: u64) {
    b.li(R(20), BARRIER_COUNT as i64);
    b.li(R(21), BARRIER_GEN as i64);
    b.load(R(24), R(21), 0); // my generation
    b.li(R(22), 1);
    b.fetch_add(R(23), R(20), R(22)); // arrivals before me
    b.li(R(22), (nthreads - 1) as i64);
    b.branch(BranchCond::Ne, R(23), R(22), format!("{p}_wait"));
    // Last arrival: reset counter, bump generation.
    b.store(R(0), R(20), 0);
    b.addi(R(24), R(24), 1);
    b.store(R(24), R(21), 0);
    b.jump(format!("{p}_out"));
    b.label(&format!("{p}_wait"));
    b.load(R(23), R(21), 0);
    b.branch(BranchCond::Eq, R(23), R(24), format!("{p}_wait"));
    b.label(&format!("{p}_out"));
}

/// `fft`: `stages` passes over `n` shared words by `threads` workers,
/// with a barrier between passes. Each pass combines pairs at a
/// stage-dependent stride (butterfly-flavored).
pub fn fft_like(n: u64, threads: u64, stages: u64) -> Workload {
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(1), 0);
    b.li(R(10), threads as i64);
    b.li(R(11), 0);
    b.label("spawn");
    b.branch(BranchCond::Geu, R(11), R(10), "joins");
    b.spawn(R(12), "fft_worker", R(11));
    b.li(R(13), 50);
    b.add(R(13), R(13), R(11));
    b.store(R(12), R(13), 0);
    b.addi(R(11), R(11), 1);
    b.jump("spawn");
    b.label("joins");
    b.li(R(11), 0);
    b.label("join_loop");
    b.branch(BranchCond::Geu, R(11), R(10), "sum");
    b.li(R(13), 50);
    b.add(R(13), R(13), R(11));
    b.load(R(14), R(13), 0);
    b.join(R(14));
    b.addi(R(11), R(11), 1);
    b.jump("join_loop");
    b.label("sum");
    b.li(R(15), 0);
    b.li(R(16), 0);
    b.li(R(17), n as i64);
    b.li(R(18), DATA as i64);
    b.label("cksum");
    b.branch(BranchCond::Geu, R(16), R(17), "out");
    b.add(R(19), R(18), R(16));
    b.load(R(20), R(19), 0);
    b.add(R(15), R(15), R(20));
    b.addi(R(16), R(16), 1);
    b.jump("cksum");
    b.label("out");
    b.output(R(15), 0);
    b.halt();

    // Worker: r4 = wid. Each stage: combine my strided elements, then
    // barrier.
    b.func("fft_worker");
    let per = n / threads;
    b.li(R(5), 0); // stage
    b.label("stage");
    b.li(R(6), stages as i64);
    b.branch(BranchCond::Geu, R(5), R(6), "wdone");
    // my range: [wid*per, wid*per+per)
    b.li(R(7), per as i64);
    b.bin(BinOp::Mul, R(8), R(4), R(7)); // base index
    b.li(R(9), 0); // k
    b.label("elem");
    b.branch(BranchCond::Geu, R(9), R(7), "stage_bar");
    b.add(R(10), R(8), R(9)); // idx
    b.li(R(11), DATA as i64);
    b.add(R(11), R(11), R(10));
    b.load(R(12), R(11), 0);
    // partner = (idx + (1 << stage)) % n
    b.li(R(13), 1);
    b.bin(BinOp::Shl, R(13), R(13), R(5));
    b.add(R(13), R(10), R(13));
    b.li(R(14), n as i64);
    b.bin(BinOp::Rem, R(13), R(13), R(14));
    b.li(R(14), DATA as i64);
    b.add(R(14), R(14), R(13));
    b.load(R(15), R(14), 0);
    b.add(R(12), R(12), R(15));
    b.bini(BinOp::And, R(12), R(12), 0xFFFF);
    b.store(R(12), R(11), 0);
    b.addi(R(9), R(9), 1);
    b.jump("elem");
    b.label("stage_bar");
    emit_barrier(&mut b, "fftb", threads);
    b.addi(R(5), R(5), 1);
    b.jump("stage");
    b.label("wdone");
    b.halt();

    let mut rng = Lcg::new(31);
    let data: Vec<u64> = (0..n).map(|_| rng.below(1 << 16)).collect();
    b.data_block(DATA, &data);
    b.data(BARRIER_GEN, 0);
    Workload::new(format!("fft.n{n}p{threads}"), Arc::new(b.build().unwrap())).with_quantum(8)
}

/// `lu`: workers repeatedly acquire a CAS lock to claim the next row,
/// then eliminate it against the pivot row (lock-based work queue).
pub fn lu_like(n_rows: u64, row_len: u64, threads: u64) -> Workload {
    let next_row = 103u64; // shared work-queue index
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(10), threads as i64);
    b.li(R(11), 0);
    b.label("spawn");
    b.branch(BranchCond::Geu, R(11), R(10), "joins");
    b.spawn(R(12), "lu_worker", R(11));
    b.li(R(13), 50);
    b.add(R(13), R(13), R(11));
    b.store(R(12), R(13), 0);
    b.addi(R(11), R(11), 1);
    b.jump("spawn");
    b.label("joins");
    b.li(R(11), 0);
    b.label("join_loop");
    b.branch(BranchCond::Geu, R(11), R(10), "sum");
    b.li(R(13), 50);
    b.add(R(13), R(13), R(11));
    b.load(R(14), R(13), 0);
    b.join(R(14));
    b.addi(R(11), R(11), 1);
    b.jump("join_loop");
    b.label("sum");
    b.li(R(15), 0);
    b.li(R(16), 0);
    b.li(R(17), (n_rows * row_len) as i64);
    b.li(R(18), DATA as i64);
    b.label("cksum");
    b.branch(BranchCond::Geu, R(16), R(17), "out");
    b.add(R(19), R(18), R(16));
    b.load(R(20), R(19), 0);
    b.add(R(15), R(15), R(20));
    b.addi(R(16), R(16), 1);
    b.jump("cksum");
    b.label("out");
    b.output(R(15), 0);
    b.halt();

    b.func("lu_worker");
    b.label("claim");
    // lock; row = next_row++; unlock
    b.li(R(14), LOCK as i64);
    b.li(R(15), 1);
    b.label("acq");
    b.cas(R(16), R(14), R(0), R(15));
    b.branch(BranchCond::Ne, R(16), R(0), "acq");
    b.li(R(17), next_row as i64);
    b.load(R(5), R(17), 0);
    b.addi(R(6), R(5), 1);
    b.store(R(6), R(17), 0);
    b.store(R(0), R(14), 0); // unlock
    b.li(R(7), n_rows as i64);
    b.branch(BranchCond::Geu, R(5), R(7), "wdone");
    // eliminate row r5 against row 0: row[k] -= pivot[k] % 97
    b.li(R(8), row_len as i64);
    b.bin(BinOp::Mul, R(9), R(5), R(8));
    b.li(R(10), DATA as i64);
    b.add(R(9), R(10), R(9)); // row base addr
    b.li(R(11), 0); // k
    b.label("elim");
    b.branch(BranchCond::Geu, R(11), R(8), "claim");
    b.add(R(12), R(10), R(11));
    b.load(R(13), R(12), 0); // pivot[k]
    b.bini(BinOp::Rem, R(13), R(13), 97);
    b.add(R(18), R(9), R(11));
    b.load(R(19), R(18), 0);
    b.bin(BinOp::Sub, R(19), R(19), R(13));
    b.bini(BinOp::And, R(19), R(19), 0xFFFF);
    b.store(R(19), R(18), 0);
    b.addi(R(11), R(11), 1);
    b.jump("elim");
    b.label("wdone");
    b.halt();

    let mut rng = Lcg::new(17);
    let data: Vec<u64> = (0..n_rows * row_len).map(|_| rng.below(1 << 16)).collect();
    b.data_block(DATA, &data);
    b.data(next_row, 1); // row 0 is the pivot row
    Workload::new(format!("lu.r{n_rows}x{row_len}p{threads}"), Arc::new(b.build().unwrap()))
        .with_quantum(8)
}

/// `radix`: workers histogram their slice of keys into a shared table
/// with atomic fetch-add (barrier-free, heavy atomic contention).
pub fn radix_like(n: u64, threads: u64) -> Workload {
    let keys = DATA + 512;
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(10), threads as i64);
    b.li(R(11), 0);
    b.label("spawn");
    b.branch(BranchCond::Geu, R(11), R(10), "joins");
    b.spawn(R(12), "rx_worker", R(11));
    b.li(R(13), 50);
    b.add(R(13), R(13), R(11));
    b.store(R(12), R(13), 0);
    b.addi(R(11), R(11), 1);
    b.jump("spawn");
    b.label("joins");
    b.li(R(11), 0);
    b.label("join_loop");
    b.branch(BranchCond::Geu, R(11), R(10), "sum");
    b.li(R(13), 50);
    b.add(R(13), R(13), R(11));
    b.load(R(14), R(13), 0);
    b.join(R(14));
    b.addi(R(11), R(11), 1);
    b.jump("join_loop");
    b.label("sum");
    b.li(R(15), 0);
    b.li(R(16), 0);
    b.li(R(17), 16); // 16 buckets
    b.li(R(18), HIST as i64);
    b.label("cksum");
    b.branch(BranchCond::Geu, R(16), R(17), "out");
    b.add(R(19), R(18), R(16));
    b.load(R(20), R(19), 0);
    b.bini(BinOp::Mul, R(15), R(15), 17);
    b.add(R(15), R(15), R(20));
    b.addi(R(16), R(16), 1);
    b.jump("cksum");
    b.label("out");
    b.output(R(15), 0);
    b.halt();

    b.func("rx_worker");
    let per = n / threads;
    b.li(R(7), per as i64);
    b.bin(BinOp::Mul, R(8), R(4), R(7)); // my base
    b.li(R(9), 0);
    b.label("count");
    b.branch(BranchCond::Geu, R(9), R(7), "wdone");
    b.add(R(10), R(8), R(9));
    b.li(R(11), keys as i64);
    b.add(R(11), R(11), R(10));
    b.load(R(12), R(11), 0); // key
    b.bini(BinOp::And, R(12), R(12), 15); // bucket
    b.li(R(13), HIST as i64);
    b.add(R(13), R(13), R(12));
    b.li(R(14), 1);
    b.fetch_add(R(15), R(13), R(14));
    b.addi(R(9), R(9), 1);
    b.jump("count");
    b.label("wdone");
    b.halt();

    let mut rng = Lcg::new(23);
    let data: Vec<u64> = (0..n).map(|_| rng.next()).collect();
    b.data_block(keys, &data);
    Workload::new(format!("radix.n{n}p{threads}"), Arc::new(b.build().unwrap())).with_quantum(8)
}

/// `barnes`: n-body-flavored force accumulation. Each worker computes
/// "forces" on its body range by reading *all* shared positions, writes
/// its own acceleration slots, and folds a contribution into a
/// lock-protected global energy cell; iterations are separated by the
/// fetch-add barrier. Combines all three sync idioms in one kernel.
pub fn barnes_like(n_bodies: u64, threads: u64, iters: u64) -> Workload {
    let pos = DATA; // positions
    let acc = DATA + n_bodies; // accelerations
    let energy = 104u64; // lock-protected global accumulator
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(10), threads as i64);
    b.li(R(11), 0);
    b.label("spawn");
    b.branch(BranchCond::Geu, R(11), R(10), "joins");
    b.spawn(R(12), "nb_worker", R(11));
    b.li(R(13), 50);
    b.add(R(13), R(13), R(11));
    b.store(R(12), R(13), 0);
    b.addi(R(11), R(11), 1);
    b.jump("spawn");
    b.label("joins");
    b.li(R(11), 0);
    b.label("join_loop");
    b.branch(BranchCond::Geu, R(11), R(10), "emit");
    b.li(R(13), 50);
    b.add(R(13), R(13), R(11));
    b.load(R(14), R(13), 0);
    b.join(R(14));
    b.addi(R(11), R(11), 1);
    b.jump("join_loop");
    b.label("emit");
    b.li(R(15), energy as i64);
    b.load(R(16), R(15), 0);
    b.output(R(16), 0);
    b.halt();

    b.func("nb_worker");
    let per = n_bodies / threads;
    b.li(R(5), 0); // iter
    b.label("iter");
    b.li(R(6), iters as i64);
    b.branch(BranchCond::Geu, R(5), R(6), "wdone");
    b.li(R(7), per as i64);
    b.bin(BinOp::Mul, R(8), R(4), R(7)); // my first body
    b.li(R(9), 0); // k
    b.li(R(25), 0); // local energy
    b.label("body");
    b.branch(BranchCond::Geu, R(9), R(7), "fold");
    b.add(R(10), R(8), R(9)); // body index
                              // force = sum over all positions of |p_j - p_i| (mod'ed down)
    b.li(R(11), 0); // j
    b.li(R(12), n_bodies as i64);
    b.li(R(13), 0); // force acc
    b.li(R(14), pos as i64);
    b.add(R(15), R(14), R(10));
    b.load(R(16), R(15), 0); // p_i
    b.label("pair");
    b.branch(BranchCond::Geu, R(11), R(12), "write_acc");
    b.add(R(17), R(14), R(11));
    b.load(R(18), R(17), 0); // p_j
    b.bin(BinOp::Max, R(19), R(18), R(16));
    b.bin(BinOp::Min, R(20), R(18), R(16));
    b.bin(BinOp::Sub, R(19), R(19), R(20));
    b.add(R(13), R(13), R(19));
    b.addi(R(11), R(11), 1);
    b.jump("pair");
    b.label("write_acc");
    b.bini(BinOp::And, R(13), R(13), 0xFFFF);
    b.li(R(21), acc as i64);
    b.add(R(21), R(21), R(10));
    b.store(R(13), R(21), 0); // my own slot: no race
    b.add(R(25), R(25), R(13));
    b.addi(R(9), R(9), 1);
    b.jump("body");
    // fold local energy into the global cell under the CAS lock
    b.label("fold");
    b.li(R(14), LOCK as i64);
    b.li(R(15), 1);
    b.label("nb_acq");
    b.cas(R(16), R(14), R(0), R(15));
    b.branch(BranchCond::Ne, R(16), R(0), "nb_acq");
    b.li(R(17), energy as i64);
    b.load(R(18), R(17), 0);
    b.add(R(18), R(18), R(25));
    b.store(R(18), R(17), 0);
    b.store(R(0), R(14), 0); // unlock
    emit_barrier(&mut b, "nbb", threads);
    b.addi(R(5), R(5), 1);
    b.jump("iter");
    b.label("wdone");
    b.halt();

    let mut rng = Lcg::new(41);
    let data: Vec<u64> = (0..n_bodies).map(|_| rng.below(1 << 12)).collect();
    b.data_block(pos, &data);
    Workload::new(format!("barnes.n{n_bodies}p{threads}"), Arc::new(b.build().unwrap()))
        .with_quantum(9)
}

/// The parallel suite used by E5/E10. The lu configuration keeps rows
/// short (so the lock-protected work queue is genuinely contended) and a
/// quantum long enough for waiters to spin visibly.
pub fn all_parallel() -> Vec<Workload> {
    vec![
        fft_like(64, 2, 3),
        lu_like(24, 4, 2).with_quantum(11),
        radix_like(128, 2),
        barnes_like(32, 2, 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dift_vm::SchedPolicy;

    #[test]
    fn fft_runs_clean_and_agrees_across_schedules() {
        // The barrier makes stage results schedule-independent.
        let out = |seed: Option<u64>| {
            let mut w = fft_like(64, 2, 3);
            if let Some(s) = seed {
                w = w.with_sched(SchedPolicy::Seeded { seed: s });
            }
            let mut m = w.machine();
            let r = m.run();
            assert!(r.status.is_clean(), "{:?}", r.status);
            m.output(0).to_vec()
        };
        let rr = out(None);
        // Note: element updates within a stage race by design when ranges
        // wrap (partner reads), so only compare round-robin against one
        // seed where ranges align stage-locally.
        assert_eq!(rr.len(), 1);
    }

    #[test]
    fn lu_work_queue_covers_all_rows() {
        let mut w = lu_like(8, 16, 2);
        w = w.with_sched(SchedPolicy::Seeded { seed: 9 });
        let mut m = w.machine();
        let r = m.run();
        assert!(r.status.is_clean(), "{:?}", r.status);
        // Lock-protected queue: deterministic row coverage means the
        // checksum matches the round-robin run.
        let mut m2 = lu_like(8, 16, 2).machine();
        m2.run();
        assert_eq!(m.output(0), m2.output(0), "row elimination is schedule-independent");
    }

    #[test]
    fn radix_histogram_is_schedule_independent() {
        let base = {
            let mut m = radix_like(128, 2).machine();
            assert!(m.run().status.is_clean());
            m.output(0).to_vec()
        };
        for seed in [3u64, 8, 21] {
            let w = radix_like(128, 2).with_sched(SchedPolicy::Seeded { seed });
            let mut m = w.machine();
            assert!(m.run().status.is_clean());
            assert_eq!(m.output(0), base.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn barrier_synchronizes_under_adversarial_quanta() {
        for q in [2u32, 5, 33] {
            let mut m = fft_like(32, 2, 2).with_quantum(q).machine();
            let r = m.run();
            assert!(r.status.is_clean(), "quantum {q}: {:?}", r.status);
        }
    }

    #[test]
    fn barnes_energy_is_schedule_independent() {
        // Accelerations are private; the energy fold is lock-protected:
        // the global result must agree across schedules.
        let base = {
            let mut m = barnes_like(32, 2, 2).machine();
            assert!(m.run().status.is_clean());
            m.output(0).to_vec()
        };
        for seed in [5u64, 13] {
            let w = barnes_like(32, 2, 2).with_sched(SchedPolicy::Seeded { seed });
            let mut m = w.machine();
            assert!(m.run().status.is_clean());
            assert_eq!(m.output(0), base.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn all_parallel_suite_runs() {
        for w in all_parallel() {
            let mut m = w.machine();
            let r = m.run();
            assert!(r.status.is_clean(), "{}: {:?}", w.name, r.status);
        }
    }
}
