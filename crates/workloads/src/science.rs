//! Scientific pipelines for lineage tracing (§3.4).
//!
//! These programs read their data through `In` (so every word is a
//! distinct lineage source) and compute outputs whose lineage sets have
//! the structure the paper exploits:
//!
//! * [`binning`] — each output aggregates a *contiguous* run of inputs
//!   (clustered lineage; roBDD ranges collapse).
//! * [`sliding_window`] — adjacent outputs share most of their window
//!   (overlapping lineage; hash-consing shares subgraphs).
//! * [`scatter_sum`] — inputs scatter into bins by value (fragmented
//!   lineage; the adversarial case where compression helps least).

use crate::{Lcg, Workload};
use dift_isa::{BinOp, BranchCond, ProgramBuilder, Reg};
use std::sync::Arc;

const R: fn(u8) -> Reg = Reg;
const BUF: u64 = 2_000;

/// Ground-truth lineage for validation: `expected[k]` is the sorted input
/// indices output `k` depends on.
pub struct SciencePipeline {
    pub workload: Workload,
    pub expected_lineage: Vec<Vec<u64>>,
}

/// `binning(n, bin)`: read `n` inputs; output the sum of each consecutive
/// `bin`-sized group. Output k depends on inputs [k*bin, (k+1)*bin).
pub fn binning(n: u64, bin: u64) -> SciencePipeline {
    assert!(n % bin == 0);
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(1), n as i64);
    b.li(R(2), 0); // i
    b.li(R(3), 0); // acc
    b.li(R(4), bin as i64);
    b.li(R(5), 0); // in-bin count
    b.label("loop");
    b.branch(BranchCond::Geu, R(2), R(1), "done");
    b.input(R(6), 0);
    b.add(R(3), R(3), R(6));
    b.addi(R(5), R(5), 1);
    b.addi(R(2), R(2), 1);
    b.branch(BranchCond::Ne, R(5), R(4), "loop");
    b.output(R(3), 0);
    b.li(R(3), 0);
    b.li(R(5), 0);
    b.jump("loop");
    b.label("done");
    b.halt();

    let mut rng = Lcg::new(8);
    let inputs: Vec<u64> = (0..n).map(|_| rng.below(100)).collect();
    let expected = (0..n / bin).map(|k| (k * bin..(k + 1) * bin).collect()).collect();
    SciencePipeline {
        workload: Workload::new(format!("binning.n{n}b{bin}"), Arc::new(b.build().unwrap()))
            .with_input(0, inputs),
        expected_lineage: expected,
    }
}

/// `sliding_window(n, w)`: read `n` inputs into a buffer, then output the
/// sum of each length-`w` window. Output k depends on inputs [k, k+w).
pub fn sliding_window(n: u64, w: u64) -> SciencePipeline {
    assert!(w <= n);
    let mut b = ProgramBuilder::new();
    b.func("main");
    // Fill buffer from input.
    b.li(R(1), n as i64);
    b.li(R(2), 0);
    b.li(R(3), BUF as i64);
    b.label("fill");
    b.branch(BranchCond::Geu, R(2), R(1), "windows");
    b.input(R(4), 0);
    b.add(R(5), R(3), R(2));
    b.store(R(4), R(5), 0);
    b.addi(R(2), R(2), 1);
    b.jump("fill");
    // Window sums.
    b.label("windows");
    b.li(R(2), 0); // k
    b.li(R(6), (n - w + 1) as i64);
    b.label("win");
    b.branch(BranchCond::Geu, R(2), R(6), "done");
    b.li(R(7), 0); // acc
    b.li(R(8), 0); // j
    b.li(R(9), w as i64);
    b.label("accum");
    b.branch(BranchCond::Geu, R(8), R(9), "emit");
    b.add(R(10), R(2), R(8));
    b.add(R(10), R(3), R(10));
    b.load(R(11), R(10), 0);
    b.add(R(7), R(7), R(11));
    b.addi(R(8), R(8), 1);
    b.jump("accum");
    b.label("emit");
    b.output(R(7), 0);
    b.addi(R(2), R(2), 1);
    b.jump("win");
    b.label("done");
    b.halt();

    let mut rng = Lcg::new(15);
    let inputs: Vec<u64> = (0..n).map(|_| rng.below(100)).collect();
    let expected = (0..n - w + 1).map(|k| (k..k + w).collect()).collect();
    SciencePipeline {
        workload: Workload::new(format!("window.n{n}w{w}"), Arc::new(b.build().unwrap()))
            .with_input(0, inputs),
        expected_lineage: expected,
    }
}

/// `scatter_sum(n, bins)`: each input lands in bin `value % bins`; after
/// reading everything, the bins are emitted. Output k depends on the
/// (scattered) set of inputs with `value % bins == k`.
pub fn scatter_sum(n: u64, bins: u64) -> SciencePipeline {
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(1), n as i64);
    b.li(R(2), 0);
    b.li(R(3), BUF as i64); // bins live at BUF
    b.li(R(4), bins as i64);
    b.label("scatter");
    b.branch(BranchCond::Geu, R(2), R(1), "emit_bins");
    b.input(R(5), 0);
    b.bin(BinOp::Rem, R(6), R(5), R(4));
    b.add(R(7), R(3), R(6));
    b.load(R(8), R(7), 0);
    b.add(R(8), R(8), R(5));
    b.store(R(8), R(7), 0);
    b.addi(R(2), R(2), 1);
    b.jump("scatter");
    b.label("emit_bins");
    b.li(R(2), 0);
    b.label("emit");
    b.branch(BranchCond::Geu, R(2), R(4), "done");
    b.add(R(7), R(3), R(2));
    b.load(R(8), R(7), 0);
    b.output(R(8), 0);
    b.addi(R(2), R(2), 1);
    b.jump("emit");
    b.label("done");
    b.halt();

    let mut rng = Lcg::new(27);
    let inputs: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
    let mut expected: Vec<Vec<u64>> = vec![Vec::new(); bins as usize];
    for (i, v) in inputs.iter().enumerate() {
        expected[(v % bins) as usize].push(i as u64);
    }
    SciencePipeline {
        workload: Workload::new(format!("scatter.n{n}b{bins}"), Arc::new(b.build().unwrap()))
            .with_input(0, inputs),
        expected_lineage: expected,
    }
}

/// `prefix_sum(n)`: `buffer[k] = buffer[k-1] + input[k]`, kept resident,
/// then all cells are emitted. The lineage of cell k is `{0..=k}` —
/// maximal overlap *and* clustering, resident in memory for the whole
/// run: the showcase for the roBDD representation.
pub fn prefix_sum(n: u64) -> SciencePipeline {
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(1), n as i64);
    b.li(R(2), 0); // k
    b.li(R(3), BUF as i64);
    b.li(R(7), 0); // running sum
    b.label("scan");
    b.branch(BranchCond::Geu, R(2), R(1), "emit_all");
    b.input(R(4), 0);
    b.add(R(7), R(7), R(4));
    b.add(R(5), R(3), R(2));
    b.store(R(7), R(5), 0);
    b.addi(R(2), R(2), 1);
    b.jump("scan");
    b.label("emit_all");
    b.li(R(2), 0);
    b.label("emit");
    b.branch(BranchCond::Geu, R(2), R(1), "done");
    b.add(R(5), R(3), R(2));
    b.load(R(6), R(5), 0);
    b.output(R(6), 0);
    b.addi(R(2), R(2), 1);
    b.jump("emit");
    b.label("done");
    b.halt();

    let mut rng = Lcg::new(33);
    let inputs: Vec<u64> = (0..n).map(|_| rng.below(50)).collect();
    let expected = (0..n).map(|k| (0..=k).collect()).collect();
    SciencePipeline {
        workload: Workload::new(format!("prefix.n{n}"), Arc::new(b.build().unwrap()))
            .with_input(0, inputs),
        expected_lineage: expected,
    }
}

/// The pipelines used by E7, at a given input scale.
pub fn all_science(n: u64) -> Vec<SciencePipeline> {
    vec![binning(n, 8), sliding_window(n, 16), scatter_sum(n, 16), prefix_sum(n)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_output_values_are_group_sums() {
        let p = binning(32, 8);
        let inputs = p.workload.inputs[0].1.clone();
        let mut m = p.workload.machine();
        assert!(m.run().status.is_clean());
        let out = m.output(0);
        assert_eq!(out.len(), 4);
        for (k, &o) in out.iter().enumerate() {
            let want: u64 = inputs[k * 8..(k + 1) * 8].iter().sum();
            assert_eq!(o, want, "bin {k}");
        }
    }

    #[test]
    fn window_outputs_match_direct_computation() {
        let p = sliding_window(24, 4);
        let inputs = p.workload.inputs[0].1.clone();
        let mut m = p.workload.machine();
        assert!(m.run().status.is_clean());
        let out = m.output(0);
        assert_eq!(out.len(), 21);
        for (k, &o) in out.iter().enumerate() {
            let want: u64 = inputs[k..k + 4].iter().sum();
            assert_eq!(o, want, "window {k}");
        }
    }

    #[test]
    fn scatter_bins_partition_the_input() {
        let p = scatter_sum(48, 8);
        let mut m = p.workload.machine();
        assert!(m.run().status.is_clean());
        let out_sum: u64 = m.output(0).iter().sum();
        let in_sum: u64 = p.workload.inputs[0].1.iter().sum();
        assert_eq!(out_sum, in_sum, "bins must conserve the total");
    }

    #[test]
    fn expected_lineage_covers_all_inputs_exactly_once_for_partitions() {
        for p in [binning(32, 8), scatter_sum(48, 8)] {
            let mut seen: Vec<u64> = p.expected_lineage.iter().flatten().copied().collect();
            seen.sort_unstable();
            let n = p.workload.inputs[0].1.len() as u64;
            assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }
    }
}
