//! SPEC-2000-like single-threaded kernels.
//!
//! Seven CPU-bound kernels standing in for the SPEC integer suite. They
//! are chosen to span the characteristics that drive tracing/DIFT
//! overheads: basic-block reuse (hot loops), load/store density, branch
//! density, and pointer chasing. Each kernel initializes its working set
//! in the data image (deterministic, seeded) and emits a checksum on
//! output channel 0 so results are verifiable.

use crate::{Lcg, Workload};
use dift_isa::{BinOp, BranchCond, ProgramBuilder, Reg};
use std::sync::Arc;

/// Working-set size class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Size {
    /// Unit-test scale (fast under the tracer).
    Tiny,
    /// Default experiment scale.
    Small,
    /// Long-run scale for window experiments.
    Medium,
}

impl Size {
    pub fn n(self) -> u64 {
        match self {
            Size::Tiny => 64,
            Size::Small => 512,
            Size::Medium => 4096,
        }
    }
}

const A: u64 = 1_000; // primary array base
const B: u64 = 18_000; // secondary array base
const S: u64 = 30_000; // scratch/stack base

// Register conventions inside kernels (locals, no ABI needed).
const R: fn(u8) -> Reg = Reg;

/// `compress`: run-length encoding + checksum (gzip-like: byte runs,
/// branchy inner loop, sequential loads, bursty stores). The stream is
/// read from input channel 0 — as a real compressor would — which also
/// makes it the reference kernel for input-taint experiments.
pub fn compress_like(size: Size) -> Workload {
    let n = size.n();
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(7), n as i64); // n
                          // Ingest the stream into A.
    b.li(R(1), 0);
    b.li(R(2), A as i64);
    b.label("ingest");
    b.branch(BranchCond::Geu, R(1), R(7), "enc");
    b.input(R(5), 0);
    b.add(R(6), R(2), R(1));
    b.store(R(5), R(6), 0);
    b.addi(R(1), R(1), 1);
    b.jump("ingest");
    b.label("enc");
    b.li(R(1), 1); // i
    b.li(R(3), B as i64);
    b.li(R(4), 0); // j
    b.load(R(5), R(2), 0); // cur = A[0]
    b.li(R(6), 1); // cnt
    b.label("loop");
    b.branch(BranchCond::Geu, R(1), R(7), "done");
    b.add(R(8), R(2), R(1));
    b.load(R(9), R(8), 0);
    b.branch(BranchCond::Eq, R(9), R(5), "same");
    // emit run
    b.add(R(10), R(3), R(4));
    b.store(R(5), R(10), 0);
    b.store(R(6), R(10), 1);
    b.addi(R(4), R(4), 2);
    b.mov(R(5), R(9));
    b.li(R(6), 1);
    b.jump("next");
    b.label("same");
    b.addi(R(6), R(6), 1);
    b.label("next");
    b.addi(R(1), R(1), 1);
    b.jump("loop");
    b.label("done");
    b.add(R(10), R(3), R(4));
    b.store(R(5), R(10), 0);
    b.store(R(6), R(10), 1);
    b.addi(R(4), R(4), 2);
    // checksum B[0..j]
    b.li(R(11), 0);
    b.li(R(12), 0);
    b.label("ck");
    b.branch(BranchCond::Geu, R(12), R(4), "out");
    b.add(R(13), R(3), R(12));
    b.load(R(14), R(13), 0);
    b.bini(BinOp::Mul, R(11), R(11), 31);
    b.add(R(11), R(11), R(14));
    b.addi(R(12), R(12), 1);
    b.jump("ck");
    b.label("out");
    b.output(R(11), 0);
    b.halt();

    // Runs of random symbols, fed through the input channel.
    let mut rng = Lcg::new(42);
    let mut data = Vec::with_capacity(n as usize);
    let mut v = rng.below(16);
    while data.len() < n as usize {
        let run = 1 + rng.below(6) as usize;
        for _ in 0..run.min(n as usize - data.len()) {
            data.push(v);
        }
        v = rng.below(16);
    }
    Workload::new(format!("compress.{size:?}"), Arc::new(b.build().unwrap())).with_input(0, data)
}

/// `parser`: RPN expression evaluation with an explicit operand stack
/// (parser-like: data-dependent dispatch chains, stack traffic).
pub fn parser_like(size: Size) -> Workload {
    let n = size.n();
    // Host-side token generation (depth-safe).
    let mut rng = Lcg::new(7);
    let mut tokens: Vec<u64> = Vec::new();
    let mut depth = 0u64;
    while tokens.len() < (n as usize) * 2 {
        if depth < 2 || rng.below(2) == 0 {
            tokens.push(0); // push
            tokens.push(rng.below(1000) + 1);
            depth += 1;
        } else {
            tokens.push(1 + rng.below(3)); // add/mul/sub
            depth -= 1;
        }
    }

    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(1), A as i64); // token ptr
    b.li(R(2), tokens.len() as i64);
    b.li(R(3), S as i64); // stack ptr (absolute)
    b.li(R(4), 0); // i
    b.label("loop");
    b.branch(BranchCond::Geu, R(4), R(2), "fold");
    b.add(R(5), R(1), R(4));
    b.load(R(6), R(5), 0); // token
    b.addi(R(4), R(4), 1);
    b.branch(BranchCond::Ne, R(6), R(0), "op");
    // push literal
    b.add(R(5), R(1), R(4));
    b.load(R(7), R(5), 0);
    b.addi(R(4), R(4), 1);
    b.store(R(7), R(3), 0);
    b.addi(R(3), R(3), 1);
    b.jump("loop");
    b.label("op");
    // pop two
    b.addi(R(3), R(3), -1);
    b.load(R(8), R(3), 0);
    b.addi(R(3), R(3), -1);
    b.load(R(9), R(3), 0);
    b.li(R(10), 1);
    b.branch(BranchCond::Eq, R(6), R(10), "do_add");
    b.li(R(10), 2);
    b.branch(BranchCond::Eq, R(6), R(10), "do_mul");
    b.bin(BinOp::Sub, R(11), R(9), R(8));
    b.jump("push_res");
    b.label("do_add");
    b.bin(BinOp::Add, R(11), R(9), R(8));
    b.jump("push_res");
    b.label("do_mul");
    b.bin(BinOp::Mul, R(11), R(9), R(8));
    b.label("push_res");
    b.store(R(11), R(3), 0);
    b.addi(R(3), R(3), 1);
    b.jump("loop");
    // fold remaining stack into one checksum
    b.label("fold");
    b.li(R(12), 0);
    b.li(R(13), S as i64);
    b.label("fold_loop");
    b.branch(BranchCond::Geu, R(13), R(3), "out");
    b.load(R(14), R(13), 0);
    b.add(R(12), R(12), R(14));
    b.addi(R(13), R(13), 1);
    b.jump("fold_loop");
    b.label("out");
    b.output(R(12), 0);
    b.halt();
    b.data_block(A, &tokens);
    Workload::new(format!("parser.{size:?}"), Arc::new(b.build().unwrap()))
}

/// `mcf`: Bellman–Ford relaxation sweeps over a random edge list
/// (mcf-like: irregular loads, data-dependent branches, few stores).
pub fn mcf_like(size: Size) -> Workload {
    let nodes = size.n();
    let edges = nodes * 2;
    let iters = 4u64;
    let mut rng = Lcg::new(13);
    let mut eu = Vec::new();
    let mut ev = Vec::new();
    let mut ew = Vec::new();
    for i in 0..edges {
        // Ensure reachability with a backbone plus random chords.
        if i < nodes - 1 {
            eu.push(i);
            ev.push(i + 1);
        } else {
            eu.push(rng.below(nodes));
            ev.push(rng.below(nodes));
        }
        ew.push(1 + rng.below(9));
    }
    let (e_u, e_v, e_w) = (A, A + edges, A + 2 * edges);
    let dist = e_w + edges + 16; // dist array after the edge lists

    let mut b = ProgramBuilder::new();
    b.func("main");
    // init dist[] = BIG, dist[0] = 0
    b.li(R(1), dist as i64);
    b.li(R(2), nodes as i64);
    b.li(R(3), 1_000_000);
    b.li(R(4), 0);
    b.label("init");
    b.branch(BranchCond::Geu, R(4), R(2), "init_done");
    b.add(R(5), R(1), R(4));
    b.store(R(3), R(5), 0);
    b.addi(R(4), R(4), 1);
    b.jump("init");
    b.label("init_done");
    b.store(R(0), R(1), 0); // dist[0] = 0 (r0 never written: 0)
    b.li(R(6), iters as i64); // sweep counter
    b.label("sweep");
    b.branch(BranchCond::Eq, R(6), R(0), "sum");
    b.li(R(7), 0); // edge index
    b.li(R(8), edges as i64);
    b.label("edge");
    b.branch(BranchCond::Geu, R(7), R(8), "sweep_end");
    b.li(R(9), e_u as i64);
    b.add(R(9), R(9), R(7));
    b.load(R(10), R(9), 0); // u
    b.li(R(9), e_v as i64);
    b.add(R(9), R(9), R(7));
    b.load(R(11), R(9), 0); // v
    b.li(R(9), e_w as i64);
    b.add(R(9), R(9), R(7));
    b.load(R(12), R(9), 0); // w
    b.add(R(13), R(1), R(10));
    b.load(R(14), R(13), 0); // dist[u]
    b.add(R(15), R(14), R(12)); // cand
    b.add(R(16), R(1), R(11));
    b.load(R(17), R(16), 0); // dist[v]
    b.branch(BranchCond::Geu, R(15), R(17), "no_relax");
    b.store(R(15), R(16), 0);
    b.label("no_relax");
    b.addi(R(7), R(7), 1);
    b.jump("edge");
    b.label("sweep_end");
    b.bini(BinOp::Sub, R(6), R(6), 1);
    b.jump("sweep");
    // checksum dist[]
    b.label("sum");
    b.li(R(18), 0);
    b.li(R(4), 0);
    b.label("cksum");
    b.branch(BranchCond::Geu, R(4), R(2), "out");
    b.add(R(5), R(1), R(4));
    b.load(R(19), R(5), 0);
    b.add(R(18), R(18), R(19));
    b.addi(R(4), R(4), 1);
    b.jump("cksum");
    b.label("out");
    b.output(R(18), 0);
    b.halt();
    b.data_block(e_u, &eu);
    b.data_block(e_v, &ev);
    b.data_block(e_w, &ew);
    Workload::new(format!("mcf.{size:?}"), Arc::new(b.build().unwrap()))
}

/// `bzip`: move-to-front transform (bzip2-like: short scans with early
/// exits, shifting stores, high block reuse).
pub fn bzip_like(size: Size) -> Workload {
    let n = size.n();
    let alpha = 32u64; // alphabet size
    let tab = S; // MTF table
    let mut rng = Lcg::new(99);
    let data: Vec<u64> = (0..n).map(|_| rng.below(alpha)).collect();
    let table: Vec<u64> = (0..alpha).collect();

    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(1), 0); // i
    b.li(R(2), n as i64);
    b.li(R(3), A as i64);
    b.li(R(4), tab as i64);
    b.li(R(5), B as i64); // output array
    b.li(R(15), 0); // checksum
    b.label("loop");
    b.branch(BranchCond::Geu, R(1), R(2), "out");
    b.add(R(6), R(3), R(1));
    b.load(R(7), R(6), 0); // sym
                           // find j with tab[j] == sym
    b.li(R(8), 0); // j
    b.label("find");
    b.add(R(9), R(4), R(8));
    b.load(R(10), R(9), 0);
    b.branch(BranchCond::Eq, R(10), R(7), "found");
    b.addi(R(8), R(8), 1);
    b.jump("find");
    b.label("found");
    // emit j, fold into checksum
    b.add(R(11), R(5), R(1));
    b.store(R(8), R(11), 0);
    b.bini(BinOp::Mul, R(15), R(15), 33);
    b.add(R(15), R(15), R(8));
    // shift tab[0..j] up: k = j; while k > 0 { tab[k] = tab[k-1]; k-- }
    b.mov(R(12), R(8));
    b.label("shift");
    b.branch(BranchCond::Eq, R(12), R(0), "front");
    b.add(R(9), R(4), R(12));
    b.load(R(13), R(9), -1);
    b.store(R(13), R(9), 0);
    b.addi(R(12), R(12), -1);
    b.jump("shift");
    b.label("front");
    b.store(R(7), R(4), 0);
    b.addi(R(1), R(1), 1);
    b.jump("loop");
    b.label("out");
    b.output(R(15), 0);
    b.halt();
    b.data_block(A, &data);
    b.data_block(tab, &table);
    Workload::new(format!("bzip.{size:?}"), Arc::new(b.build().unwrap()))
}

/// `vortex`: open-addressing hash table inserts + lookups (vortex-like:
/// hashing arithmetic, probe chains, mixed hit/miss branches).
pub fn vortex_like(size: Size) -> Workload {
    let n = size.n();
    let table_bits = 12u64;
    let table_size = 1u64 << table_bits; // 4096 slots at B (0 = empty)
    let mut rng = Lcg::new(5);
    let keys: Vec<u64> = (0..n).map(|_| rng.below(1 << 20) + 1).collect();
    let mut probes: Vec<u64> = keys.iter().step_by(2).copied().collect();
    probes.extend((0..n / 2).map(|_| rng.below(1 << 20) + 1)); // misses

    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(1), A as i64); // keys
    b.li(R(2), n as i64);
    b.li(R(3), B as i64); // table
    b.li(R(4), (table_size - 1) as i64); // mask
    b.li(R(5), 0); // i
                   // insert phase
    b.label("ins");
    b.branch(BranchCond::Geu, R(5), R(2), "probe_phase");
    b.add(R(6), R(1), R(5));
    b.load(R(7), R(6), 0); // key
    b.bini(BinOp::Mul, R(8), R(7), 0x9E3779B1);
    b.bini(BinOp::Shr, R(8), R(8), 16);
    b.bin(BinOp::And, R(8), R(8), R(4)); // slot
    b.label("ins_probe");
    b.add(R(9), R(3), R(8));
    b.load(R(10), R(9), 0);
    b.branch(BranchCond::Eq, R(10), R(0), "ins_store"); // empty
    b.branch(BranchCond::Eq, R(10), R(7), "ins_next"); // already present
    b.addi(R(8), R(8), 1);
    b.bin(BinOp::And, R(8), R(8), R(4));
    b.jump("ins_probe");
    b.label("ins_store");
    b.store(R(7), R(9), 0);
    b.label("ins_next");
    b.addi(R(5), R(5), 1);
    b.jump("ins");
    // lookup phase
    b.label("probe_phase");
    b.li(R(11), (A + n) as i64); // probes array
    b.li(R(12), probes.len() as i64);
    b.li(R(13), 0); // i
    b.li(R(14), 0); // hits
    b.label("lk");
    b.branch(BranchCond::Geu, R(13), R(12), "out");
    b.add(R(6), R(11), R(13));
    b.load(R(7), R(6), 0);
    b.bini(BinOp::Mul, R(8), R(7), 0x9E3779B1);
    b.bini(BinOp::Shr, R(8), R(8), 16);
    b.bin(BinOp::And, R(8), R(8), R(4));
    b.label("lk_probe");
    b.add(R(9), R(3), R(8));
    b.load(R(10), R(9), 0);
    b.branch(BranchCond::Eq, R(10), R(0), "lk_next"); // miss
    b.branch(BranchCond::Ne, R(10), R(7), "lk_adv");
    b.addi(R(14), R(14), 1); // hit
    b.jump("lk_next");
    b.label("lk_adv");
    b.addi(R(8), R(8), 1);
    b.bin(BinOp::And, R(8), R(8), R(4));
    b.jump("lk_probe");
    b.label("lk_next");
    b.addi(R(13), R(13), 1);
    b.jump("lk");
    b.label("out");
    b.output(R(14), 0);
    b.halt();
    b.data_block(A, &keys);
    b.data_block(A + n, &probes);
    Workload::new(format!("vortex.{size:?}"), Arc::new(b.build().unwrap()))
}

/// `gap`: permutation cycle chasing (gap-like: serial pointer chasing,
/// nearly pure load-to-load dependences).
pub fn gap_like(size: Size) -> Workload {
    let n = size.n();
    let mut rng = Lcg::new(21);
    // Random permutation via Fisher–Yates.
    let mut perm: Vec<u64> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let steps = n * 4;

    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(1), A as i64);
    b.li(R(2), steps as i64);
    b.li(R(3), 0); // x
    b.li(R(4), 0); // i
    b.li(R(5), 0); // checksum
    b.label("chase");
    b.branch(BranchCond::Geu, R(4), R(2), "out");
    b.add(R(6), R(1), R(3));
    b.load(R(3), R(6), 0); // x = P[x]
    b.add(R(5), R(5), R(3));
    b.addi(R(4), R(4), 1);
    b.jump("chase");
    b.label("out");
    b.output(R(5), 0);
    b.halt();
    b.data_block(A, &perm);
    Workload::new(format!("gap.{size:?}"), Arc::new(b.build().unwrap()))
}

/// `twolf`: annealing-style local improvement with an in-VM xorshift
/// PRNG (twolf-like: RNG arithmetic, conditional swaps, scattered
/// accesses).
pub fn twolf_like(size: Size) -> Workload {
    let n = size.n();
    let steps = n * 2;
    let mut rng = Lcg::new(3);
    let cells: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();

    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(R(1), A as i64);
    b.li(R(2), n as i64);
    b.li(R(3), steps as i64);
    b.li(R(4), 0x243F6A8885A308i64); // rng state
    b.label("step");
    b.branch(BranchCond::Eq, R(3), R(0), "cost");
    // xorshift64
    b.bini(BinOp::Shl, R(5), R(4), 13);
    b.bin(BinOp::Xor, R(4), R(4), R(5));
    b.bini(BinOp::Shr, R(5), R(4), 7);
    b.bin(BinOp::Xor, R(4), R(4), R(5));
    b.bini(BinOp::Shl, R(5), R(4), 17);
    b.bin(BinOp::Xor, R(4), R(4), R(5));
    // i = rng % (n-1)
    b.bini(BinOp::Sub, R(6), R(2), 1);
    b.bin(BinOp::Rem, R(7), R(4), R(6)); // i in [0, n-2]
                                         // neighbours A[i], A[i+1]: swap if A[i] > A[i+1] (local ordering)
    b.add(R(8), R(1), R(7));
    b.load(R(9), R(8), 0);
    b.load(R(10), R(8), 1);
    b.branch(BranchCond::Geu, R(10), R(9), "no_swap");
    b.store(R(10), R(8), 0);
    b.store(R(9), R(8), 1);
    b.label("no_swap");
    b.bini(BinOp::Sub, R(3), R(3), 1);
    b.jump("step");
    // final cost = sum |A[i+1]-A[i]| approximated by max-min fold
    b.label("cost");
    b.li(R(11), 0);
    b.li(R(12), 0);
    b.bini(BinOp::Sub, R(13), R(2), 1);
    b.label("fold");
    b.branch(BranchCond::Geu, R(12), R(13), "out");
    b.add(R(8), R(1), R(12));
    b.load(R(9), R(8), 0);
    b.load(R(10), R(8), 1);
    b.bin(BinOp::Max, R(14), R(9), R(10));
    b.bin(BinOp::Min, R(15), R(9), R(10));
    b.bin(BinOp::Sub, R(14), R(14), R(15));
    b.add(R(11), R(11), R(14));
    b.addi(R(12), R(12), 1);
    b.jump("fold");
    b.label("out");
    b.output(R(11), 0);
    b.halt();
    b.data_block(A, &cells);
    Workload::new(format!("twolf.{size:?}"), Arc::new(b.build().unwrap()))
}

/// The full SPEC-like suite at a size class.
pub fn all_spec(size: Size) -> Vec<Workload> {
    vec![
        compress_like(size),
        parser_like(size),
        mcf_like(size),
        bzip_like(size),
        vortex_like(size),
        gap_like(size),
        twolf_like(size),
    ]
}

/// `modular`: a three-function pipeline (`parse` → `compute` → `emit`)
/// used by the selective-tracing experiments: a user who suspects the bug
/// in `compute` traces only that function, and sound summarization must
/// preserve the dependence chains flowing through `parse`.
pub fn modular_like(size: Size) -> Workload {
    let n = size.n();
    let mut b = ProgramBuilder::new();
    // main: for each record, call the three stages.
    b.func("main");
    b.li(R(20), n as i64);
    b.li(R(21), 0); // i
    b.li(R(26), 0); // checksum
    b.label("rec");
    b.branch(BranchCond::Geu, R(21), R(20), "done");
    b.mov(R(4), R(21));
    b.call("parse");
    b.mov(R(4), R(2)); // parsed value
    b.call("compute");
    b.mov(R(4), R(2)); // computed value
    b.call("emit");
    b.add(R(26), R(26), R(2));
    b.addi(R(21), R(21), 1);
    b.jump("rec");
    b.label("done");
    b.output(R(26), 0);
    b.halt();
    // parse(i) -> r2 = A[i] normalized
    b.func("parse");
    b.li(R(5), A as i64);
    b.add(R(5), R(5), R(4));
    b.load(R(2), R(5), 0);
    b.bini(BinOp::And, R(2), R(2), 0xFFF);
    b.ret();
    // compute(v) -> r2 = v*3 + v>>2 folded through memory
    b.func("compute");
    b.bini(BinOp::Mul, R(6), R(4), 3);
    b.bini(BinOp::Shr, R(7), R(4), 2);
    b.add(R(2), R(6), R(7));
    b.li(R(8), (S + 64) as i64);
    b.store(R(2), R(8), 0);
    b.load(R(2), R(8), 0);
    b.ret();
    // emit(v) -> r2 = v mod prime
    b.func("emit");
    b.bini(BinOp::Rem, R(2), R(4), 8191);
    b.ret();

    let mut rng = Lcg::new(77);
    let data: Vec<u64> = (0..n).map(|_| rng.next()).collect();
    b.data_block(A, &data);
    Workload::new(format!("modular.{size:?}"), Arc::new(b.build().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_kernels() {
        assert_eq!(all_spec(Size::Tiny).len(), 7);
    }

    #[test]
    fn compress_rle_checksum_is_stable() {
        let w = compress_like(Size::Tiny);
        let mut m = w.machine();
        let r = m.run();
        assert!(r.status.is_clean());
        assert_eq!(m.output(0).len(), 1);
    }

    #[test]
    fn parser_evaluates_rpn() {
        let w = parser_like(Size::Tiny);
        let mut m = w.machine();
        assert!(m.run().status.is_clean());
    }

    #[test]
    fn mcf_distances_decrease_monotonically() {
        // Backbone guarantees reachability: checksum must be far below
        // nodes * BIG.
        let w = mcf_like(Size::Tiny);
        let mut m = w.machine();
        assert!(m.run().status.is_clean());
        let sum = m.output(0)[0];
        assert!(sum < Size::Tiny.n() * 1_000_000, "relaxation must improve: {sum}");
    }

    #[test]
    fn vortex_hits_at_least_inserted_probes() {
        let w = vortex_like(Size::Tiny);
        let mut m = w.machine();
        assert!(m.run().status.is_clean());
        let hits = m.output(0)[0];
        // Half the probes are inserted keys: all of those must hit.
        assert!(hits >= Size::Tiny.n() / 2, "{hits}");
    }

    #[test]
    fn twolf_improvement_reduces_roughness() {
        let w = twolf_like(Size::Tiny);
        let mut m = w.machine();
        assert!(m.run().status.is_clean());
    }

    #[test]
    fn modular_pipeline_runs_and_uses_all_stages() {
        let w = modular_like(Size::Tiny);
        let p = w.program.clone();
        assert!(p.func_by_name("parse").is_some());
        assert!(p.func_by_name("compute").is_some());
        assert!(p.func_by_name("emit").is_some());
        let mut m = w.machine();
        let r = m.run();
        assert!(r.status.is_clean(), "{:?}", r.status);
        assert_eq!(m.output(0).len(), 1);
    }

    #[test]
    fn sizes_scale_instruction_counts() {
        let tiny = {
            let mut m = gap_like(Size::Tiny).machine();
            m.run().steps
        };
        let small = {
            let mut m = gap_like(Size::Small).machine();
            m.run().steps
        };
        assert!(small > tiny * 4, "{small} vs {tiny}");
    }
}
