//! # dift-robdd — reduced ordered binary decision diagrams
//!
//! The representation behind the paper's lineage tracing (§3.4, VLDB'07):
//! lineage sets — sets of input identifiers — are stored as roBDDs over
//! the binary encoding of the identifiers. Two properties of real lineage
//! data make this efficient, and the encoding is chosen to exploit both:
//!
//! * **Overlap** — lineage sets of neighbouring values share most
//!   elements; hash-consing makes shared subsets shared subgraphs.
//! * **Clustering** — if an input is in a set, its neighbours in the
//!   input stream usually are too; with the most-significant bit as the
//!   top variable, contiguous identifier ranges collapse into tiny
//!   subgraphs.
//!
//! The manager ([`BddManager`]) owns the node store, the unique
//! (hash-cons) table and the apply cache; set handles are plain
//! [`NodeId`]s. Canonicity: equal sets have equal node ids, so set
//! equality is pointer equality — tested by the property suite.

use std::collections::HashMap;

/// Node handle. `FALSE` (empty set) and `TRUE` (all-accepting) are the
/// terminal nodes.
pub type NodeId = u32;

/// The empty set / false terminal.
pub const FALSE: NodeId = 0;
/// The universal acceptor / true terminal.
pub const TRUE: NodeId = 1;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: NodeId,
    hi: NodeId,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Op {
    Union,
    Intersect,
    Diff,
}

/// Manager for one family of BDD sets over `nvars`-bit identifiers.
pub struct BddManager {
    nvars: u32,
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    cache: HashMap<(Op, NodeId, NodeId), NodeId>,
}

impl BddManager {
    /// A manager for sets of identifiers in `[0, 2^nvars)`. `nvars ≤ 64`.
    pub fn new(nvars: u32) -> BddManager {
        assert!(nvars <= 64, "at most 64-bit identifiers");
        BddManager {
            nvars,
            // Slots 0/1 are terminals; var = nvars is the terminal level.
            nodes: vec![
                Node { var: nvars, lo: FALSE, hi: FALSE },
                Node { var: nvars, lo: TRUE, hi: TRUE },
            ],
            unique: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    #[inline]
    fn var(&self, n: NodeId) -> u32 {
        self.nodes[n as usize].var
    }

    fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// The empty set.
    pub fn empty(&self) -> NodeId {
        FALSE
    }

    /// Bit of `value` at BDD level `var` (var 0 = most significant bit).
    #[inline]
    fn bit(&self, value: u64, var: u32) -> bool {
        (value >> (self.nvars - 1 - var)) & 1 == 1
    }

    /// The singleton set `{value}`.
    pub fn singleton(&mut self, value: u64) -> NodeId {
        debug_assert!(self.nvars == 64 || value < (1u64 << self.nvars));
        let mut node = TRUE;
        for var in (0..self.nvars).rev() {
            node = if self.bit(value, var) {
                self.mk(var, FALSE, node)
            } else {
                self.mk(var, node, FALSE)
            };
        }
        node
    }

    /// The set `{lo..=hi}` built directly (clustering fast path).
    pub fn range(&mut self, lo: u64, hi: u64) -> NodeId {
        if lo > hi {
            return FALSE;
        }
        self.range_rec(0, 0, lo, hi)
    }

    fn range_rec(&mut self, var: u32, prefix: u64, lo: u64, hi: u64) -> NodeId {
        let width = self.nvars - var; // bits remaining
        let span = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        let lo_node = prefix;
        let hi_node = prefix.saturating_add(span);
        if hi_node < lo || lo_node > hi {
            return FALSE;
        }
        if lo_node >= lo && hi_node <= hi {
            return TRUE; // fully inside: all remaining assignments accepted
        }
        // Single points (width 0) are fully decided by the checks above,
        // so reaching here implies at least one variable remains.
        debug_assert!(width >= 1);
        let half = 1u64 << (width - 1);
        let l = self.range_rec(var + 1, prefix, lo, hi);
        let h = self.range_rec(var + 1, prefix + half, lo, hi);
        self.mk(var, l, h)
    }

    fn apply(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        // Terminal rules.
        match op {
            Op::Union => {
                if a == TRUE || b == TRUE {
                    return TRUE;
                }
                if a == FALSE {
                    return b;
                }
                if b == FALSE || a == b {
                    return a;
                }
            }
            Op::Intersect => {
                if a == FALSE || b == FALSE {
                    return FALSE;
                }
                if a == TRUE {
                    return b;
                }
                if b == TRUE || a == b {
                    return a;
                }
            }
            Op::Diff => {
                if a == FALSE || b == TRUE || a == b {
                    return FALSE;
                }
                if b == FALSE {
                    return a;
                }
            }
        }
        let key = match op {
            Op::Union | Op::Intersect if a > b => (op, b, a), // commutative: canonical order
            _ => (op, a, b),
        };
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let (va, vb) = (self.var(a), self.var(b));
        let v = va.min(vb);
        let (alo, ahi) =
            if va == v { (self.nodes[a as usize].lo, self.nodes[a as usize].hi) } else { (a, a) };
        let (blo, bhi) =
            if vb == v { (self.nodes[b as usize].lo, self.nodes[b as usize].hi) } else { (b, b) };
        let lo = self.apply(op, alo, blo);
        let hi = self.apply(op, ahi, bhi);
        let r = self.mk(v, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Set union.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Union, a, b)
    }

    /// Set intersection.
    pub fn intersect(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Intersect, a, b)
    }

    /// Set difference `a \ b`.
    pub fn difference(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Diff, a, b)
    }

    /// Insert one element (union with a singleton).
    pub fn insert(&mut self, set: NodeId, value: u64) -> NodeId {
        let s = self.singleton(value);
        self.union(set, s)
    }

    /// Membership test.
    pub fn contains(&self, set: NodeId, value: u64) -> bool {
        let mut node = set;
        loop {
            if node == FALSE {
                return false;
            }
            if node == TRUE {
                return true;
            }
            let n = self.nodes[node as usize];
            node = if self.bit(value, n.var) { n.hi } else { n.lo };
        }
    }

    /// Number of elements in the set.
    ///
    /// Exact for every cardinality representable in a `u64`. The one
    /// unrepresentable cardinality — the universal set over `nvars =
    /// 64`, which has exactly 2^64 elements — **saturates to
    /// `u64::MAX`**. A returned `u64::MAX` is therefore ambiguous
    /// between "2^64 − 1" and "2^64"; callers that must distinguish
    /// can test `set == TRUE`. No other set is affected: at `nvars ≤
    /// 63` every count fits, and at `nvars = 64` every proper subset
    /// has at most 2^64 − 1 elements.
    pub fn count(&self, set: NodeId) -> u64 {
        let mut memo: HashMap<NodeId, u64> = HashMap::new();
        self.count_rec(set, 0, &mut memo)
    }

    /// `x << shift`, saturating to `u64::MAX` when the true value
    /// overflows (shift past the leading zeros of a nonzero `x`).
    #[inline]
    fn shl_saturating(x: u64, shift: u32) -> u64 {
        if x == 0 {
            0
        } else if shift > x.leading_zeros() {
            u64::MAX
        } else {
            x << shift
        }
    }

    fn count_rec(&self, node: NodeId, level: u32, memo: &mut HashMap<NodeId, u64>) -> u64 {
        // Count assignments of variables level.. that reach TRUE.
        let var = self.var(node);
        debug_assert!(var >= level);
        let below = if node == FALSE {
            0
        } else if node == TRUE {
            // The terminal sits at the level past the last variable:
            // exactly one (empty) assignment; the skip factor below
            // accounts for every variable between `level` and it.
            1
        } else if let Some(&c) = memo.get(&node) {
            c
        } else {
            let n = self.nodes[node as usize];
            let lo = self.count_rec(n.lo, n.var + 1, memo);
            let hi = self.count_rec(n.hi, n.var + 1, memo);
            // Only the whole-universe count can exceed u64::MAX, and it
            // does so by exactly one — saturation is the documented
            // policy (see `count`).
            let c = lo.saturating_add(hi);
            memo.insert(node, c);
            c
        };
        // Skipped variables between `level` and `var` double the count;
        // the 2^64-element universal set saturates here.
        Self::shl_saturating(below, var - level)
    }

    /// Enumerate the set's elements (ascending). **Test/validation
    /// only**: cost is proportional to the output size, which for
    /// near-universal sets at wide `nvars` is astronomical — reporting
    /// paths must use [`elements_up_to`](Self::elements_up_to).
    pub fn elements(&self, set: NodeId) -> Vec<u64> {
        self.elements_up_to(set, usize::MAX)
    }

    /// The set's `limit` smallest elements, ascending. Cost is
    /// proportional to the *output* (O(limit · nvars)): the bounded
    /// walk takes the 0-branch of every variable — explicit or skipped
    /// — before the 1-branch and stops the moment `limit` elements are
    /// emitted, so even `TRUE` over 64 variables returns in O(limit)
    /// instead of recursing 2^64 times. This is the reporting-safe
    /// enumeration; [`elements`](Self::elements) is the unbounded
    /// test-only variant.
    pub fn elements_up_to(&self, set: NodeId, limit: usize) -> Vec<u64> {
        let mut out = Vec::new();
        if limit > 0 {
            self.enumerate_bounded(set, 0, 0, limit, &mut out);
        }
        out
    }

    /// Ascending bounded enumeration; returns true when `limit` was
    /// reached (callers short-circuit). Every non-`FALSE` node has at
    /// least one path to `TRUE` (hash-consing collapses dead
    /// branches), so each visit is charged to an emitted element and
    /// total work stays O(output · nvars).
    fn enumerate_bounded(
        &self,
        node: NodeId,
        level: u32,
        prefix: u64,
        limit: usize,
        out: &mut Vec<u64>,
    ) -> bool {
        if node == FALSE {
            return false;
        }
        if level == self.nvars {
            debug_assert_eq!(node, TRUE);
            out.push(prefix);
            return out.len() >= limit;
        }
        let var = self.var(node);
        if var > level {
            // Skipped variable: both assignments reach `node`; 0 first
            // keeps the output ascending.
            return self.enumerate_bounded(node, level + 1, prefix << 1, limit, out)
                || self.enumerate_bounded(node, level + 1, (prefix << 1) | 1, limit, out);
        }
        let n = self.nodes[node as usize];
        self.enumerate_bounded(n.lo, level + 1, prefix << 1, limit, out)
            || self.enumerate_bounded(n.hi, level + 1, (prefix << 1) | 1, limit, out)
    }

    /// Rewrite sets owned by another manager (over the same variable
    /// universe) into this one, returning the translated `roots` in
    /// order. This is the shard-merge primitive: each helper shard
    /// builds lineage in a private arena, and composition absorbs the
    /// arena's live roots into the primary manager.
    ///
    /// The walk visits `other`'s reachable nodes in ascending id order
    /// — which is bottom-up, because `mk` only ever references
    /// already-built children — and rebuilds each through this
    /// manager's own [hash-consing]. Canonicity is therefore
    /// preserved: an absorbed set gets **the same node id** a serial
    /// build of the same set in this manager would produce, so merged
    /// sets stay pointer-comparable against serially-built ones. Cost
    /// is O(nodes reachable from `roots`) in `other`, independent of
    /// set cardinality.
    ///
    /// [hash-consing]: #method.node_count
    pub fn absorb(&mut self, other: &BddManager, roots: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(self.nvars, other.nvars, "managers must share the variable universe");
        let mut reach = vec![false; other.nodes.len()];
        let mut stack: Vec<NodeId> = roots.iter().copied().filter(|&r| r > TRUE).collect();
        while let Some(n) = stack.pop() {
            if reach[n as usize] {
                continue;
            }
            reach[n as usize] = true;
            let node = other.nodes[n as usize];
            if node.lo > TRUE {
                stack.push(node.lo);
            }
            if node.hi > TRUE {
                stack.push(node.hi);
            }
        }
        // Identity start covers the terminals (0 → 0, 1 → 1).
        let mut map: Vec<NodeId> = (0..other.nodes.len() as NodeId).collect();
        for id in 2..other.nodes.len() {
            if !reach[id] {
                continue;
            }
            let n = other.nodes[id];
            map[id] = self.mk(n.var, map[n.lo as usize], map[n.hi as usize]);
        }
        roots.iter().map(|&r| map[r as usize]).collect()
    }

    /// Total nodes allocated by the manager (shared across all sets).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes reachable from `set` (its private size if nothing were
    /// shared).
    pub fn set_nodes(&self, set: NodeId) -> usize {
        self.reachable(&[set])
    }

    /// Nodes reachable from any of `roots` — the store a garbage-collected
    /// manager would retain for these live sets (shared nodes counted
    /// once).
    pub fn reachable(&self, roots: &[NodeId]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if n == FALSE || n == TRUE || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        seen.len()
    }

    /// Bytes used by the node store (16 B per node: packed var/lo/hi plus
    /// the unique-table slot).
    pub fn bytes(&self) -> usize {
        self.nodes.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_contains_only_its_element() {
        let mut m = BddManager::new(8);
        let s = m.singleton(42);
        assert!(m.contains(s, 42));
        for v in [0u64, 1, 41, 43, 255] {
            assert!(!m.contains(s, v), "{v}");
        }
        assert_eq!(m.count(s), 1);
        assert_eq!(m.elements(s), vec![42]);
    }

    #[test]
    fn union_and_intersection() {
        let mut m = BddManager::new(8);
        let a = m.singleton(1);
        let b = m.singleton(2);
        let ab = m.union(a, b);
        assert_eq!(m.count(ab), 2);
        assert_eq!(m.elements(ab), vec![1, 2]);
        let i = m.intersect(ab, a);
        assert_eq!(i, a, "canonicity: equal sets are identical nodes");
        let empty = m.intersect(a, b);
        assert_eq!(empty, FALSE);
    }

    #[test]
    fn difference_removes_elements() {
        let mut m = BddManager::new(8);
        let mut s = m.empty();
        for v in [3u64, 4, 5] {
            s = m.insert(s, v);
        }
        let b = m.singleton(4);
        let d = m.difference(s, b);
        assert_eq!(m.elements(d), vec![3, 5]);
    }

    #[test]
    fn range_equals_repeated_insertion() {
        let mut m = BddManager::new(10);
        let r = m.range(100, 131);
        let mut s = m.empty();
        for v in 100..=131 {
            s = m.insert(s, v);
        }
        assert_eq!(r, s, "canonical representation must coincide");
        assert_eq!(m.count(r), 32);
    }

    #[test]
    fn clustered_range_is_tiny() {
        let mut m = BddManager::new(20);
        // An aligned contiguous range of 2^12 elements...
        let r = m.range(1 << 12, (1 << 13) - 1);
        assert_eq!(m.count(r), 1 << 12);
        // ...costs only ~nvars nodes, not 4096.
        assert!(m.set_nodes(r) <= 20, "got {}", m.set_nodes(r));
    }

    #[test]
    fn overlapping_sets_share_structure() {
        let mut m = BddManager::new(16);
        let base = m.range(0, 1023);
        let before = m.node_count();
        // Ten sets overlapping in the shared 1024-element base.
        let mut handles = Vec::new();
        for k in 0..10u64 {
            let extra = m.singleton(2000 + k);
            handles.push(m.union(base, extra));
        }
        let grown = m.node_count() - before;
        // Each overlapping set costs O(nvars) fresh nodes (the singleton
        // chain plus the union spine), NOT O(|set|): 10 sets of 1025
        // elements grow the store by well under 10 × 2 × nvars nodes.
        assert!(grown < 10 * 2 * 16, "sharing failed: grew {grown}");
        for (k, &h) in handles.iter().enumerate() {
            assert!(m.contains(h, 2000 + k as u64));
            assert!(m.contains(h, 512));
            assert_eq!(m.count(h), 1025);
        }
    }

    #[test]
    fn empty_set_properties() {
        let mut m = BddManager::new(8);
        let e = m.empty();
        assert_eq!(m.count(e), 0);
        assert!(m.elements(e).is_empty());
        let s = m.singleton(5);
        assert_eq!(m.union(e, s), s);
        assert_eq!(m.intersect(e, s), FALSE);
    }

    #[test]
    fn range_inverted_bounds_is_empty() {
        let mut m = BddManager::new(8);
        assert_eq!(m.range(10, 5), FALSE);
    }

    #[test]
    fn full_width_64bit_ids() {
        let mut m = BddManager::new(64);
        let s = m.singleton(u64::MAX - 1);
        assert!(m.contains(s, u64::MAX - 1));
        assert!(!m.contains(s, u64::MAX));
    }

    #[test]
    fn idempotent_and_commutative_union() {
        let mut m = BddManager::new(8);
        let a = m.range(0, 7);
        let b = m.range(4, 12);
        let ab = m.union(a, b);
        let ba = m.union(b, a);
        assert_eq!(ab, ba);
        assert_eq!(m.union(ab, ab), ab);
        assert_eq!(m.count(ab), 13);
    }

    #[test]
    fn count_universal_set_at_64_vars_saturates() {
        // Regression: the 2^64-element universal set used to miscount
        // (placeholder expression + `.min(63)` shift clamps). Policy:
        // it saturates to u64::MAX; everything smaller is exact.
        let mut m = BddManager::new(64);
        let all = m.range(0, u64::MAX);
        assert_eq!(all, TRUE);
        assert_eq!(m.count(all), u64::MAX);
    }

    #[test]
    fn count_near_universal_sets_at_64_vars_exact() {
        let mut m = BddManager::new(64);
        let all = m.range(0, u64::MAX);
        // 2^64 − 1 elements: exactly representable, must be exact.
        for victim in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            let v = m.singleton(victim);
            let d = m.difference(all, v);
            assert_eq!(m.count(d), u64::MAX, "universe minus {victim}");
            assert!(!m.contains(d, victim));
        }
        // 2^64 − 2 elements.
        let a = m.singleton(0);
        let b = m.singleton(u64::MAX);
        let two = m.union(a, b);
        let d = m.difference(all, two);
        assert_eq!(m.count(d), u64::MAX - 1);
        // Exactly half the universe (top bit set): 2^63 fits exactly.
        let top = m.range(1 << 63, u64::MAX);
        assert_eq!(m.count(top), 1 << 63);
    }

    #[test]
    fn count_wide_ranges_exact() {
        let mut m = BddManager::new(64);
        for (lo, hi) in
            [(0u64, 0u64), (0, 1 << 40), (u64::MAX - 5, u64::MAX), (1 << 20, (1 << 52) + 17)]
        {
            let r = m.range(lo, hi);
            assert_eq!(m.count(r), hi - lo + 1, "range {lo}..={hi}");
        }
    }

    #[test]
    fn elements_up_to_is_bounded_on_huge_sets() {
        // Regression: `elements`/`enumerate_skip` recursed 2^(gap) times
        // across skipped-variable gaps, so TRUE at 64 vars hung. The
        // bounded walk's cost is proportional to the output.
        let mut m = BddManager::new(64);
        let all = m.range(0, u64::MAX);
        assert_eq!(m.elements_up_to(all, 5), vec![0, 1, 2, 3, 4]);
        let v = m.singleton(2);
        let holey = m.difference(all, v);
        assert_eq!(m.elements_up_to(holey, 4), vec![0, 1, 3, 4]);
        assert!(m.elements_up_to(all, 0).is_empty());
        // High elements force long skipped prefixes on the way down.
        let hi = m.range(u64::MAX - 2, u64::MAX);
        let s = m.union(v, hi);
        assert_eq!(m.elements_up_to(s, 8), vec![2, u64::MAX - 2, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn elements_up_to_matches_elements_prefix() {
        let mut m = BddManager::new(16);
        let mut s = m.empty();
        for v in [9u64, 4, 1000, 77, 3, 500] {
            s = m.insert(s, v);
        }
        let full = m.elements(s);
        for k in 0..=full.len() + 1 {
            assert_eq!(m.elements_up_to(s, k), full[..k.min(full.len())].to_vec());
        }
    }

    #[test]
    fn absorb_preserves_canonicity() {
        // Build the same sets in a private arena and serially in the
        // primary; absorbing the arena must land on identical node ids.
        let mut primary = BddManager::new(16);
        let pre = primary.range(100, 131); // shared structure pre-exists
        let mut arena = BddManager::new(16);
        let a = arena.range(100, 131);
        let s = arena.singleton(7);
        let u = arena.union(a, s);
        let moved = primary.absorb(&arena, &[a, s, u, FALSE, TRUE]);
        assert_eq!(moved[0], pre, "equal sets are pointer-equal after absorb");
        let serial_s = primary.singleton(7);
        let serial_u = primary.union(pre, serial_s);
        assert_eq!(moved[1], serial_s);
        assert_eq!(moved[2], serial_u);
        assert_eq!(moved[3], FALSE);
        assert_eq!(moved[4], TRUE);
        assert_eq!(primary.elements(moved[2]), arena.elements(u));
    }

    #[test]
    fn absorb_only_copies_reachable_nodes() {
        let mut arena = BddManager::new(16);
        let _garbage = arena.range(0, 4095); // dead in the arena
        let live = arena.singleton(9);
        let mut primary = BddManager::new(16);
        let before = primary.node_count();
        let moved = primary.absorb(&arena, &[live]);
        // Only the singleton chain (≤ nvars nodes) crossed over.
        assert!(primary.node_count() - before <= 16);
        assert_eq!(primary.elements(moved[0]), vec![9]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn naive(vals: &[u64]) -> BTreeSet<u64> {
        vals.iter().copied().collect()
    }

    proptest! {
        #[test]
        fn union_matches_naive(a in proptest::collection::vec(0u64..4096, 0..60),
                               b in proptest::collection::vec(0u64..4096, 0..60)) {
            let mut m = BddManager::new(12);
            let mut sa = m.empty();
            for &v in &a { sa = m.insert(sa, v); }
            let mut sb = m.empty();
            for &v in &b { sb = m.insert(sb, v); }
            let su = m.union(sa, sb);
            let want: Vec<u64> = naive(&a).union(&naive(&b)).copied().collect();
            prop_assert_eq!(m.elements(su), want);
            prop_assert_eq!(m.count(su) as usize, naive(&a).union(&naive(&b)).count());
        }

        #[test]
        fn intersect_matches_naive(a in proptest::collection::vec(0u64..256, 0..40),
                                   b in proptest::collection::vec(0u64..256, 0..40)) {
            let mut m = BddManager::new(8);
            let mut sa = m.empty();
            for &v in &a { sa = m.insert(sa, v); }
            let mut sb = m.empty();
            for &v in &b { sb = m.insert(sb, v); }
            let si = m.intersect(sa, sb);
            let want: Vec<u64> = naive(&a).intersection(&naive(&b)).copied().collect();
            prop_assert_eq!(m.elements(si), want);
        }

        #[test]
        fn difference_matches_naive(a in proptest::collection::vec(0u64..256, 0..40),
                                    b in proptest::collection::vec(0u64..256, 0..40)) {
            let mut m = BddManager::new(8);
            let mut sa = m.empty();
            for &v in &a { sa = m.insert(sa, v); }
            let mut sb = m.empty();
            for &v in &b { sb = m.insert(sb, v); }
            let sd = m.difference(sa, sb);
            let want: Vec<u64> = naive(&a).difference(&naive(&b)).copied().collect();
            prop_assert_eq!(m.elements(sd), want);
        }

        #[test]
        fn canonicity_same_set_same_node(mut vals in proptest::collection::vec(0u64..512, 1..30)) {
            let mut m = BddManager::new(9);
            let mut s1 = m.empty();
            for &v in &vals { s1 = m.insert(s1, v); }
            // Insert in a different order — the node id must be identical.
            vals.reverse();
            let mut s2 = m.empty();
            for &v in &vals { s2 = m.insert(s2, v); }
            prop_assert_eq!(s1, s2);
        }

        #[test]
        fn contains_matches_membership(vals in proptest::collection::vec(0u64..1024, 0..50),
                                       probe in 0u64..1024) {
            let mut m = BddManager::new(10);
            let mut s = m.empty();
            for &v in &vals { s = m.insert(s, v); }
            prop_assert_eq!(m.contains(s, probe), naive(&vals).contains(&probe));
        }

        #[test]
        fn range_matches_naive(lo in 0u64..500, len in 0u64..100) {
            let mut m = BddManager::new(10);
            let hi = (lo + len).min(1023);
            let r = m.range(lo, hi);
            let want: Vec<u64> = (lo..=hi).collect();
            prop_assert_eq!(m.elements(r), want);
        }

        #[test]
        fn count_matches_elements_at_wide_widths(nvars in 32u32..65,
                                                 vals in proptest::collection::vec(0u64..u64::MAX, 0..40)) {
            // Regression for the count_rec shift clamps: at widths past
            // 32 the old `.min(63)` arithmetic could misweigh skipped
            // variables. Count must agree with exact enumeration.
            let mut m = BddManager::new(nvars);
            let mask = if nvars == 64 { u64::MAX } else { (1u64 << nvars) - 1 };
            let vals: Vec<u64> = vals.iter().map(|v| v & mask).collect();
            let mut s = m.empty();
            for &v in &vals { s = m.insert(s, v); }
            let want = naive(&vals);
            prop_assert_eq!(m.count(s) as usize, want.len());
            let want: Vec<u64> = want.into_iter().collect();
            prop_assert_eq!(m.elements(s), want.clone());
            prop_assert_eq!(m.elements_up_to(s, want.len() + 3), want);
        }

        #[test]
        fn absorb_matches_serial_build(nvars in 8u32..65,
                                       pre in proptest::collection::vec(0u64..u64::MAX, 0..25),
                                       vals in proptest::collection::vec(0u64..u64::MAX, 0..25)) {
            let mask = if nvars == 64 { u64::MAX } else { (1u64 << nvars) - 1 };
            let mut primary = BddManager::new(nvars);
            let mut spre = primary.empty();
            for &v in &pre { spre = primary.insert(spre, v & mask); }
            let mut arena = BddManager::new(nvars);
            let mut sa = arena.empty();
            for &v in &vals { sa = arena.insert(sa, v & mask); }
            let moved = primary.absorb(&arena, &[sa])[0];
            // Identical to the set built serially in the primary.
            let mut serial = primary.empty();
            for &v in &vals { serial = primary.insert(serial, v & mask); }
            prop_assert_eq!(moved, serial);
        }
    }
}
