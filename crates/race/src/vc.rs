//! Vector clocks.

use dift_vm::ThreadId;

/// A grow-on-demand vector clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u64>,
}

impl VectorClock {
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    #[inline]
    pub fn get(&self, tid: ThreadId) -> u64 {
        self.clocks.get(tid as usize).copied().unwrap_or(0)
    }

    #[inline]
    pub fn set(&mut self, tid: ThreadId, v: u64) {
        let i = tid as usize;
        if self.clocks.len() <= i {
            self.clocks.resize(i + 1, 0);
        }
        self.clocks[i] = v;
    }

    /// Advance this thread's component.
    #[inline]
    pub fn tick(&mut self, tid: ThreadId) -> u64 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Pointwise maximum (join) with another clock.
    pub fn join(&mut self, other: &VectorClock) {
        if self.clocks.len() < other.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (i, &c) in other.clocks.iter().enumerate() {
            if self.clocks[i] < c {
                self.clocks[i] = c;
            }
        }
    }

    /// Does the epoch `(tid, clock)` happen before (or equal) this clock?
    #[inline]
    pub fn covers(&self, tid: ThreadId, clock: u64) -> bool {
        self.get(tid) >= clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.get(3), 0);
        assert_eq!(vc.tick(3), 1);
        assert_eq!(vc.tick(3), 2);
        assert_eq!(vc.get(3), 2);
        assert_eq!(vc.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 5);
        a.set(1, 1);
        let mut b = VectorClock::new();
        b.set(1, 7);
        b.set(2, 2);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 7);
        assert_eq!(a.get(2), 2);
    }

    #[test]
    fn covers_is_happens_before() {
        let mut vc = VectorClock::new();
        vc.set(1, 4);
        assert!(vc.covers(1, 3));
        assert!(vc.covers(1, 4));
        assert!(!vc.covers(1, 5));
        assert!(!vc.covers(2, 1));
        assert!(vc.covers(2, 0), "zero epoch is always covered");
    }
}
