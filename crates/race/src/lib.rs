//! # dift-race — data race detection with synchronization awareness
//!
//! Reproduces the race-detection thread of §3.1: dynamic slicing extended
//! with WAR/WAW dependences surfaces races in slices (`dift-ddg` +
//! `dift-slicing` provide that), and a **dynamic synchronization-aware
//! race detector** "greatly reduces the number of data races reported to
//! the user as many benign synchronization races and infeasible races
//! reported by other tools are filtered out".
//!
//! * [`vc`] — vector clocks.
//! * [`detect`] — the happens-before detector (FastTrack-style epochs for
//!   reads/writes per word) as a DBI tool. In [`Mode::Naive`] only
//!   spawn/join edges order threads: accesses to flag/lock words
//!   themselves are reported (benign *synchronization races*) and
//!   flag-protected data is reported too (*infeasible races*, since the
//!   sync ordering actually prevents them). In [`Mode::SyncAware`] the
//!   dynamic sync detector (`dift-tm`) classifies sync variables on the
//!   fly; their release→acquire edges enter the happens-before relation
//!   and races on the sync words themselves are suppressed.

pub mod detect;
pub mod vc;

pub use detect::{Mode, Race, RaceDetector, RaceStats};
pub use vc::VectorClock;
