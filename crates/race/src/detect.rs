//! The happens-before race detector.

use crate::vc::VectorClock;
use dift_dbi::Tool;
use dift_isa::{MemAddr, Opcode, StmtId};
use dift_tm::SyncDetector;
use dift_vm::{Machine, RunResult, StepEffects, ThreadId};
use std::collections::{HashMap, HashSet};

/// Detector mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Happens-before from spawn/join only (what a sync-oblivious tool
    /// sees): reports benign sync races and infeasible races.
    Naive,
    /// Dynamic synchronization recognition feeds release→acquire edges
    /// into happens-before and suppresses races on sync words.
    SyncAware,
}

/// One access in a reported race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    pub tid: ThreadId,
    pub step: u64,
    pub stmt: StmtId,
    pub is_write: bool,
}

/// A reported data race: two unordered conflicting accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Race {
    pub addr: MemAddr,
    pub prior: Access,
    pub current: Access,
}

/// Detector statistics (the E10 row).
#[derive(Clone, Debug, Default)]
pub struct RaceStats {
    pub reported: usize,
    /// Races suppressed because they were on recognized sync variables.
    pub sync_word_filtered: usize,
    pub sync_vars: usize,
}

#[derive(Default)]
struct WordState {
    last_write: Option<(ThreadId, u64, u64, StmtId)>, // tid, clock, step, stmt
    /// Reads since the last write: (tid, clock, step, stmt).
    reads: Vec<(ThreadId, u64, u64, StmtId)>,
}

/// The detector tool.
pub struct RaceDetector {
    mode: Mode,
    sync: SyncDetector,
    vcs: Vec<VectorClock>,
    /// Release clocks per sync word.
    released: HashMap<MemAddr, VectorClock>,
    /// Exit clocks of finished threads (for join edges).
    exit_vc: HashMap<ThreadId, VectorClock>,
    words: HashMap<MemAddr, WordState>,
    races: Vec<Race>,
    dedup: HashSet<(MemAddr, StmtId, StmtId)>,
}

impl RaceDetector {
    pub fn new(mode: Mode) -> RaceDetector {
        RaceDetector {
            mode,
            sync: SyncDetector::new(),
            vcs: Vec::new(),
            released: HashMap::new(),
            exit_vc: HashMap::new(),
            words: HashMap::new(),
            races: Vec::new(),
            dedup: HashSet::new(),
        }
    }

    fn vc(&mut self, tid: ThreadId) -> &mut VectorClock {
        while self.vcs.len() <= tid as usize {
            self.vcs.push(VectorClock::new());
        }
        &mut self.vcs[tid as usize]
    }

    fn report(&mut self, addr: MemAddr, prior: Access, current: Access) {
        let key = (addr, prior.stmt.min(current.stmt), prior.stmt.max(current.stmt));
        if self.dedup.insert(key) {
            self.races.push(Race { addr, prior, current });
        }
    }

    /// Final race list; in sync-aware mode, races on words recognized as
    /// sync variables (possibly classified *after* an early report) are
    /// dropped.
    pub fn races(&self) -> Vec<Race> {
        self.races
            .iter()
            .filter(|r| self.mode == Mode::Naive || !self.sync.is_sync(r.addr))
            .copied()
            .collect()
    }

    pub fn stats(&self) -> RaceStats {
        let kept = self.races().len();
        RaceStats {
            reported: kept,
            sync_word_filtered: self.races.len() - kept,
            sync_vars: self.sync.vars().count(),
        }
    }
}

impl Tool for RaceDetector {
    fn after(&mut self, m: &mut Machine, fx: &StepEffects) {
        let tid = fx.tid;

        // Thread lifecycle edges (both modes).
        if let Some(child) = fx.spawned {
            let parent_vc = self.vc(tid).clone();
            self.vc(child).join(&parent_vc);
            self.vc(child).tick(child);
            self.vc(tid).tick(tid);
        }
        match fx.insn.op {
            Opcode::Join { rs } => {
                let target = m.reg(tid, rs);
                if let Some(evc) = self.exit_vc.get(&target).cloned() {
                    self.vc(tid).join(&evc);
                }
            }
            Opcode::Halt | Opcode::Exit { .. } => {
                let vc = self.vc(tid).clone();
                self.exit_vc.insert(tid, vc);
            }
            _ => {}
        }

        let sync_aware = self.mode == Mode::SyncAware;
        if sync_aware {
            self.sync.observe(fx);
        }

        // Memory accesses.
        let read = fx.mem_read.map(|(a, _)| a);
        let write = fx.mem_write.map(|(a, _, _)| a);
        for (addr, is_write) in read.map(|a| (a, false)).into_iter().chain(write.map(|a| (a, true)))
        {
            let is_sync_word = sync_aware && self.sync.is_sync(addr);
            if is_sync_word {
                // Release→acquire edges instead of race checks.
                if !is_write {
                    if let Some(rel) = self.released.get(&addr).cloned() {
                        self.vc(tid).join(&rel);
                    }
                } else {
                    let vc = self.vc(tid).clone();
                    self.released.entry(addr).and_modify(|v| v.join(&vc)).or_insert(vc);
                    self.vc(tid).tick(tid);
                }
                continue;
            }

            let clock = self.vc(tid).tick(tid);
            let me = Access { tid, step: fx.step, stmt: fx.insn.stmt, is_write };
            let my_vc = self.vc(tid).clone();
            let state = self.words.entry(addr).or_default();

            let mut found: Vec<(Access, Access)> = Vec::new();
            if let Some((wt, wc, wstep, wstmt)) = state.last_write {
                if wt != tid && !my_vc.covers(wt, wc) {
                    found.push((Access { tid: wt, step: wstep, stmt: wstmt, is_write: true }, me));
                }
            }
            if is_write {
                for &(rt, rc, rstep, rstmt) in &state.reads {
                    if rt != tid && !my_vc.covers(rt, rc) {
                        found.push((
                            Access { tid: rt, step: rstep, stmt: rstmt, is_write: false },
                            me,
                        ));
                    }
                }
                state.last_write = Some((tid, clock, fx.step, fx.insn.stmt));
                state.reads.clear();
            } else {
                state.reads.push((tid, clock, fx.step, fx.insn.stmt));
            }
            for (prior, current) in found {
                self.report(addr, prior, current);
            }
        }
    }

    fn on_finish(&mut self, _m: &mut Machine, _r: &RunResult) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dift_dbi::Engine;
    use dift_isa::{BinOp, BranchCond, Program, ProgramBuilder, Reg};
    use dift_vm::MachineConfig;
    use std::sync::Arc;

    fn run(p: &Arc<Program>, mode: Mode, quantum: u32) -> RaceDetector {
        let m = Machine::new(p.clone(), MachineConfig::small().with_quantum(quantum));
        let mut det = RaceDetector::new(mode);
        let mut e = Engine::new(m);
        let r = e.run_tool(&mut det);
        assert!(r.status.is_clean(), "{:?}", r.status);
        det
    }

    /// A genuine race: two threads increment a shared counter unprotected.
    fn racy_program() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.li(Reg(1), 0);
        b.spawn(Reg(5), "w", Reg(1));
        b.spawn(Reg(6), "w", Reg(1));
        b.join(Reg(5));
        b.join(Reg(6));
        b.halt();
        b.func("w");
        b.li(Reg(1), 700);
        b.li(Reg(2), 20);
        b.label("loop");
        b.load(Reg(3), Reg(1), 0);
        b.addi(Reg(3), Reg(3), 1);
        b.store(Reg(3), Reg(1), 0);
        b.bini(BinOp::Sub, Reg(2), Reg(2), 1);
        b.branch(BranchCond::Ne, Reg(2), Reg(0), "loop");
        b.halt();
        Arc::new(b.build().unwrap())
    }

    /// Flag-synchronized producer/consumer: NO data race on the payload —
    /// but a naive tool reports both the flag word and the payload.
    fn flag_sync_program() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.li(Reg(1), 0);
        b.spawn(Reg(5), "producer", Reg(1));
        b.li(Reg(2), 900);
        b.label("spin");
        b.load(Reg(3), Reg(2), 0);
        b.branch(BranchCond::Ne, Reg(3), Reg(0), "go");
        b.jump("spin");
        b.label("go");
        b.li(Reg(6), 901);
        b.load(Reg(7), Reg(6), 0); // consume payload AFTER flag observed
        b.output(Reg(7), 0);
        b.join(Reg(5));
        b.halt();
        b.func("producer");
        // Realistic work before publication (gives the consumer time to
        // spin long enough for the sync detector to classify the flag).
        b.li(Reg(8), 8);
        b.label("work");
        b.bini(BinOp::Sub, Reg(8), Reg(8), 1);
        b.branch(BranchCond::Ne, Reg(8), Reg(0), "work");
        b.li(Reg(1), 901);
        b.li(Reg(2), 42);
        b.store(Reg(2), Reg(1), 0); // payload
        b.li(Reg(3), 900);
        b.li(Reg(4), 1);
        b.store(Reg(4), Reg(3), 0); // flag publication
        b.halt();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn genuine_race_is_reported_in_both_modes() {
        let p = racy_program();
        for mode in [Mode::Naive, Mode::SyncAware] {
            let det = run(&p, mode, 2);
            let races = det.races();
            assert!(
                races.iter().any(|r| r.addr == 700),
                "{mode:?} must report the counter race: {races:?}"
            );
        }
    }

    #[test]
    fn naive_reports_sync_and_infeasible_races_on_flag_program() {
        let p = flag_sync_program();
        let det = run(&p, Mode::Naive, 3);
        let races = det.races();
        let addrs: Vec<MemAddr> = races.iter().map(|r| r.addr).collect();
        assert!(addrs.contains(&900), "benign race on the flag word reported");
        assert!(addrs.contains(&901), "infeasible race on the payload reported");
    }

    #[test]
    fn sync_aware_filters_flag_program_races() {
        let p = flag_sync_program();
        let det = run(&p, Mode::SyncAware, 3);
        let races = det.races();
        assert!(
            races.is_empty(),
            "sync-aware must filter benign + infeasible races, got {races:?}"
        );
        assert!(det.stats().sync_vars >= 1);
    }

    #[test]
    fn spawn_join_edges_prevent_false_races() {
        // Parent writes before spawn; child reads; parent reads after
        // join: all ordered, no race in either mode.
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.li(Reg(1), 800);
        b.li(Reg(2), 7);
        b.store(Reg(2), Reg(1), 0);
        b.li(Reg(3), 0);
        b.spawn(Reg(5), "child", Reg(3));
        b.join(Reg(5));
        b.load(Reg(4), Reg(1), 0);
        b.halt();
        b.func("child");
        b.li(Reg(1), 800);
        b.load(Reg(2), Reg(1), 0);
        b.addi(Reg(2), Reg(2), 1);
        b.store(Reg(2), Reg(1), 0);
        b.halt();
        let p = Arc::new(b.build().unwrap());
        for mode in [Mode::Naive, Mode::SyncAware] {
            let det = run(&p, mode, 2);
            assert!(det.races().is_empty(), "{mode:?}: {:?}", det.races());
        }
    }

    #[test]
    fn sync_aware_reports_fewer_than_naive() {
        let p = flag_sync_program();
        let naive = run(&p, Mode::Naive, 3).races().len();
        let aware = run(&p, Mode::SyncAware, 3).races().len();
        assert!(aware < naive, "{aware} !< {naive}");
    }

    #[test]
    fn race_dedup_reports_each_stmt_pair_once() {
        let p = racy_program();
        let det = run(&p, Mode::Naive, 2);
        let races = det.races();
        let mut keys: Vec<_> = races
            .iter()
            .map(|r| (r.addr, r.prior.stmt.min(r.current.stmt), r.prior.stmt.max(r.current.stmt)))
            .collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len(), "duplicates must be deduped");
    }
}
