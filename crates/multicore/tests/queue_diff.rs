//! Differential property test: `QueueSim`'s incremental bounded-queue
//! simulation vs a brute-force discrete-event model.
//!
//! The brute force keeps every message's completion time explicitly. A
//! producer that absorbs its stalls (as the offloader's machine does by
//! charging them) sees, for message `i` into a depth-`d` queue:
//!
//! ```text
//! stall_i  = max(0, finish[i-d] - now_i)          (0 for i < d)
//! finish_i = max(finish[i-1], now_i + stall_i) + per_msg
//! ```
//!
//! because removals (retirement and full-queue waits) are strictly FIFO,
//! so the slot message `i` needs is the one message `i-d` frees. The
//! incremental simulation must agree on every stall, the helper clock,
//! total stall cycles, and busy time for any arrival pattern and model.

use dift_multicore::{ChannelModel, QueueSim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_sim_matches_brute_force_discrete_event_model(
        deltas in proptest::collection::vec(0u64..8, 1..200),
        per_msg in 1u64..12,
        enqueue_cycles in 1u64..4,
        depth in 1usize..12,
    ) {
        let model = ChannelModel { enqueue_cycles, helper_per_msg: per_msg, queue_depth: depth };
        let mut sim = QueueSim::new(model);

        let mut finish: Vec<u64> = Vec::with_capacity(deltas.len());
        let mut now = 0u64;
        let mut total_stall = 0u64;
        for (i, d) in deltas.iter().enumerate() {
            // The producer pays the enqueue cost and whatever work the
            // gap represents before the message arrives.
            now += d + enqueue_cycles;
            let want_stall =
                if i >= depth { finish[i - depth].saturating_sub(now) } else { 0 };
            let got_stall = sim.enqueue(now);
            prop_assert_eq!(
                got_stall, want_stall,
                "message {} at now={} (depth {}, per_msg {})", i, now, depth, per_msg
            );
            let arrival = now + want_stall;
            let start = finish.last().copied().unwrap_or(0).max(arrival);
            finish.push(start + per_msg);
            total_stall += want_stall;
            // The producer absorbs the stall: later arrivals shift.
            now += want_stall;
        }

        prop_assert_eq!(sim.helper_clock, *finish.last().unwrap(), "helper clock is the last completion");
        prop_assert_eq!(sim.stall_cycles, total_stall);
        prop_assert_eq!(sim.helper_busy, deltas.len() as u64 * per_msg);
        prop_assert_eq!(sim.messages, deltas.len() as u64);
    }
}
