//! Differential property test for the fault-tolerant epoch pipeline:
//! randomized programs under randomized fault plans must stay
//! bit-identical to the retained `ReferenceTaintEngine` oracle.
//!
//! Randomized programs (ALU mixes, direct and indirect memory traffic
//! through possibly-tainted addresses) run once; the recorded effects
//! stream drives the serial oracle, while the same machine runs through
//! [`run_epoch_dift_tolerant`] with a seeded [`ScriptedFaults`] plan
//! injecting shard panics, message drops, queue stalls, and summary
//! corruption at random (shard, epoch) coordinates. Whatever fires, the
//! tolerant run must complete and agree on every observable — output
//! lineage, alerts with origins, live shadow cells, exact peak stats —
//! and must report `epochs_recovered > 0` whenever a fault actually
//! fired.

use dift_dbi::{Engine, Tool};
use dift_isa::{BinOp, Program, ProgramBuilder, Reg};
use dift_multicore::{
    epoch_process_stream_tolerant, run_epoch_dift_tolerant, silence_injected_panics, ChannelModel,
    EpochModel, FaultSite, NoopFaults, RecoveryPolicy, ScriptedFaults,
};
use dift_obs::NoopRecorder;
use dift_taint::{PcTaint, ReferenceTaintEngine, TaintLabel, TaintPolicy};
use dift_vm::{Machine, MachineConfig, StepEffects};
use proptest::prelude::*;
use std::sync::Arc;

const OPS: [BinOp; 6] = [BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::And, BinOp::Min, BinOp::Shl];

#[derive(Clone, Debug)]
enum Step {
    Alu {
        op: usize,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Store {
        rs: u8,
        slot: u8,
    },
    Load {
        rd: u8,
        slot: u8,
    },
    /// Store through an address derived from a (possibly tainted)
    /// register — the alert-generating path.
    StoreVia {
        rs: u8,
    },
    /// Load through a derived address.
    LoadVia {
        rd: u8,
        rs: u8,
    },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..OPS.len(), 1u8..10, 1u8..10, 1u8..10).prop_map(|(op, rd, rs1, rs2)| Step::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..10, 0u8..8).prop_map(|(rs, slot)| Step::Store { rs, slot }),
        (1u8..10, 0u8..8).prop_map(|(rd, slot)| Step::Load { rd, slot }),
        (1u8..10).prop_map(|rs| Step::StoreVia { rs }),
        (1u8..10, 1u8..10).prop_map(|(rd, rs)| Step::LoadVia { rd, rs }),
    ]
}

fn build(ninputs: usize, steps: &[Step]) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    b.func("main");
    for i in 0..ninputs {
        b.input(Reg(i as u8 + 1), 0);
    }
    b.li(Reg(11), 500); // direct-slot base
    for s in steps {
        match s {
            Step::Alu { op, rd, rs1, rs2 } => {
                b.bin(OPS[*op], Reg(*rd), Reg(*rs1), Reg(*rs2));
            }
            Step::Store { rs, slot } => {
                b.store(Reg(*rs), Reg(11), *slot as i64);
            }
            Step::Load { rd, slot } => {
                b.load(Reg(*rd), Reg(11), *slot as i64);
            }
            Step::StoreVia { rs } => {
                // Address = 500 + (r[rs] & 63): stays in-bounds while
                // keeping the source register's taint on the address.
                b.bini(BinOp::And, Reg(12), Reg(*rs), 63);
                b.add(Reg(12), Reg(12), Reg(11));
                b.store(Reg(*rs), Reg(12), 0);
            }
            Step::LoadVia { rd, rs } => {
                b.bini(BinOp::And, Reg(12), Reg(*rs), 63);
                b.add(Reg(12), Reg(12), Reg(11));
                b.load(Reg(*rd), Reg(12), 0);
            }
        }
    }
    for i in 1..10u8 {
        b.output(Reg(i), 1);
    }
    b.halt();
    Arc::new(b.build().unwrap())
}

/// Tool that records the effects stream so the oracle is driven from
/// exactly the input the tolerant run saw (the VM is deterministic).
#[derive(Default)]
struct Capture {
    fxs: Vec<StepEffects>,
}

impl Tool for Capture {
    fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
        self.fxs.push(fx.clone());
    }
}

fn machine(p: &Arc<Program>, inputs: &[u64]) -> Machine {
    let mut m = Machine::new(p.clone(), MachineConfig::small());
    m.feed_input(0, inputs);
    m
}

fn oracle<T: TaintLabel>(fxs: &[StepEffects], policy: TaintPolicy) -> ReferenceTaintEngine<T> {
    let mut o = ReferenceTaintEngine::<T>::new(policy);
    for fx in fxs {
        o.process(fx);
    }
    o
}

/// Queue-shallow model so small proptest workloads still span several
/// epochs per shard.
fn test_model(workers: usize, epoch_len: usize) -> EpochModel {
    EpochModel {
        chan: ChannelModel { enqueue_cycles: 3, helper_per_msg: 5, queue_depth: 128 },
        workers,
        epoch_len,
        fanout_cycles: 1,
        compose_per_epoch: 64,
    }
}

fn assert_agrees<T: TaintLabel>(
    engine: &dift_taint::TaintEngine<T>,
    oracle: &ReferenceTaintEngine<T>,
    what: &str,
) {
    assert_eq!(engine.output_labels, oracle.output_labels, "{what}: output lineage");
    assert_eq!(engine.alerts, oracle.alerts, "{what}: alerts incl. origins");
    assert_eq!(engine.tainted_words(), oracle.tainted_words(), "{what}: tainted words");
    let cells: Vec<(u64, T)> =
        engine.shadow().iter_tainted().map(|(a, l)| (a, l.clone())).collect();
    assert_eq!(cells, oracle.tainted_cells(), "{what}: live shadow cells");
    assert_eq!(engine.stats(), oracle.stats(), "{what}: stats incl. exact peaks");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random programs under random seeded fault plans: the tolerant
    /// runner must complete bit-identical to the serial oracle, and must
    /// have recovered something whenever a fault fired.
    #[test]
    fn tolerant_runner_matches_oracle_under_random_faults(
        steps in proptest::collection::vec(step(), 8..48),
        inputs in proptest::collection::vec(0u64..1000, 1..4),
        seed in 0u64..u64::MAX,
        nfaults in 1usize..6,
        epoch_len in 4usize..24,
        workers in 2usize..5,
    ) {
        silence_injected_panics();
        let p = build(inputs.len(), &steps);
        let policy = TaintPolicy::default();
        let mut cap = Capture::default();
        Engine::new(machine(&p, &inputs)).run_tool(&mut cap);
        let oracle = oracle::<PcTaint>(&cap.fxs, policy);

        // Shard range covers the spares (workers + retry rounds) so the
        // plan can also attack the recovery path itself; epoch range
        // covers the whole stream.
        let epochs = cap.fxs.len() / epoch_len + 1;
        let plan = ScriptedFaults::seeded(seed, nfaults, workers + 2, epochs);
        let (run, _) = run_epoch_dift_tolerant::<PcTaint, _, _>(
            machine(&p, &inputs),
            test_model(workers, epoch_len),
            policy,
            NoopRecorder,
            plan.clone(),
            RecoveryPolicy::quick(),
        );
        assert_agrees(&run.engine, &oracle, "threaded tolerant runner");
        let rs = run.stats.recovery;
        prop_assert_eq!(rs.epochs_recovered, rs.epochs_lost, "recovery must finish: {:?}", rs);
        if rs.faults_injected > 0 {
            prop_assert!(
                rs.epochs_recovered > 0,
                "a fired fault must cost (and recover) at least one epoch: {:?}",
                rs
            );
        }

        // Same adversary against the stream-parallel path.
        let mem_words = machine(&p, &inputs).mem_words();
        let (par, srs) = epoch_process_stream_tolerant::<PcTaint, _>(
            &cap.fxs, policy, mem_words, epoch_len, workers, plan,
        );
        assert_agrees(&par, &oracle, "stream tolerant runner");
        prop_assert_eq!(srs.epochs_recovered, srs.epochs_lost, "{:?}", srs);
    }
}

/// The deterministic fault grid CI runs: every fault site × the first
/// two shards, at the epoch each shard is guaranteed to own (epoch e
/// steers to shard e % workers), at reduced size.
#[test]
fn deterministic_fault_grid_recovers_every_site() {
    silence_injected_panics();
    let steps: Vec<Step> = (0..32)
        .map(|i| match i % 4 {
            0 => Step::Alu { op: i % OPS.len(), rd: 2, rs1: 1, rs2: 2 },
            1 => Step::Store { rs: 2, slot: (i % 8) as u8 },
            2 => Step::LoadVia { rd: 3, rs: 2 },
            _ => Step::StoreVia { rs: 3 },
        })
        .collect();
    let p = build(2, &steps);
    let inputs = [7u64, 13];
    let policy = TaintPolicy::default();
    let mut cap = Capture::default();
    Engine::new(machine(&p, &inputs)).run_tool(&mut cap);
    let oracle = oracle::<PcTaint>(&cap.fxs, policy);

    for site in FaultSite::ALL {
        for shard in 0..2usize {
            let plan = ScriptedFaults::single(site, shard, shard);
            let (run, _) = run_epoch_dift_tolerant::<PcTaint, _, _>(
                machine(&p, &inputs),
                test_model(3, 16),
                policy,
                NoopRecorder,
                plan,
                RecoveryPolicy::quick(),
            );
            let what = format!("{site:?} at shard {shard}");
            assert_agrees(&run.engine, &oracle, &what);
            let rs = run.stats.recovery;
            assert!(rs.faults_injected >= 1, "{what}: fault must fire: {rs:?}");
            assert!(rs.epochs_recovered >= 1, "{what}: must recover: {rs:?}");
            assert_eq!(rs.epochs_recovered, rs.epochs_lost, "{what}: {rs:?}");
        }
    }
}

/// Fault-free tolerant runs stay bit-identical and uneventful — the
/// zero-fault half of the acceptance criteria.
#[test]
fn fault_free_tolerant_run_is_uneventful() {
    let steps: Vec<Step> =
        (0..24).map(|i| Step::Alu { op: i % OPS.len(), rd: 2, rs1: 1, rs2: 2 }).collect();
    let p = build(1, &steps);
    let policy = TaintPolicy::default();
    let mut cap = Capture::default();
    Engine::new(machine(&p, &[5])).run_tool(&mut cap);
    let oracle = oracle::<PcTaint>(&cap.fxs, policy);
    let (run, _) = run_epoch_dift_tolerant::<PcTaint, _, _>(
        machine(&p, &[5]),
        test_model(3, 8),
        policy,
        NoopRecorder,
        NoopFaults,
        RecoveryPolicy::tolerant(),
    );
    assert_agrees(&run.engine, &oracle, "fault-free tolerant");
    assert!(!run.stats.recovery.eventful(), "{:?}", run.stats.recovery);
}
