//! Epoch-parallel DIFT across N helper shards.
//!
//! The single-helper offload ([`crate::helper::run_helper_dift`]) leaves
//! the helper a serial consumer: its clock lower-bounds completion no
//! matter how fast the channel is. This module fans propagation out:
//! the effects stream is split into fixed-size **epochs**, whole epochs
//! are steered round-robin to N shard threads, and each shard computes
//! its epochs' *taint transfer summaries* (`dift_taint::summary`) — the
//! epoch's output labels over symbolic unknown incoming labels, which
//! requires no upstream taint state and therefore no inter-shard
//! coordination. A cheap sequential composition pass then stitches the
//! summaries in epoch order, producing results **bit-identical** to the
//! serial engine: labels, alerts (with origins), output lineage, and
//! exact peak statistics.
//!
//! Two independent views of the same fan-out:
//!
//! * **Real parallelism** — shard threads genuinely run on other cores
//!   ([`run_epoch_dift`] with threads, [`epoch_process_stream`] for a
//!   pre-captured stream), so wall-clock analysis throughput scales
//!   with cores.
//! * **Modeled timing** — [`EpochModel`] extends [`ChannelModel`] with a
//!   fan-out steering cost, per-shard bounded queues
//!   ([`MultiQueueSim`]), and a per-epoch composition charge at the
//!   barrier; reported cycles stay deterministic and host-independent.
//!
//! ## Fault tolerance
//!
//! Because an epoch summary is a pure function of the epoch's records
//! and its I/O base, a lost epoch is recomputable anywhere with
//! bit-identical results. [`run_epoch_dift_tolerant`] exploits that:
//! shard panics are caught per epoch, stalled shards are detected by
//! progress watermarks and abandoned, surviving summaries must pass a
//! record-count integrity check, and whatever is lost is re-summarized
//! on spare shards ([`RecoveryPolicy::max_retries`] rounds) and finally
//! inline on the main thread — the graceful degradation to serial DIFT,
//! which cannot fail. Faults themselves are injected deterministically
//! through a [`FaultPlan`] ([`NoopFaults`] by default, which compiles
//! every injection site away). See DESIGN.md §11.

use crate::channel::{ChannelModel, MultiQueueSim};
use crate::faultplan::{FaultPlan, FaultSite, NoopFaults, INJECTED_PANIC_MARKER};
use crate::helper::{panic_message, DiftRun, MulticoreStats, BATCH_SIZE};
use crate::resilience::{RecoveryPolicy, RecoveryStats};
use crossbeam::channel as xbeam;
use dift_dbi::{Engine, Tool};
use dift_obs::{Metric, NoopRecorder, Recorder};
use dift_taint::{
    summarize_epoch, EpochSummarizer, EpochSummary, IoBase, TaintEngine, TaintLabel, TaintPolicy,
};
use dift_vm::{Machine, RunResult, StepEffects};
use std::collections::HashMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// Timing model of the epoch-parallel offload.
#[derive(Clone, Copy, Debug)]
pub struct EpochModel {
    /// The per-shard channel (each shard owns a queue of this shape).
    pub chan: ChannelModel,
    /// Helper shards propagation fans out across.
    pub workers: usize,
    /// Instructions per epoch. Larger epochs amortize composition but
    /// coarsen load balancing.
    pub epoch_len: usize,
    /// Extra main-core cycles per message to steer it to a shard (the
    /// software fan-out pays an extra indirection; dedicated hardware
    /// routes by epoch counter for free).
    pub fanout_cycles: u64,
    /// Cycles of the sequential composition pass charged per epoch at
    /// the barrier (resolving a summary's incoming labels and replaying
    /// its events is proportional to epoch state touched, bounded and
    /// small relative to the epoch itself).
    pub compose_per_epoch: u64,
}

impl EpochModel {
    /// Shared-memory fan-out: software steering pays a cycle per message.
    ///
    /// `epoch_len` equals the per-shard queue depth: a whole epoch is
    /// steered to one shard back-to-back, so the shard's queue must
    /// buffer a full epoch for the producer to race ahead to the next
    /// shard while this one drains — that overlap is where fan-out wins.
    /// A longer epoch than the queue re-serializes the producer on the
    /// current shard no matter how many shards exist.
    pub fn software(workers: usize) -> EpochModel {
        let chan = ChannelModel::software();
        EpochModel {
            chan,
            workers,
            epoch_len: chan.queue_depth,
            fanout_cycles: 1,
            compose_per_epoch: 64,
        }
    }

    /// Hardware fan-out: the interconnect routes by epoch counter.
    pub fn hardware(workers: usize) -> EpochModel {
        let chan = ChannelModel::hardware();
        EpochModel {
            chan,
            workers,
            epoch_len: chan.queue_depth,
            fanout_cycles: 0,
            compose_per_epoch: 64,
        }
    }
}

/// One physical channel send: a batch of records belonging to a single
/// epoch. The first batch of an epoch carries the per-channel I/O counts
/// of the stream prefix (a label-independent fact the producer tracks),
/// which the shard needs to seed global source/output indices. Records
/// travel behind an `Arc` so the producer can retain the epoch for
/// recovery without copying the stream.
struct ShardBatch {
    epoch: usize,
    base: Option<IoBase>,
    records: Arc<Vec<StepEffects>>,
}

/// What a shard reports back to the runner over the results channel.
/// Per-epoch messages (instead of one bulk return at join) are what let
/// completed epochs survive the death of their shard.
enum ShardMsg<T: TaintLabel> {
    /// An epoch's finished summary, with the shard's busy nanos for it
    /// (0 unless a live recorder asked for timing). The shard is implied:
    /// the runner only cares which epoch came back. Boxed so the channel
    /// moves a pointer, not the whole summary arena header.
    Epoch { epoch: usize, summary: Box<EpochSummary<T>>, nanos: u64 },
    /// An epoch was lost on this shard (panic caught, or a protocol
    /// violation like a missing I/O base); the shard moves on.
    Failed { shard: usize, epoch: usize, msg: String },
    /// The shard drained its queue and exited cleanly.
    Done { shard: usize, faults: u64 },
}

/// Shared per-shard progress ledger for stall detection.
struct ShardState {
    /// Batches drained so far — the progress watermark.
    batches: AtomicU64,
    /// Epoch the shard last started (`u64::MAX` before the first).
    epoch: AtomicU64,
    /// Set by the runner to tell an abandoned (wedged) shard to exit.
    abandon: AtomicBool,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            batches: AtomicU64::new(0),
            epoch: AtomicU64::new(u64::MAX),
            abandon: AtomicBool::new(false),
        }
    }
}

/// An epoch the producer kept for possible re-summarization: its I/O
/// base, its batches (shared `Arc`s, so retention is pointer-cheap), the
/// record count (the integrity oracle), and the shard it was steered to.
struct RetainedEpoch {
    base: IoBase,
    batches: Vec<Arc<Vec<StepEffects>>>,
    records: u64,
    shard: Option<usize>,
}

/// Tool that splits the effects stream into epochs and ships each epoch
/// to its round-robin shard, charging the fan-out timing model. Generic
/// over a [`FaultPlan`] so the producer-side injection sites (message
/// drops) monomorphize away under [`NoopFaults`].
struct EpochOffloader<R: Recorder, F: FaultPlan> {
    obs: R,
    faults: F,
    /// Producer-side injected faults that actually fired.
    faults_fired: u64,
    txs: Vec<Option<xbeam::Sender<ShardBatch>>>,
    batch: Vec<StepEffects>,
    batches: u64,
    queues: MultiQueueSim,
    model: EpochModel,
    /// Steps shipped so far (the epoch counter's numerator).
    seen: u64,
    /// Current epoch (`usize::MAX` until the first step).
    cur_epoch: usize,
    /// Live shard the current epoch is steered to (`None` if every
    /// shard is dead — the epoch is then recovered from retention).
    cur_shard: Option<usize>,
    /// Injected fault: drop the current epoch's channel traffic.
    cur_drop: bool,
    /// Keep every epoch's batches for recovery (tolerant or armed runs).
    retain: bool,
    retained: Vec<RetainedEpoch>,
    /// With recovery enabled, sends time out after this long instead of
    /// blocking forever on a wedged shard's full queue.
    send_deadline: Option<Duration>,
    /// Running per-channel I/O counts through the current position.
    running: IoBase,
    /// Snapshot of `running` at the current epoch's start.
    epoch_base: IoBase,
    /// Whether the next flush is the epoch's first (must carry the base).
    need_base: bool,
}

impl<R: Recorder, F: FaultPlan> EpochOffloader<R, F> {
    /// First live shard at or after the epoch's round-robin home.
    fn pick_shard(&self, epoch: usize) -> Option<usize> {
        let n = self.txs.len();
        (0..n).map(|k| (epoch + k) % n).find(|&s| self.txs[s].is_some())
    }

    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let records = Arc::new(std::mem::replace(&mut self.batch, Vec::with_capacity(BATCH_SIZE)));
        let base = self.need_base.then(|| self.epoch_base.clone());
        self.need_base = false;
        if self.retain {
            let r = &mut self.retained[self.cur_epoch];
            r.records += records.len() as u64;
            r.batches.push(Arc::clone(&records));
        }
        if F::ARMED && self.cur_drop {
            return; // injected fault: the epoch's traffic never arrives
        }
        let Some(shard) = self.cur_shard else { return };
        let Some(tx) = &self.txs[shard] else { return };
        let batch = ShardBatch { epoch: self.cur_epoch, base, records };
        let sent = match self.send_deadline {
            Some(deadline) => match tx.send_timeout(batch, deadline) {
                Ok(()) => true,
                Err(_) => {
                    // Full past the stall timeout (or receiver gone):
                    // the shard is wedged or dead. Stop feeding it; its
                    // epochs come back through recovery.
                    self.txs[shard] = None;
                    false
                }
            },
            None => tx.send(batch).is_ok(),
        };
        if sent {
            self.batches += 1;
            if R::ENABLED {
                self.obs.add(Metric::McBatches, 1);
            }
        }
    }
}

impl<R: Recorder, F: FaultPlan> Tool for EpochOffloader<R, F> {
    fn after(&mut self, m: &mut Machine, fx: &StepEffects) {
        let e = (self.seen / self.model.epoch_len as u64) as usize;
        if e != self.cur_epoch {
            // Epoch boundary: ship the previous epoch's tail before any
            // record of the new one, then snapshot the I/O counts the
            // new epoch's summarizer must be seeded with.
            self.flush();
            self.cur_epoch = e;
            self.epoch_base = self.running.clone();
            self.need_base = true;
            self.cur_shard = self.pick_shard(e);
            self.cur_drop = false;
            if F::ARMED {
                if let Some(shard) = self.cur_shard {
                    if self.faults.fires(FaultSite::DropMessage, shard, e) {
                        self.cur_drop = true;
                        self.faults_fired += 1;
                    }
                }
            }
            if self.retain {
                self.retained.push(RetainedEpoch {
                    base: self.epoch_base.clone(),
                    batches: Vec::new(),
                    records: 0,
                    shard: self.cur_shard,
                });
            }
        }
        // Producer cost: enqueue + shard steering, plus any stall from
        // *this* epoch's shard queue (other shards never block it). The
        // model always charges the round-robin home shard, so modeled
        // stats are identical whatever the real channels do.
        m.charge(self.model.chan.enqueue_cycles + self.model.fanout_cycles);
        let shard = self.cur_epoch % self.queues.shards();
        let stall = self.queues.enqueue(shard, m.cycles());
        if stall > 0 {
            m.charge(stall);
        }
        if R::ENABLED {
            self.obs.add(Metric::McMessages, 1);
            self.obs.add(Metric::McStallCycles, stall);
            self.obs.observe(Metric::McQueueDepth, self.queues.depth(shard) as u64);
        }
        self.batch.push(fx.clone());
        if let Some((ch, _)) = fx.input {
            *self.running.inputs.entry(ch).or_insert(0) += 1;
        }
        if let Some((ch, _)) = fx.output {
            *self.running.outputs.entry(ch).or_insert(0) += 1;
        }
        self.seen += 1;
        if self.batch.len() >= BATCH_SIZE || stall > 0 || fx.spawned.is_some() {
            self.flush();
        }
    }

    fn on_finish(&mut self, _m: &mut Machine, _r: &RunResult) {
        self.flush();
    }
}

/// Finish the shard's in-progress epoch (if any) and report it. The
/// `finish` call runs under `catch_unwind` so a label-policy bug in the
/// finalization costs one epoch, not the shard.
fn finish_epoch<T: TaintLabel>(
    cur: &mut Option<(usize, EpochSummarizer<T>)>,
    busy: &mut Duration,
    shard: usize,
    timed: bool,
    out: &xbeam::Sender<ShardMsg<T>>,
) {
    if let Some((epoch, s)) = cur.take() {
        let start = timed.then(Instant::now);
        match catch_unwind(AssertUnwindSafe(|| s.finish())) {
            Ok(summary) => {
                let mut nanos = busy.as_nanos() as u64;
                if let Some(start) = start {
                    nanos += start.elapsed().as_nanos() as u64;
                }
                let _ = out.send(ShardMsg::Epoch { epoch, summary: Box::new(summary), nanos });
            }
            Err(payload) => {
                let _ = out.send(ShardMsg::Failed { shard, epoch, msg: panic_message(payload) });
            }
        }
        *busy = Duration::ZERO;
    }
}

/// A shard's consumer loop: summarize every epoch steered to it. Epochs
/// arrive in this shard's stream order, so one live summarizer suffices.
/// Panics while stepping or finishing an epoch are caught and reported
/// as [`ShardMsg::Failed`] — one bad epoch never takes down the shard or
/// its other epochs. With `timed` set (a live recorder upstream), each
/// epoch's wall-clock summarization nanos are measured — busy time only,
/// not queue waits.
fn shard_loop<T: TaintLabel, F: FaultPlan>(
    shard: usize,
    rx: xbeam::Receiver<ShardBatch>,
    out: xbeam::Sender<ShardMsg<T>>,
    policy: TaintPolicy,
    timed: bool,
    faults: F,
    state: Arc<ShardState>,
) {
    let mut cur: Option<(usize, EpochSummarizer<T>)> = None;
    let mut busy = Duration::ZERO;
    // Epoch being skipped after a failure (its remaining batches are
    // already in flight and must be drained without summarizing).
    let mut skip: Option<usize> = None;
    let mut faults_fired = 0u64;
    while let Ok(b) = rx.recv() {
        state.batches.fetch_add(1, Ordering::Relaxed);
        if skip == Some(b.epoch) {
            continue;
        }
        let start = timed.then(Instant::now);
        let switch = cur.as_ref().is_none_or(|(e, _)| *e != b.epoch);
        if switch {
            finish_epoch(&mut cur, &mut busy, shard, timed, &out);
            skip = None;
            state.epoch.store(b.epoch as u64, Ordering::Relaxed);
            if F::ARMED && faults.fires(FaultSite::QueueStall, shard, b.epoch) {
                // Injected wedge: stop draining the queue, exactly like a
                // stuck consumer. Only the runner's progress watermark
                // can notice; the abandon flag lets the thread exit once
                // the runner gives up on it (a real wedged thread would
                // leak — this one cleans up after the test).
                while !state.abandon.load(Ordering::Relaxed) {
                    thread::sleep(Duration::from_millis(1));
                }
                return; // abandoned: no Done message
            }
            let Some(base) = b.base.as_ref() else {
                // Recoverable protocol violation: the epoch's base batch
                // never arrived (e.g. it timed out on a full queue).
                // Report the loss and drain the epoch's remains.
                let _ = out.send(ShardMsg::Failed {
                    shard,
                    epoch: b.epoch,
                    msg: "first batch of the epoch arrived without its I/O base".to_string(),
                });
                skip = Some(b.epoch);
                continue;
            };
            cur = Some((b.epoch, EpochSummarizer::new(policy, base)));
        }
        let Some((epoch, s)) = cur.as_mut() else { continue };
        let epoch = *epoch;
        let corrupt = F::ARMED && switch && faults.fires(FaultSite::CorruptSummary, shard, epoch);
        let inject_panic = F::ARMED && switch && faults.fires(FaultSite::ShardPanic, shard, epoch);
        if corrupt {
            faults_fired += 1;
        }
        if inject_panic {
            faults_fired += 1;
        }
        // Injected corruption: silently skip the epoch's first record —
        // damage only the record-count integrity check can see.
        let records: &[StepEffects] = if corrupt { &b.records[1..] } else { &b.records };
        let stepped = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic_any(format!("{INJECTED_PANIC_MARKER} scripted shard panic"));
            }
            for fx in records {
                s.step(fx);
            }
        }));
        if let Err(payload) = stepped {
            let _ = out.send(ShardMsg::Failed { shard, epoch, msg: panic_message(payload) });
            cur = None;
            skip = Some(epoch);
            busy = Duration::ZERO;
            continue;
        }
        if let Some(start) = start {
            busy += start.elapsed();
        }
    }
    finish_epoch(&mut cur, &mut busy, shard, timed, &out);
    let _ = out.send(ShardMsg::Done { shard, faults: faults_fired });
}

/// Re-summarize a retained epoch from its batches. This is exactly the
/// serial DIFT computation over the epoch, so with `corrupt == false` it
/// cannot fail and its result is bit-identical to what a healthy shard
/// would have produced.
fn resummarize<T: TaintLabel>(
    r: &RetainedEpoch,
    policy: TaintPolicy,
    corrupt: bool,
) -> EpochSummary<T> {
    let mut s = EpochSummarizer::<T>::new(policy, &r.base);
    let mut drop_first = corrupt;
    for batch in &r.batches {
        for fx in batch.iter() {
            if drop_first {
                drop_first = false;
                continue;
            }
            s.step(fx);
        }
    }
    s.finish()
}

/// Run `machine` with taint propagation fanned out across
/// `model.workers` helper shards, composing epoch summaries into a
/// final engine bit-identical to the serial offload. Fail-stop: a shard
/// failure aborts the run (see [`run_epoch_dift_tolerant`] for the
/// recovering variant).
pub fn run_epoch_dift<T: TaintLabel + Send + 'static>(
    machine: Machine,
    model: EpochModel,
    policy: TaintPolicy,
) -> DiftRun<T> {
    run_epoch_dift_tolerant(
        machine,
        model,
        policy,
        NoopRecorder,
        NoopFaults,
        RecoveryPolicy::fail_stop(),
    )
    .0
}

/// [`run_epoch_dift`] with an observability recorder threaded through
/// the offloader (messages, stalls, queue occupancy, batches) and the
/// shard/compose stages (per-shard epoch latency, compose time). The
/// recorder is returned alongside the run so callers can snapshot it;
/// with [`NoopRecorder`] every probe compiles away.
pub fn run_epoch_dift_obs<T: TaintLabel + Send + 'static, R: Recorder>(
    machine: Machine,
    model: EpochModel,
    policy: TaintPolicy,
    obs: R,
) -> (DiftRun<T>, R) {
    run_epoch_dift_tolerant(machine, model, policy, obs, NoopFaults, RecoveryPolicy::fail_stop())
}

/// The fault-tolerant epoch runner: [`run_epoch_dift_obs`] plus a
/// [`FaultPlan`] adversary and a [`RecoveryPolicy`].
///
/// With recovery enabled the run **always completes** with results
/// bit-identical to the serial engine, whatever single or multiple
/// faults the plan injects: lost epochs are detected (missing summary,
/// failed record-count check, or stranded on a stalled shard), retried
/// on spare shard threads, and finally re-summarized inline on the main
/// thread. With recovery disabled (fail-stop) the first shard failure
/// aborts with a diagnostic naming the shard and epoch.
///
/// `recovery.enabled` (or an armed plan) makes the producer retain each
/// epoch's batches — an `Arc` clone per batch, no record copying — and
/// switches producer sends to `send_timeout` so a wedged shard cannot
/// block the run forever.
pub fn run_epoch_dift_tolerant<T, R, F>(
    machine: Machine,
    model: EpochModel,
    policy: TaintPolicy,
    obs: R,
    faults: F,
    recovery: RecoveryPolicy,
) -> (DiftRun<T>, R)
where
    T: TaintLabel + Send + 'static,
    R: Recorder,
    F: FaultPlan,
{
    assert!(model.workers >= 1, "at least one shard");
    assert!(model.epoch_len >= 1, "epochs must be non-empty");
    let mut helper_policy = policy;
    helper_policy.charge_cycles = false; // the timing model owns the cost
    let mem_words = machine.mem_words();
    let retain = F::ARMED || recovery.enabled;

    // Per-shard channels in batch units, as in the single-helper path,
    // plus one unbounded results channel back (unbounded so shards never
    // block reporting — a blocked reporter would look like a stall).
    let cap = (model.chan.queue_depth / BATCH_SIZE).max(4);
    let (res_tx, res_rx) = xbeam::unbounded::<ShardMsg<T>>();
    let mut txs = Vec::with_capacity(model.workers);
    let mut states = Vec::with_capacity(model.workers);
    let mut handles = Vec::with_capacity(model.workers);
    for shard in 0..model.workers {
        let (tx, rx) = xbeam::bounded::<ShardBatch>(cap);
        let state = Arc::new(ShardState::new());
        let out = res_tx.clone();
        let plan = faults.clone();
        let st = Arc::clone(&state);
        txs.push(Some(tx));
        states.push(state);
        handles.push(thread::spawn(move || {
            shard_loop::<T, F>(shard, rx, out, helper_policy, R::ENABLED, plan, st)
        }));
    }
    drop(res_tx); // the runner only receives

    let mut off = EpochOffloader {
        obs,
        faults: faults.clone(),
        faults_fired: 0,
        txs,
        batch: Vec::with_capacity(BATCH_SIZE),
        batches: 0,
        queues: MultiQueueSim::new(model.chan, model.workers),
        model,
        seen: 0,
        cur_epoch: usize::MAX,
        cur_shard: None,
        cur_drop: false,
        retain,
        retained: Vec::new(),
        send_deadline: recovery.enabled.then_some(recovery.stall_timeout),
        running: IoBase::default(),
        epoch_base: IoBase::default(),
        need_base: false,
    };
    let mut dbi = Engine::new(machine);
    let result = dbi.run_tool(&mut off);
    off.flush();
    for tx in &mut off.txs {
        tx.take(); // close the channels so shards drain and exit
    }

    let total = if off.seen == 0 { 0 } else { off.cur_epoch + 1 };
    let mut obs = off.obs;
    let mut summaries: Vec<Option<EpochSummary<T>>> = (0..total).map(|_| None).collect();
    let mut failures: HashMap<usize, (usize, String)> = HashMap::new();
    let mut done = vec![false; model.workers];
    let mut stalled = vec![false; model.workers];
    let mut shard_faults = 0u64;

    let handle_msg = |msg: ShardMsg<T>,
                      summaries: &mut Vec<Option<EpochSummary<T>>>,
                      obs: &mut R,
                      done: &mut Vec<bool>,
                      shard_faults: &mut u64|
     -> Option<(usize, usize, String)> {
        match msg {
            ShardMsg::Epoch { epoch, summary, nanos } => {
                if R::ENABLED {
                    obs.observe(Metric::McShardEpochNanos, nanos);
                }
                if let Some(slot) = summaries.get_mut(epoch) {
                    *slot = Some(*summary);
                }
                None
            }
            ShardMsg::Failed { shard, epoch, msg } => Some((shard, epoch, msg)),
            ShardMsg::Done { shard, faults } => {
                done[shard] = true;
                *shard_faults += faults;
                None
            }
        }
    };

    if !recovery.enabled {
        // Fail-stop collection: the first reported loss aborts, naming
        // the shard and epoch (the panic a caller of the plain entry
        // points sees).
        while done.iter().any(|d| !d) {
            match res_rx.recv() {
                Ok(msg) => {
                    if let Some((shard, epoch, msg)) =
                        handle_msg(msg, &mut summaries, &mut obs, &mut done, &mut shard_faults)
                    {
                        panic!("epoch shard {shard} failed in epoch {epoch}: {msg}");
                    }
                }
                Err(_) => break, // a shard died without reporting; join() below explains
            }
        }
        for (i, h) in handles.into_iter().enumerate() {
            if let Err(payload) = h.join() {
                let at = match states[i].epoch.load(Ordering::Relaxed) {
                    u64::MAX => "before its first epoch".to_string(),
                    e => format!("in epoch {e}"),
                };
                panic!("epoch shard {i} panicked {at}: {}", panic_message(payload));
            }
        }
    } else {
        // Tolerant collection: gather what arrives, watch per-shard
        // progress watermarks, and abandon any shard that stops draining
        // for `stall_timeout`.
        let now = Instant::now();
        let mut watermarks: Vec<(u64, Instant)> =
            states.iter().map(|s| (s.batches.load(Ordering::Relaxed), now)).collect();
        while !done.iter().zip(&stalled).all(|(d, s)| *d || *s) {
            match res_rx.recv_timeout(recovery.backoff) {
                Ok(msg) => {
                    if let Some((shard, epoch, msg)) =
                        handle_msg(msg, &mut summaries, &mut obs, &mut done, &mut shard_faults)
                    {
                        failures.insert(epoch, (shard, msg));
                    }
                }
                Err(xbeam::RecvTimeoutError::Timeout) => {
                    for s in 0..model.workers {
                        if done[s] || stalled[s] {
                            continue;
                        }
                        let b = states[s].batches.load(Ordering::Relaxed);
                        if b != watermarks[s].0 {
                            watermarks[s] = (b, Instant::now());
                        } else if watermarks[s].1.elapsed() >= recovery.stall_timeout {
                            states[s].abandon.store(true, Ordering::Relaxed);
                            stalled[s] = true;
                            if F::ARMED {
                                let e = states[s].epoch.load(Ordering::Relaxed);
                                if e != u64::MAX
                                    && faults.fires(FaultSite::QueueStall, s, e as usize)
                                {
                                    shard_faults += 1;
                                }
                            }
                        }
                    }
                }
                Err(xbeam::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Late messages a shard sent before we noticed it was done.
        while let Ok(msg) = res_rx.try_recv() {
            if let Some((shard, epoch, msg)) =
                handle_msg(msg, &mut summaries, &mut obs, &mut done, &mut shard_faults)
            {
                failures.insert(epoch, (shard, msg));
            }
        }
        for (i, h) in handles.into_iter().enumerate() {
            if stalled[i] {
                // An injected wedge exits on the abandon flag; a real one
                // would not, so the handle is dropped (detached) rather
                // than joined — the run must not block on it.
                drop(h);
            } else {
                // A hard panic outside the per-epoch guards is treated
                // as shard loss: its epochs fail validation below.
                let _ = h.join();
            }
        }
    }

    let mut rs = RecoveryStats {
        faults_injected: off.faults_fired + shard_faults,
        shards_lost: stalled.iter().filter(|s| **s).count() as u64,
        ..RecoveryStats::default()
    };

    let retained = off.retained;
    // Cycles of helper work re-done during recovery (charged to the
    // modeled completion below; exactly 0 on a fault-free run).
    let mut recovered_records = 0u64;
    if retain {
        // Validation: an epoch survives only if its summary exists and
        // saw exactly the records the producer shipped — the integrity
        // check that catches silent corruption and partial delivery.
        let lost: Vec<usize> = (0..total)
            .filter(|&e| summaries[e].as_ref().is_none_or(|s| s.instrs() != retained[e].records))
            .collect();
        rs.epochs_lost = lost.len() as u64;
        recovered_records = lost.iter().map(|&e| retained[e].records).sum();
        let reason = |e: usize| -> String {
            match failures.get(&e) {
                Some((shard, msg)) => format!("lost on shard {shard}: {msg}"),
                None => match retained[e].shard {
                    Some(s) => {
                        format!("summary from shard {s} missing or failed the record-count check")
                    }
                    None => "no live shard to steer the epoch to".to_string(),
                },
            }
        };

        let mut lost = lost;
        // Retry rounds: a fresh spare shard (a new thread with a new
        // shard index, so a pure fault plan sees fresh coordinates)
        // re-summarizes the lost epochs from retained batches.
        for round in 0..recovery.max_retries {
            if lost.is_empty() {
                break;
            }
            let spare = model.workers + round as usize;
            let plan = faults.clone();
            let retained_ref = &retained;
            let lost_ref = &lost;
            type Attempt<T> = (usize, Option<(EpochSummary<T>, u64)>, u64);
            let attempts: Vec<Attempt<T>> = thread::scope(|sc| {
                sc.spawn(move || {
                    let mut out: Vec<Attempt<T>> = Vec::with_capacity(lost_ref.len());
                    for &e in lost_ref {
                        let mut fired = 0u64;
                        if F::ARMED && plan.fires(FaultSite::QueueStall, spare, e) {
                            // A wedged spare simply fails the attempt.
                            out.push((e, None, 1));
                            continue;
                        }
                        let corrupt = F::ARMED && plan.fires(FaultSite::CorruptSummary, spare, e);
                        let inject_panic = F::ARMED && plan.fires(FaultSite::ShardPanic, spare, e);
                        if corrupt {
                            fired += 1;
                        }
                        if inject_panic {
                            fired += 1;
                        }
                        let start = Instant::now();
                        let res = catch_unwind(AssertUnwindSafe(|| {
                            if inject_panic {
                                panic_any(format!(
                                    "{INJECTED_PANIC_MARKER} scripted spare-shard panic"
                                ));
                            }
                            resummarize::<T>(&retained_ref[e], helper_policy, corrupt)
                        }));
                        let nanos = start.elapsed().as_nanos() as u64;
                        out.push((e, res.ok().map(|s| (s, nanos)), fired));
                    }
                    out
                })
                .join()
                .unwrap_or_default()
            });
            for (e, res, fired) in attempts {
                rs.retries += 1;
                rs.faults_injected += fired;
                if let Some((sum, nanos)) = res {
                    if sum.instrs() == retained[e].records {
                        if R::ENABLED {
                            obs.observe(Metric::McRecoveryNanos, nanos);
                        }
                        eprintln!(
                            "dift-multicore: recovered epoch {e} on spare shard {spare} ({})",
                            reason(e)
                        );
                        summaries[e] = Some(sum);
                        rs.spare_recovered += 1;
                    }
                }
            }
            lost.retain(|&e| summaries[e].is_none());
        }

        // Graceful degradation: whatever is still missing is summarized
        // inline on the main thread — the serial DIFT path, which cannot
        // fail — so the run always completes.
        for &e in &lost {
            let start = Instant::now();
            let sum = resummarize::<T>(&retained[e], helper_policy, false);
            if R::ENABLED {
                obs.observe(Metric::McRecoveryNanos, start.elapsed().as_nanos() as u64);
            }
            eprintln!(
                "dift-multicore: recovered epoch {e} inline on the main thread ({})",
                reason(e)
            );
            summaries[e] = Some(sum);
            rs.degraded_epochs += 1;
        }
        rs.epochs_recovered = rs.epochs_lost;
    }

    if R::ENABLED {
        obs.add(Metric::McFaultsInjected, rs.faults_injected);
        obs.add(Metric::McEpochsLost, rs.epochs_lost);
        obs.add(Metric::McEpochsRecovered, rs.epochs_recovered);
        obs.add(Metric::McRecoveryRetries, rs.retries);
        obs.add(Metric::McDegradedEpochs, rs.degraded_epochs);
        obs.add(Metric::McShardsLost, rs.shards_lost);
    }

    // Composition: summaries splice in epoch order; the result is
    // bit-identical to serial processing (see DESIGN.md §9 and §11).
    let mut engine = TaintEngine::<T>::new(helper_policy);
    engine.pre_size(mem_words);
    obs.timed(Metric::McComposeNanos, || {
        for (e, s) in summaries.iter().enumerate() {
            // Invariant: with recovery enabled every slot was filled
            // above (degradation cannot fail); in fail-stop mode any
            // loss already aborted. A hole here is a runner bug.
            let s = s.as_ref().unwrap_or_else(|| {
                panic!("epoch {e} has no summary and no recovery path claimed it")
            });
            engine.apply_summary(s);
        }
    });

    let epochs = total as u64;
    if R::ENABLED {
        obs.add(Metric::McEpochs, epochs);
    }
    let compose_cycles = model.compose_per_epoch * epochs;
    let main_cycles = result.cycles;
    let stats = MulticoreStats {
        main_cycles,
        helper_busy: off.queues.helper_busy(),
        stall_cycles: off.queues.stall_cycles(),
        messages: off.queues.messages(),
        batches: off.batches,
        // The composition pass is the sequential barrier after both the
        // main core and the slowest shard finish; recovered epochs are
        // helper work re-done after the barrier, charged at the helper's
        // per-message rate (exactly 0 when nothing was lost).
        completion_cycles: main_cycles.max(off.queues.max_helper_clock())
            + compose_cycles
            + recovered_records * model.chan.helper_per_msg,
        workers: model.workers,
        epochs,
        compose_cycles,
        recovery: rs,
    };
    (DiftRun { engine, result, stats }, obs)
}

/// Epoch-parallel propagation over a pre-captured effects stream: the
/// wall-clock scaling primitive (no VM in the loop, no timing model).
/// `workers` scoped threads claim epochs from a shared counter,
/// summarize them concurrently, and the caller's thread composes the
/// summaries in order. Bit-identical to serially `process`ing `stream`.
pub fn epoch_process_stream<T: TaintLabel + Send + Sync>(
    stream: &[StepEffects],
    policy: TaintPolicy,
    mem_words: usize,
    epoch_len: usize,
    workers: usize,
) -> TaintEngine<T> {
    epoch_process_stream_tolerant(stream, policy, mem_words, epoch_len, workers, NoopFaults).0
}

/// [`epoch_process_stream`] with a [`FaultPlan`] adversary. Worker
/// panics are caught per epoch, a wedged worker stops claiming epochs
/// (the rest pick up its share), and any epoch whose summary is missing
/// or fails the record-count check is re-summarized inline during
/// composition — so the result is always bit-identical to serial
/// processing. Recovery here is inline-only (`retries` stays 0): the
/// claiming loop *is* the spare-shard pool.
pub fn epoch_process_stream_tolerant<T: TaintLabel + Send + Sync, F: FaultPlan>(
    stream: &[StepEffects],
    policy: TaintPolicy,
    mem_words: usize,
    epoch_len: usize,
    workers: usize,
    faults: F,
) -> (TaintEngine<T>, RecoveryStats) {
    assert!(epoch_len >= 1, "epochs must be non-empty");
    assert!(workers >= 1, "at least one worker");
    let chunks: Vec<&[StepEffects]> = stream.chunks(epoch_len).collect();
    // Sequential pre-scan: per-channel I/O counts at each epoch start
    // (label-independent, so it does not limit scaling).
    let mut bases = Vec::with_capacity(chunks.len());
    let mut base = IoBase::default();
    for c in &chunks {
        bases.push(base.clone());
        base.advance(c);
    }

    let summaries: Vec<OnceLock<EpochSummary<T>>> =
        chunks.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let fired = AtomicU64::new(0);
    thread::scope(|s| {
        let chunks = &chunks;
        let bases = &bases;
        let summaries = &summaries;
        let next = &next;
        let fired = &fired;
        for w in 0..workers {
            let faults = faults.clone();
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks.len() {
                    break;
                }
                if F::ARMED && faults.fires(FaultSite::QueueStall, w, i) {
                    // A wedged worker stops claiming; the other workers
                    // (or inline recovery) absorb the rest of the stream.
                    fired.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if F::ARMED && faults.fires(FaultSite::DropMessage, w, i) {
                    // The epoch's records never reach the worker.
                    fired.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let res = catch_unwind(AssertUnwindSafe(|| {
                    if F::ARMED && faults.fires(FaultSite::ShardPanic, w, i) {
                        fired.fetch_add(1, Ordering::Relaxed);
                        panic_any(format!("{INJECTED_PANIC_MARKER} scripted worker panic"));
                    }
                    if F::ARMED && faults.fires(FaultSite::CorruptSummary, w, i) {
                        fired.fetch_add(1, Ordering::Relaxed);
                        summarize_epoch::<T>(&chunks[i][1..], policy, &bases[i])
                    } else {
                        summarize_epoch::<T>(chunks[i], policy, &bases[i])
                    }
                }));
                if let Ok(sum) = res {
                    let _ = summaries[i].set(sum);
                }
            });
        }
    });

    let mut rs = RecoveryStats {
        faults_injected: fired.load(Ordering::Relaxed),
        ..RecoveryStats::default()
    };
    let mut engine = TaintEngine::<T>::new(policy);
    engine.pre_size(mem_words);
    for (i, slot) in summaries.into_iter().enumerate() {
        // An epoch survives only if its summary exists and saw exactly
        // the epoch's records (the corruption/partial-delivery check).
        let valid = slot.into_inner().filter(|s| s.instrs() == chunks[i].len() as u64);
        let sum = match valid {
            Some(sum) => sum,
            None => {
                rs.epochs_lost += 1;
                rs.degraded_epochs += 1;
                rs.epochs_recovered += 1;
                summarize_epoch::<T>(chunks[i], policy, &bases[i])
            }
        };
        engine.apply_summary(&sum);
    }
    (engine, rs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::{silence_injected_panics, ScriptedFaults};
    use crate::helper::{run_helper_dift, run_inline_dift};
    use dift_isa::{BinOp, BranchCond, Program, ProgramBuilder, Reg};
    use dift_taint::{BitTaint, PcTaint};
    use dift_vm::MachineConfig;
    use std::sync::Arc;

    fn taint_workload() -> (Arc<Program>, Vec<u64>) {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 0);
        b.li(Reg(3), 500);
        b.label("loop");
        b.add(Reg(2), Reg(2), Reg(1));
        b.bini(BinOp::Rem, Reg(4), Reg(2), 97);
        b.li(Reg(5), 300);
        b.store(Reg(4), Reg(5), 0);
        b.load(Reg(6), Reg(5), 0);
        b.bini(BinOp::Sub, Reg(3), Reg(3), 1);
        b.branch(BranchCond::Ne, Reg(3), Reg(0), "loop");
        b.output(Reg(2), 0);
        b.halt();
        (Arc::new(b.build().unwrap()), vec![7])
    }

    fn machine(p: &Arc<Program>, inputs: &[u64]) -> Machine {
        let mut m = Machine::new(p.clone(), MachineConfig::small());
        m.feed_input(0, inputs);
        m
    }

    fn small_model(workers: usize) -> EpochModel {
        // Short epochs so even the test workload spans many of them.
        let mut m = EpochModel::software(workers);
        m.epoch_len = 256;
        m.compose_per_epoch = 64;
        m
    }

    #[test]
    fn epoch_runner_matches_inline_at_every_width() {
        let (p, inputs) = taint_workload();
        let inline =
            run_inline_dift::<BitTaint>(machine(&p, &inputs), TaintPolicy::propagate_only());
        for workers in [1, 2, 3, 4] {
            let run = run_epoch_dift::<BitTaint>(
                machine(&p, &inputs),
                small_model(workers),
                TaintPolicy::propagate_only(),
            );
            assert_eq!(run.engine.output_labels, inline.engine.output_labels);
            assert_eq!(run.engine.alerts, inline.engine.alerts);
            assert_eq!(run.engine.tainted_words(), inline.engine.tainted_words());
            assert_eq!(run.engine.stats(), inline.engine.stats(), "workers={workers}");
            assert!(run.stats.epochs > 1, "workload must span multiple epochs");
            assert_eq!(run.stats.workers, workers);
            assert!(!run.stats.recovery.eventful(), "fault-free run must be uneventful");
        }
    }

    #[test]
    fn epoch_runner_detects_attacks_like_the_single_helper() {
        // PC-taint attack detection across the fan-out (§3.3 + §2.1):
        // alerts, origins and the root-cause PC must survive epoch
        // composition even when the detection epoch differs from the
        // taint-introduction epoch.
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.addi(Reg(2), Reg(1), 100); // tainted address, last writer
                                     // Pad so the alerting store lands in a later epoch.
        for _ in 0..40 {
            b.addi(Reg(6), Reg(6), 1);
        }
        b.li(Reg(3), 1);
        b.store(Reg(3), Reg(2), 0); // alert: tainted store address
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let single = run_helper_dift::<PcTaint>(
            machine(&p, &[4]),
            ChannelModel::hardware(),
            TaintPolicy::default(),
        );
        let mut model = small_model(3);
        model.epoch_len = 16;
        let fanned = run_epoch_dift::<PcTaint>(machine(&p, &[4]), model, TaintPolicy::default());
        assert_eq!(fanned.engine.alerts, single.engine.alerts);
        assert_eq!(fanned.engine.alerts.len(), 1);
        assert_eq!(fanned.engine.alerts[0].label.pc(), Some(1), "addi is the last writer");
        assert!(fanned.stats.epochs >= 3);
    }

    #[test]
    fn epoch_runner_handles_spawned_threads() {
        // Tainted data crosses threads through shared memory; the
        // summarizer's per-tid register files and the composition must
        // reproduce the interleaved serial result exactly.
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 700);
        b.store(Reg(1), Reg(2), 0); // mem[700] tainted
        b.spawn(Reg(5), "w", Reg(1));
        b.spawn(Reg(6), "w", Reg(1));
        b.join(Reg(5));
        b.join(Reg(6));
        b.load(Reg(3), Reg(2), 0);
        b.output(Reg(3), 0);
        b.halt();
        b.func("w");
        b.li(Reg(1), 700);
        b.li(Reg(2), 12);
        b.label("loop");
        b.load(Reg(3), Reg(1), 0);
        b.addi(Reg(3), Reg(3), 1);
        b.store(Reg(3), Reg(1), 0);
        b.bini(BinOp::Sub, Reg(2), Reg(2), 1);
        b.branch(BranchCond::Ne, Reg(2), Reg(0), "loop");
        b.halt();
        let p = Arc::new(b.build().unwrap());

        let mk = || {
            let mut m = Machine::new(p.clone(), MachineConfig::small().with_quantum(3));
            m.feed_input(0, &[9]);
            m
        };
        let inline = run_inline_dift::<BitTaint>(mk(), TaintPolicy::propagate_only());
        assert!(!inline.engine.output_labels[0].2.is_clean(), "taint crosses threads");
        let mut model = small_model(2);
        model.epoch_len = 8;
        let fanned = run_epoch_dift::<BitTaint>(mk(), model, TaintPolicy::propagate_only());
        assert_eq!(fanned.engine.output_labels, inline.engine.output_labels);
        assert_eq!(fanned.engine.tainted_words(), inline.engine.tainted_words());
        assert_eq!(fanned.engine.stats(), inline.engine.stats());
    }

    /// A helper-bound model: the shard needs far longer per message than
    /// the producer takes per instruction, and each shard's queue holds a
    /// full epoch so fan-out can overlap shard drains.
    fn helper_bound_model(workers: usize) -> EpochModel {
        EpochModel {
            chan: ChannelModel { enqueue_cycles: 2, helper_per_msg: 9, queue_depth: 128 },
            workers,
            epoch_len: 128,
            fanout_cycles: 1,
            compose_per_epoch: 32,
        }
    }

    #[test]
    fn modeled_completion_improves_with_more_shards() {
        let (p, inputs) = taint_workload();
        let c1 = run_epoch_dift::<BitTaint>(
            machine(&p, &inputs),
            helper_bound_model(1),
            TaintPolicy::propagate_only(),
        )
        .stats;
        let c4 = run_epoch_dift::<BitTaint>(
            machine(&p, &inputs),
            helper_bound_model(4),
            TaintPolicy::propagate_only(),
        )
        .stats;
        assert!(
            c1.stall_cycles > 0,
            "one shard must be the bottleneck for the comparison to mean anything"
        );
        assert!(
            c4.completion_cycles < c1.completion_cycles,
            "4 shards must beat 1: {} vs {}",
            c4.completion_cycles,
            c1.completion_cycles
        );
        assert_eq!(c1.messages, c4.messages, "same modeled traffic");
        assert!(c4.stall_cycles < c1.stall_cycles, "fan-out relieves backpressure");
    }

    #[test]
    fn modeled_stats_are_deterministic() {
        let (p, inputs) = taint_workload();
        let a = run_epoch_dift::<BitTaint>(
            machine(&p, &inputs),
            small_model(3),
            TaintPolicy::propagate_only(),
        )
        .stats;
        let b = run_epoch_dift::<BitTaint>(
            machine(&p, &inputs),
            small_model(3),
            TaintPolicy::propagate_only(),
        )
        .stats;
        assert_eq!(a.main_cycles, b.main_cycles);
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.stall_cycles, b.stall_cycles);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.compose_cycles, b.compose_cycles);
    }

    #[test]
    fn stream_parallel_path_matches_serial_processing() {
        use dift_dbi::Tool;
        let (p, inputs) = taint_workload();
        let m = machine(&p, &inputs);
        let mem_words = m.mem_words();
        #[derive(Default)]
        struct Cap(Vec<StepEffects>);
        impl Tool for Cap {
            fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
                self.0.push(fx.clone());
            }
        }
        let mut cap = Cap::default();
        Engine::new(m).run_tool(&mut cap);

        let policy = TaintPolicy::propagate_only();
        let mut serial = TaintEngine::<PcTaint>::new(policy);
        serial.pre_size(mem_words);
        for fx in &cap.0 {
            serial.process(fx);
        }
        for workers in [1, 4] {
            let par = epoch_process_stream::<PcTaint>(&cap.0, policy, mem_words, 64, workers);
            assert_eq!(par.output_labels, serial.output_labels, "workers={workers}");
            assert_eq!(par.tainted_words(), serial.tainted_words());
            assert_eq!(par.stats(), serial.stats());
        }
    }

    // ---- resilience -----------------------------------------------------

    fn assert_matches_inline<T: TaintLabel>(run: &DiftRun<T>, inline: &DiftRun<T>, what: &str) {
        assert_eq!(run.engine.output_labels, inline.engine.output_labels, "{what}: labels");
        assert_eq!(run.engine.alerts, inline.engine.alerts, "{what}: alerts");
        assert_eq!(run.engine.tainted_words(), inline.engine.tainted_words(), "{what}: shadow");
        assert_eq!(run.engine.stats(), inline.engine.stats(), "{what}: peak stats");
    }

    #[test]
    fn every_single_fault_is_recovered_bit_identically() {
        silence_injected_panics();
        let (p, inputs) = taint_workload();
        let inline = run_inline_dift::<PcTaint>(machine(&p, &inputs), TaintPolicy::default());
        for site in FaultSite::ALL {
            for shard in 0..2 {
                // Epoch e is steered to shard e % workers, so injecting
                // at epoch == shard guarantees the coordinate is hit.
                let plan = ScriptedFaults::single(site, shard, shard);
                let (run, _) = run_epoch_dift_tolerant::<PcTaint, _, _>(
                    machine(&p, &inputs),
                    small_model(3),
                    TaintPolicy::default(),
                    NoopRecorder,
                    plan,
                    RecoveryPolicy::quick(),
                );
                let what = format!("{site:?} at shard {shard}");
                assert_matches_inline(&run, &inline, &what);
                let rs = run.stats.recovery;
                assert!(rs.faults_injected >= 1, "{what}: fault must fire, got {rs:?}");
                assert!(rs.epochs_recovered >= 1, "{what}: must recover, got {rs:?}");
                assert_eq!(rs.epochs_recovered, rs.epochs_lost, "{what}: {rs:?}");
                if site == FaultSite::QueueStall {
                    assert!(rs.shards_lost >= 1, "{what}: stall must cost the shard: {rs:?}");
                }
            }
        }
    }

    #[test]
    fn spare_shard_retry_recovers_before_degrading() {
        silence_injected_panics();
        let (p, inputs) = taint_workload();
        let inline =
            run_inline_dift::<BitTaint>(machine(&p, &inputs), TaintPolicy::propagate_only());
        let plan = ScriptedFaults::single(FaultSite::ShardPanic, 1, 1);
        let (run, _) = run_epoch_dift_tolerant::<BitTaint, _, _>(
            machine(&p, &inputs),
            small_model(3),
            TaintPolicy::propagate_only(),
            NoopRecorder,
            plan,
            RecoveryPolicy::quick(),
        );
        assert_matches_inline(&run, &inline, "spare retry");
        let rs = run.stats.recovery;
        assert_eq!(rs.spare_recovered, 1, "the spare shard should win: {rs:?}");
        assert_eq!(rs.degraded_epochs, 0, "no degradation needed: {rs:?}");
        assert_eq!(rs.retries, 1, "{rs:?}");
    }

    #[test]
    fn exhausted_retries_degrade_to_inline_and_still_match() {
        silence_injected_panics();
        let (p, inputs) = taint_workload();
        let inline =
            run_inline_dift::<BitTaint>(machine(&p, &inputs), TaintPolicy::propagate_only());
        // Kill epoch 1 on its home shard AND on the spare (shard index
        // workers + round = 3 + 0), so the single retry round fails and
        // the runner must degrade to the main thread.
        let plan = ScriptedFaults::new(vec![
            crate::faultplan::Injection { site: FaultSite::ShardPanic, shard: 1, epoch: 1 },
            crate::faultplan::Injection { site: FaultSite::ShardPanic, shard: 3, epoch: 1 },
        ]);
        let (run, _) = run_epoch_dift_tolerant::<BitTaint, _, _>(
            machine(&p, &inputs),
            small_model(3),
            TaintPolicy::propagate_only(),
            NoopRecorder,
            plan,
            RecoveryPolicy::quick(),
        );
        assert_matches_inline(&run, &inline, "degraded");
        let rs = run.stats.recovery;
        assert_eq!(rs.degraded_epochs, 1, "{rs:?}");
        assert_eq!(rs.spare_recovered, 0, "{rs:?}");
        assert!(rs.retries >= 1, "{rs:?}");
        assert_eq!(rs.faults_injected, 2, "{rs:?}");
    }

    #[test]
    fn fail_stop_panic_names_shard_and_epoch() {
        silence_injected_panics();
        let (p, inputs) = taint_workload();
        let plan = ScriptedFaults::single(FaultSite::ShardPanic, 2, 2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_epoch_dift_tolerant::<BitTaint, _, _>(
                machine(&p, &inputs),
                small_model(3),
                TaintPolicy::propagate_only(),
                NoopRecorder,
                plan,
                RecoveryPolicy::fail_stop(),
            )
        }));
        let msg = panic_message(caught.err().expect("fail-stop must abort"));
        assert!(
            msg.contains("shard 2") && msg.contains("epoch 2"),
            "diagnostic must name the shard and epoch, got: {msg}"
        );
        assert!(msg.contains(INJECTED_PANIC_MARKER), "original payload preserved: {msg}");
    }

    #[test]
    fn zero_fault_tolerant_run_matches_fail_stop_exactly() {
        let (p, inputs) = taint_workload();
        let base = run_epoch_dift::<BitTaint>(
            machine(&p, &inputs),
            small_model(3),
            TaintPolicy::propagate_only(),
        );
        let (tol, _) = run_epoch_dift_tolerant::<BitTaint, _, _>(
            machine(&p, &inputs),
            small_model(3),
            TaintPolicy::propagate_only(),
            NoopRecorder,
            NoopFaults,
            RecoveryPolicy::tolerant(),
        );
        assert_eq!(tol.engine.output_labels, base.engine.output_labels);
        assert_eq!(tol.engine.stats(), base.engine.stats());
        // The tolerance machinery must not perturb the timing model.
        assert_eq!(tol.stats.completion_cycles, base.stats.completion_cycles);
        assert_eq!(tol.stats.main_cycles, base.stats.main_cycles);
        assert_eq!(tol.stats.stall_cycles, base.stats.stall_cycles);
        assert!(!tol.stats.recovery.eventful());
    }

    #[test]
    fn stream_tolerant_recovers_every_site() {
        silence_injected_panics();
        use dift_dbi::Tool;
        let (p, inputs) = taint_workload();
        let m = machine(&p, &inputs);
        let mem_words = m.mem_words();
        #[derive(Default)]
        struct Cap(Vec<StepEffects>);
        impl Tool for Cap {
            fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
                self.0.push(fx.clone());
            }
        }
        let mut cap = Cap::default();
        Engine::new(m).run_tool(&mut cap);
        let policy = TaintPolicy::propagate_only();
        let serial = epoch_process_stream::<BitTaint>(&cap.0, policy, mem_words, 64, 1);
        for site in FaultSite::ALL {
            // Workers claim epochs dynamically, so any worker may land on
            // epoch 2: inject at every worker index to hit whoever does.
            let plan = ScriptedFaults::new(
                (0..3).map(|w| crate::faultplan::Injection { site, shard: w, epoch: 2 }).collect(),
            );
            let (par, rs) = epoch_process_stream_tolerant::<BitTaint, _>(
                &cap.0, policy, mem_words, 64, 3, plan,
            );
            assert_eq!(par.output_labels, serial.output_labels, "{site:?}");
            assert_eq!(par.tainted_words(), serial.tainted_words(), "{site:?}");
            assert_eq!(par.stats(), serial.stats(), "{site:?}");
            assert!(rs.faults_injected >= 1, "{site:?}: {rs:?}");
            assert!(rs.epochs_recovered >= 1, "{site:?}: {rs:?}");
        }
    }
}
