//! Epoch-parallel DIFT across N helper shards.
//!
//! The single-helper offload ([`crate::helper::run_helper_dift`]) leaves
//! the helper a serial consumer: its clock lower-bounds completion no
//! matter how fast the channel is. This module fans propagation out:
//! the effects stream is split into fixed-size **epochs**, whole epochs
//! are steered round-robin to N shard threads, and each shard computes
//! its epochs' *taint transfer summaries* (`dift_taint::summary`) — the
//! epoch's output labels over symbolic unknown incoming labels, which
//! requires no upstream taint state and therefore no inter-shard
//! coordination. A cheap sequential composition pass then stitches the
//! summaries in epoch order, producing results **bit-identical** to the
//! serial engine: labels, alerts (with origins), output lineage, and
//! exact peak statistics.
//!
//! Two independent views of the same fan-out:
//!
//! * **Real parallelism** — shard threads genuinely run on other cores
//!   ([`run_epoch_dift`] with threads, [`epoch_process_stream`] for a
//!   pre-captured stream), so wall-clock analysis throughput scales
//!   with cores.
//! * **Modeled timing** — [`EpochModel`] extends [`ChannelModel`] with a
//!   fan-out steering cost, per-shard bounded queues
//!   ([`MultiQueueSim`]), and a per-epoch composition charge at the
//!   barrier; reported cycles stay deterministic and host-independent.

use crate::channel::{ChannelModel, MultiQueueSim};
use crate::helper::{join_or_propagate, DiftRun, MulticoreStats, BATCH_SIZE};
use crossbeam::channel as xbeam;
use dift_dbi::{Engine, Tool};
use dift_obs::{Metric, NoopRecorder, Recorder};
use dift_taint::{
    summarize_epoch, EpochSummarizer, EpochSummary, IoBase, TaintEngine, TaintLabel, TaintPolicy,
};
use dift_vm::{Machine, RunResult, StepEffects};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Timing model of the epoch-parallel offload.
#[derive(Clone, Copy, Debug)]
pub struct EpochModel {
    /// The per-shard channel (each shard owns a queue of this shape).
    pub chan: ChannelModel,
    /// Helper shards propagation fans out across.
    pub workers: usize,
    /// Instructions per epoch. Larger epochs amortize composition but
    /// coarsen load balancing.
    pub epoch_len: usize,
    /// Extra main-core cycles per message to steer it to a shard (the
    /// software fan-out pays an extra indirection; dedicated hardware
    /// routes by epoch counter for free).
    pub fanout_cycles: u64,
    /// Cycles of the sequential composition pass charged per epoch at
    /// the barrier (resolving a summary's incoming labels and replaying
    /// its events is proportional to epoch state touched, bounded and
    /// small relative to the epoch itself).
    pub compose_per_epoch: u64,
}

impl EpochModel {
    /// Shared-memory fan-out: software steering pays a cycle per message.
    ///
    /// `epoch_len` equals the per-shard queue depth: a whole epoch is
    /// steered to one shard back-to-back, so the shard's queue must
    /// buffer a full epoch for the producer to race ahead to the next
    /// shard while this one drains — that overlap is where fan-out wins.
    /// A longer epoch than the queue re-serializes the producer on the
    /// current shard no matter how many shards exist.
    pub fn software(workers: usize) -> EpochModel {
        let chan = ChannelModel::software();
        EpochModel {
            chan,
            workers,
            epoch_len: chan.queue_depth,
            fanout_cycles: 1,
            compose_per_epoch: 64,
        }
    }

    /// Hardware fan-out: the interconnect routes by epoch counter.
    pub fn hardware(workers: usize) -> EpochModel {
        let chan = ChannelModel::hardware();
        EpochModel {
            chan,
            workers,
            epoch_len: chan.queue_depth,
            fanout_cycles: 0,
            compose_per_epoch: 64,
        }
    }
}

/// One physical channel send: a batch of records belonging to a single
/// epoch. The first batch of an epoch carries the per-channel I/O counts
/// of the stream prefix (a label-independent fact the producer tracks),
/// which the shard needs to seed global source/output indices.
struct ShardBatch {
    epoch: usize,
    base: Option<IoBase>,
    records: Vec<StepEffects>,
}

/// Tool that splits the effects stream into epochs and ships each epoch
/// to its round-robin shard, charging the fan-out timing model.
struct EpochOffloader<R: Recorder = NoopRecorder> {
    obs: R,
    txs: Vec<Option<xbeam::Sender<ShardBatch>>>,
    batch: Vec<StepEffects>,
    batches: u64,
    queues: MultiQueueSim,
    model: EpochModel,
    /// Steps shipped so far (the epoch counter's numerator).
    seen: u64,
    /// Current epoch (`usize::MAX` until the first step).
    cur_epoch: usize,
    /// Running per-channel I/O counts through the current position.
    running: IoBase,
    /// Snapshot of `running` at the current epoch's start.
    epoch_base: IoBase,
    /// Whether the next flush is the epoch's first (must carry the base).
    need_base: bool,
}

impl<R: Recorder> EpochOffloader<R> {
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let shard = self.cur_epoch % self.txs.len();
        if let Some(tx) = &self.txs[shard] {
            let records = std::mem::replace(&mut self.batch, Vec::with_capacity(BATCH_SIZE));
            let base = self.need_base.then(|| self.epoch_base.clone());
            let _ = tx.send(ShardBatch { epoch: self.cur_epoch, base, records });
            self.need_base = false;
            self.batches += 1;
            if R::ENABLED {
                self.obs.add(Metric::McBatches, 1);
            }
        }
    }
}

impl<R: Recorder> Tool for EpochOffloader<R> {
    fn after(&mut self, m: &mut Machine, fx: &StepEffects) {
        let e = (self.seen / self.model.epoch_len as u64) as usize;
        if e != self.cur_epoch {
            // Epoch boundary: ship the previous epoch's tail before any
            // record of the new one, then snapshot the I/O counts the
            // new epoch's summarizer must be seeded with.
            self.flush();
            self.cur_epoch = e;
            self.epoch_base = self.running.clone();
            self.need_base = true;
        }
        // Producer cost: enqueue + shard steering, plus any stall from
        // *this* epoch's shard queue (other shards never block it).
        m.charge(self.model.chan.enqueue_cycles + self.model.fanout_cycles);
        let shard = self.cur_epoch % self.queues.shards();
        let stall = self.queues.enqueue(shard, m.cycles());
        if stall > 0 {
            m.charge(stall);
        }
        if R::ENABLED {
            self.obs.add(Metric::McMessages, 1);
            self.obs.add(Metric::McStallCycles, stall);
            self.obs.observe(Metric::McQueueDepth, self.queues.depth(shard) as u64);
        }
        self.batch.push(fx.clone());
        if let Some((ch, _)) = fx.input {
            *self.running.inputs.entry(ch).or_insert(0) += 1;
        }
        if let Some((ch, _)) = fx.output {
            *self.running.outputs.entry(ch).or_insert(0) += 1;
        }
        self.seen += 1;
        if self.batch.len() >= BATCH_SIZE || stall > 0 || fx.spawned.is_some() {
            self.flush();
        }
    }

    fn on_finish(&mut self, _m: &mut Machine, _r: &RunResult) {
        self.flush();
    }
}

/// A shard's consumer loop: summarize every epoch steered to it. Epochs
/// arrive in this shard's stream order, so one live summarizer suffices.
/// With `timed` set (a live recorder upstream), each epoch's wall-clock
/// summarization nanos are measured — busy time only, not queue waits —
/// and returned alongside the summaries for the main thread to record.
fn shard_loop<T: TaintLabel>(
    rx: xbeam::Receiver<ShardBatch>,
    policy: TaintPolicy,
    timed: bool,
) -> (Vec<(usize, EpochSummary<T>)>, Vec<u64>) {
    let mut done: Vec<(usize, EpochSummary<T>)> = Vec::new();
    let mut nanos: Vec<u64> = Vec::new();
    let mut cur: Option<(usize, EpochSummarizer<T>)> = None;
    let mut busy = std::time::Duration::ZERO;
    while let Ok(b) = rx.recv() {
        let start = timed.then(std::time::Instant::now);
        let switch = cur.as_ref().is_none_or(|(e, _)| *e != b.epoch);
        if switch {
            if let Some((e, s)) = cur.take() {
                done.push((e, s.finish()));
                if timed {
                    nanos.push(busy.as_nanos() as u64);
                    busy = std::time::Duration::ZERO;
                }
            }
            let base = b.base.as_ref().expect("first batch of an epoch carries its I/O base");
            cur = Some((b.epoch, EpochSummarizer::new(policy, base)));
        }
        let (_, s) = cur.as_mut().expect("summarizer active");
        for fx in &b.records {
            s.step(fx);
        }
        if let Some(start) = start {
            busy += start.elapsed();
        }
    }
    if let Some((e, s)) = cur.take() {
        let start = timed.then(std::time::Instant::now);
        done.push((e, s.finish()));
        if let Some(start) = start {
            busy += start.elapsed();
            nanos.push(busy.as_nanos() as u64);
        }
    }
    (done, nanos)
}

/// Run `machine` with taint propagation fanned out across
/// `model.workers` helper shards, composing epoch summaries into a
/// final engine bit-identical to the serial offload.
pub fn run_epoch_dift<T: TaintLabel + Send + 'static>(
    machine: Machine,
    model: EpochModel,
    policy: TaintPolicy,
) -> DiftRun<T> {
    run_epoch_dift_obs(machine, model, policy, NoopRecorder).0
}

/// [`run_epoch_dift`] with an observability recorder threaded through
/// the offloader (messages, stalls, queue occupancy, batches) and the
/// shard/compose stages (per-shard epoch latency, compose time). The
/// recorder is returned alongside the run so callers can snapshot it;
/// with [`NoopRecorder`] every probe compiles away.
pub fn run_epoch_dift_obs<T: TaintLabel + Send + 'static, R: Recorder>(
    machine: Machine,
    model: EpochModel,
    policy: TaintPolicy,
    obs: R,
) -> (DiftRun<T>, R) {
    assert!(model.workers >= 1, "at least one shard");
    assert!(model.epoch_len >= 1, "epochs must be non-empty");
    let mut helper_policy = policy;
    helper_policy.charge_cycles = false; // the timing model owns the cost
    let mem_words = machine.mem_words();

    // Per-shard channels in batch units, as in the single-helper path.
    let cap = (model.chan.queue_depth / BATCH_SIZE).max(4);
    let mut txs = Vec::with_capacity(model.workers);
    let mut handles = Vec::with_capacity(model.workers);
    for _ in 0..model.workers {
        let (tx, rx) = xbeam::bounded::<ShardBatch>(cap);
        txs.push(Some(tx));
        handles.push(thread::spawn(move || shard_loop::<T>(rx, helper_policy, R::ENABLED)));
    }

    let mut off = EpochOffloader {
        obs,
        txs,
        batch: Vec::with_capacity(BATCH_SIZE),
        batches: 0,
        queues: MultiQueueSim::new(model.chan, model.workers),
        model,
        seen: 0,
        cur_epoch: usize::MAX,
        running: IoBase::default(),
        epoch_base: IoBase::default(),
        need_base: false,
    };
    let mut dbi = Engine::new(machine);
    let result = dbi.run_tool(&mut off);
    off.flush();
    for tx in &mut off.txs {
        tx.take(); // close the channels so shards drain and exit
    }

    let mut obs = off.obs;
    let mut summaries: Vec<(usize, EpochSummary<T>)> = Vec::new();
    for h in handles {
        let (done, nanos) = join_or_propagate(h, "epoch shard thread");
        summaries.extend(done);
        if R::ENABLED {
            for n in nanos {
                obs.observe(Metric::McShardEpochNanos, n);
            }
        }
    }
    // Composition: summaries splice in epoch order; the result is
    // bit-identical to serial processing (see DESIGN.md §9).
    summaries.sort_by_key(|(e, _)| *e);
    let mut engine = TaintEngine::<T>::new(helper_policy);
    engine.pre_size(mem_words);
    obs.timed(Metric::McComposeNanos, || {
        for (_, s) in &summaries {
            engine.apply_summary(s);
        }
    });

    let epochs = summaries.len() as u64;
    if R::ENABLED {
        obs.add(Metric::McEpochs, epochs);
    }
    let compose_cycles = model.compose_per_epoch * epochs;
    let main_cycles = result.cycles;
    let stats = MulticoreStats {
        main_cycles,
        helper_busy: off.queues.helper_busy(),
        stall_cycles: off.queues.stall_cycles(),
        messages: off.queues.messages(),
        batches: off.batches,
        // The composition pass is the sequential barrier after both the
        // main core and the slowest shard finish.
        completion_cycles: main_cycles.max(off.queues.max_helper_clock()) + compose_cycles,
        workers: model.workers,
        epochs,
        compose_cycles,
    };
    (DiftRun { engine, result, stats }, obs)
}

/// Epoch-parallel propagation over a pre-captured effects stream: the
/// wall-clock scaling primitive (no VM in the loop, no timing model).
/// `workers` scoped threads claim epochs from a shared counter,
/// summarize them concurrently, and the caller's thread composes the
/// summaries in order. Bit-identical to serially `process`ing `stream`.
pub fn epoch_process_stream<T: TaintLabel + Send + Sync>(
    stream: &[StepEffects],
    policy: TaintPolicy,
    mem_words: usize,
    epoch_len: usize,
    workers: usize,
) -> TaintEngine<T> {
    assert!(epoch_len >= 1, "epochs must be non-empty");
    assert!(workers >= 1, "at least one worker");
    let chunks: Vec<&[StepEffects]> = stream.chunks(epoch_len).collect();
    // Sequential pre-scan: per-channel I/O counts at each epoch start
    // (label-independent, so it does not limit scaling).
    let mut bases = Vec::with_capacity(chunks.len());
    let mut base = IoBase::default();
    for c in &chunks {
        bases.push(base.clone());
        base.advance(c);
    }

    let summaries: Vec<OnceLock<EpochSummary<T>>> =
        chunks.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks.len() {
                    break;
                }
                let sum = summarize_epoch::<T>(chunks[i], policy, &bases[i]);
                let _ = summaries[i].set(sum);
            });
        }
    });

    let mut engine = TaintEngine::<T>::new(policy);
    engine.pre_size(mem_words);
    for s in &summaries {
        engine.apply_summary(s.get().expect("every epoch summarized"));
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helper::{run_helper_dift, run_inline_dift};
    use dift_isa::{BinOp, BranchCond, Program, ProgramBuilder, Reg};
    use dift_taint::{BitTaint, PcTaint};
    use dift_vm::MachineConfig;
    use std::sync::Arc;

    fn taint_workload() -> (Arc<Program>, Vec<u64>) {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 0);
        b.li(Reg(3), 500);
        b.label("loop");
        b.add(Reg(2), Reg(2), Reg(1));
        b.bini(BinOp::Rem, Reg(4), Reg(2), 97);
        b.li(Reg(5), 300);
        b.store(Reg(4), Reg(5), 0);
        b.load(Reg(6), Reg(5), 0);
        b.bini(BinOp::Sub, Reg(3), Reg(3), 1);
        b.branch(BranchCond::Ne, Reg(3), Reg(0), "loop");
        b.output(Reg(2), 0);
        b.halt();
        (Arc::new(b.build().unwrap()), vec![7])
    }

    fn machine(p: &Arc<Program>, inputs: &[u64]) -> Machine {
        let mut m = Machine::new(p.clone(), MachineConfig::small());
        m.feed_input(0, inputs);
        m
    }

    fn small_model(workers: usize) -> EpochModel {
        // Short epochs so even the test workload spans many of them.
        let mut m = EpochModel::software(workers);
        m.epoch_len = 256;
        m.compose_per_epoch = 64;
        m
    }

    #[test]
    fn epoch_runner_matches_inline_at_every_width() {
        let (p, inputs) = taint_workload();
        let inline =
            run_inline_dift::<BitTaint>(machine(&p, &inputs), TaintPolicy::propagate_only());
        for workers in [1, 2, 3, 4] {
            let run = run_epoch_dift::<BitTaint>(
                machine(&p, &inputs),
                small_model(workers),
                TaintPolicy::propagate_only(),
            );
            assert_eq!(run.engine.output_labels, inline.engine.output_labels);
            assert_eq!(run.engine.alerts, inline.engine.alerts);
            assert_eq!(run.engine.tainted_words(), inline.engine.tainted_words());
            assert_eq!(run.engine.stats(), inline.engine.stats(), "workers={workers}");
            assert!(run.stats.epochs > 1, "workload must span multiple epochs");
            assert_eq!(run.stats.workers, workers);
        }
    }

    #[test]
    fn epoch_runner_detects_attacks_like_the_single_helper() {
        // PC-taint attack detection across the fan-out (§3.3 + §2.1):
        // alerts, origins and the root-cause PC must survive epoch
        // composition even when the detection epoch differs from the
        // taint-introduction epoch.
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.addi(Reg(2), Reg(1), 100); // tainted address, last writer
                                     // Pad so the alerting store lands in a later epoch.
        for _ in 0..40 {
            b.addi(Reg(6), Reg(6), 1);
        }
        b.li(Reg(3), 1);
        b.store(Reg(3), Reg(2), 0); // alert: tainted store address
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let single = run_helper_dift::<PcTaint>(
            machine(&p, &[4]),
            ChannelModel::hardware(),
            TaintPolicy::default(),
        );
        let mut model = small_model(3);
        model.epoch_len = 16;
        let fanned = run_epoch_dift::<PcTaint>(machine(&p, &[4]), model, TaintPolicy::default());
        assert_eq!(fanned.engine.alerts, single.engine.alerts);
        assert_eq!(fanned.engine.alerts.len(), 1);
        assert_eq!(fanned.engine.alerts[0].label.pc(), Some(1), "addi is the last writer");
        assert!(fanned.stats.epochs >= 3);
    }

    #[test]
    fn epoch_runner_handles_spawned_threads() {
        // Tainted data crosses threads through shared memory; the
        // summarizer's per-tid register files and the composition must
        // reproduce the interleaved serial result exactly.
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 700);
        b.store(Reg(1), Reg(2), 0); // mem[700] tainted
        b.spawn(Reg(5), "w", Reg(1));
        b.spawn(Reg(6), "w", Reg(1));
        b.join(Reg(5));
        b.join(Reg(6));
        b.load(Reg(3), Reg(2), 0);
        b.output(Reg(3), 0);
        b.halt();
        b.func("w");
        b.li(Reg(1), 700);
        b.li(Reg(2), 12);
        b.label("loop");
        b.load(Reg(3), Reg(1), 0);
        b.addi(Reg(3), Reg(3), 1);
        b.store(Reg(3), Reg(1), 0);
        b.bini(BinOp::Sub, Reg(2), Reg(2), 1);
        b.branch(BranchCond::Ne, Reg(2), Reg(0), "loop");
        b.halt();
        let p = Arc::new(b.build().unwrap());

        let mk = || {
            let mut m = Machine::new(p.clone(), MachineConfig::small().with_quantum(3));
            m.feed_input(0, &[9]);
            m
        };
        let inline = run_inline_dift::<BitTaint>(mk(), TaintPolicy::propagate_only());
        assert!(!inline.engine.output_labels[0].2.is_clean(), "taint crosses threads");
        let mut model = small_model(2);
        model.epoch_len = 8;
        let fanned = run_epoch_dift::<BitTaint>(mk(), model, TaintPolicy::propagate_only());
        assert_eq!(fanned.engine.output_labels, inline.engine.output_labels);
        assert_eq!(fanned.engine.tainted_words(), inline.engine.tainted_words());
        assert_eq!(fanned.engine.stats(), inline.engine.stats());
    }

    /// A helper-bound model: the shard needs far longer per message than
    /// the producer takes per instruction, and each shard's queue holds a
    /// full epoch so fan-out can overlap shard drains.
    fn helper_bound_model(workers: usize) -> EpochModel {
        EpochModel {
            chan: ChannelModel { enqueue_cycles: 2, helper_per_msg: 9, queue_depth: 128 },
            workers,
            epoch_len: 128,
            fanout_cycles: 1,
            compose_per_epoch: 32,
        }
    }

    #[test]
    fn modeled_completion_improves_with_more_shards() {
        let (p, inputs) = taint_workload();
        let c1 = run_epoch_dift::<BitTaint>(
            machine(&p, &inputs),
            helper_bound_model(1),
            TaintPolicy::propagate_only(),
        )
        .stats;
        let c4 = run_epoch_dift::<BitTaint>(
            machine(&p, &inputs),
            helper_bound_model(4),
            TaintPolicy::propagate_only(),
        )
        .stats;
        assert!(
            c1.stall_cycles > 0,
            "one shard must be the bottleneck for the comparison to mean anything"
        );
        assert!(
            c4.completion_cycles < c1.completion_cycles,
            "4 shards must beat 1: {} vs {}",
            c4.completion_cycles,
            c1.completion_cycles
        );
        assert_eq!(c1.messages, c4.messages, "same modeled traffic");
        assert!(c4.stall_cycles < c1.stall_cycles, "fan-out relieves backpressure");
    }

    #[test]
    fn modeled_stats_are_deterministic() {
        let (p, inputs) = taint_workload();
        let a = run_epoch_dift::<BitTaint>(
            machine(&p, &inputs),
            small_model(3),
            TaintPolicy::propagate_only(),
        )
        .stats;
        let b = run_epoch_dift::<BitTaint>(
            machine(&p, &inputs),
            small_model(3),
            TaintPolicy::propagate_only(),
        )
        .stats;
        assert_eq!(a.main_cycles, b.main_cycles);
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.stall_cycles, b.stall_cycles);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.compose_cycles, b.compose_cycles);
    }

    #[test]
    fn stream_parallel_path_matches_serial_processing() {
        use dift_dbi::Tool;
        let (p, inputs) = taint_workload();
        let m = machine(&p, &inputs);
        let mem_words = m.mem_words();
        #[derive(Default)]
        struct Cap(Vec<StepEffects>);
        impl Tool for Cap {
            fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
                self.0.push(fx.clone());
            }
        }
        let mut cap = Cap::default();
        Engine::new(m).run_tool(&mut cap);

        let policy = TaintPolicy::propagate_only();
        let mut serial = TaintEngine::<PcTaint>::new(policy);
        serial.pre_size(mem_words);
        for fx in &cap.0 {
            serial.process(fx);
        }
        for workers in [1, 4] {
            let par = epoch_process_stream::<PcTaint>(&cap.0, policy, mem_words, 64, workers);
            assert_eq!(par.output_labels, serial.output_labels, "workers={workers}");
            assert_eq!(par.tainted_words(), serial.tainted_words());
            assert_eq!(par.stats(), serial.stats());
        }
    }
}
