//! The helper-thread DIFT runner.

use crate::channel::{ChannelModel, QueueSim};
use crate::resilience::RecoveryStats;
use crossbeam::channel as xbeam;
use dift_dbi::{Engine, Tool};
use dift_taint::{TaintEngine, TaintLabel, TaintPolicy};
use dift_vm::{Machine, RunResult, StepEffects};
use std::thread;

/// Outcome of a DIFT run (inline or offloaded).
pub struct DiftRun<T: TaintLabel> {
    /// The taint engine with its final shadow state and alerts.
    pub engine: TaintEngine<T>,
    pub result: RunResult,
    pub stats: MulticoreStats,
}

/// Timing breakdown of an offloaded run.
#[derive(Clone, Debug, Default)]
pub struct MulticoreStats {
    /// Main-core cycles (application + enqueue + stalls).
    pub main_cycles: u64,
    /// Helper-core busy cycles.
    pub helper_busy: u64,
    /// Producer stalls caused by a full queue.
    pub stall_cycles: u64,
    /// Messages shipped main→helper (modeled per-instruction cost; the
    /// timing model is unchanged by batching).
    pub messages: u64,
    /// Physical channel sends: messages travel in fixed-size batches, so
    /// this is ≤ `messages`. Purely an implementation statistic — no
    /// modeled cycles attach to it.
    pub batches: u64,
    /// End-to-end completion: main finish vs helper drain, whichever is
    /// later.
    pub completion_cycles: u64,
    /// Helper shards the propagation work fanned out across (0 for the
    /// inline baseline, 1 for the single-helper offload).
    pub workers: usize,
    /// Epochs the stream was split into (0 when not epoch-parallel).
    pub epochs: u64,
    /// Modeled cycles of the sequential composition pass stitching epoch
    /// summaries (0 when not epoch-parallel).
    pub compose_cycles: u64,
    /// What the fault-tolerance machinery did (all zeros on a fault-free
    /// run, and always for the inline and single-helper paths).
    pub recovery: RecoveryStats,
}

impl MulticoreStats {
    /// Main-thread overhead factor relative to a native run.
    pub fn overhead_vs(&self, native_cycles: u64) -> f64 {
        if native_cycles == 0 {
            0.0
        } else {
            self.completion_cycles as f64 / native_cycles as f64
        }
    }
}

/// Instruction records per physical channel send. The *modeled* cost
/// stays per-message (`ChannelModel::enqueue_cycles` each instruction),
/// so batching changes real-channel traffic only — reported overheads
/// (the paper's ≈48 % hardware preset) are bit-identical to per-message
/// shipping.
pub const BATCH_SIZE: usize = 64;

/// Tool that ships every instruction record to the helper thread and
/// accounts the communication in the timing model. Records accumulate
/// in a fixed-size batch and flush when it fills, when the modeled
/// queue reports pressure (a stall), on thread forks, and at finish —
/// amortizing real channel synchronization across `BATCH_SIZE` steps.
struct Offloader<T: TaintLabel> {
    tx: Option<xbeam::Sender<Vec<StepEffects>>>,
    batch: Vec<StepEffects>,
    batches: u64,
    queue: QueueSim,
    model: ChannelModel,
    _marker: std::marker::PhantomData<T>,
}

impl<T: TaintLabel> Offloader<T> {
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        if let Some(tx) = &self.tx {
            let full = std::mem::replace(&mut self.batch, Vec::with_capacity(BATCH_SIZE));
            // The helper genuinely runs on another core.
            let _ = tx.send(full);
            self.batches += 1;
        }
    }
}

impl<T: TaintLabel> Tool for Offloader<T> {
    fn after(&mut self, m: &mut Machine, fx: &StepEffects) {
        // Producer cost: the enqueue itself plus any stall for a full
        // queue, charged to the main core's clock. Modeled per message,
        // exactly as before batching.
        m.charge(self.model.enqueue_cycles);
        let stall = self.queue.enqueue(m.cycles());
        if stall > 0 {
            m.charge(stall);
        }
        self.batch.push(fx.clone());
        // Queue pressure or a fork means the helper should see the
        // backlog now; otherwise wait for a full batch.
        if self.batch.len() >= BATCH_SIZE || stall > 0 || fx.spawned.is_some() {
            self.flush();
        }
    }

    fn on_finish(&mut self, _m: &mut Machine, _r: &RunResult) {
        self.flush();
    }
}

/// Run `machine` with taint tracking offloaded to a helper thread over
/// the given channel model.
pub fn run_helper_dift<T: TaintLabel + Send + 'static>(
    machine: Machine,
    model: ChannelModel,
    policy: TaintPolicy,
) -> DiftRun<T> {
    // The channel carries batches now, so its real depth is in batch
    // units; keep at least a few in flight.
    let (tx, rx) = xbeam::bounded::<Vec<StepEffects>>((model.queue_depth / BATCH_SIZE).max(4));
    let mut helper_policy = policy;
    helper_policy.charge_cycles = false; // the timing model owns the cost
    let mem_words = machine.mem_words();
    let handle = thread::spawn(move || {
        let mut engine = TaintEngine::<T>::new(helper_policy);
        engine.pre_size(mem_words);
        while let Ok(batch) = rx.recv() {
            for fx in &batch {
                engine.process(fx);
            }
        }
        engine
    });

    let mut offloader = Offloader::<T> {
        tx: Some(tx),
        batch: Vec::with_capacity(BATCH_SIZE),
        batches: 0,
        queue: QueueSim::new(model),
        model,
        _marker: std::marker::PhantomData,
    };
    let mut dbi = Engine::new(machine);
    let result = dbi.run_tool(&mut offloader);
    // on_finish flushed the tail; close the channel so the helper
    // drains and exits.
    offloader.flush();
    offloader.tx.take();
    let engine = join_or_propagate(handle, "helper DIFT thread");

    let main_cycles = result.cycles;
    let stats = MulticoreStats {
        main_cycles,
        helper_busy: offloader.queue.helper_busy,
        stall_cycles: offloader.queue.stall_cycles,
        messages: offloader.queue.messages,
        batches: offloader.batches,
        completion_cycles: main_cycles.max(offloader.queue.helper_clock),
        workers: 1,
        epochs: 0,
        compose_cycles: 0,
        recovery: RecoveryStats::default(),
    };
    DiftRun { engine, result, stats }
}

/// The human-readable message inside a panic payload (the `Any` box a
/// `join()` error or `catch_unwind` hands back).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Join a worker, re-raising its panic *message* on the caller's thread
/// instead of the opaque `Any` payload a bare `join().expect(..)` shows.
/// A failed differential run then reports the real cause (the helper's
/// assertion text), and no partial state escapes: the handle's result is
/// consumed either way.
pub(crate) fn join_or_propagate<R>(handle: thread::JoinHandle<R>, who: &str) -> R {
    match handle.join() {
        Ok(r) => r,
        Err(payload) => panic!("{who} panicked: {}", panic_message(payload)),
    }
}

/// Baseline: the same taint tracking performed inline on the main core
/// (the single-core software DIFT the paper improves on).
pub fn run_inline_dift<T: TaintLabel>(machine: Machine, policy: TaintPolicy) -> DiftRun<T> {
    let mut engine = TaintEngine::<T>::new(policy);
    let mut dbi = Engine::new(machine);
    let result = dbi.run_tool(&mut engine);
    let stats = MulticoreStats {
        main_cycles: result.cycles,
        completion_cycles: result.cycles,
        messages: 0,
        batches: 0,
        helper_busy: 0,
        stall_cycles: 0,
        workers: 0,
        epochs: 0,
        compose_cycles: 0,
        recovery: RecoveryStats::default(),
    };
    DiftRun { engine, result, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dift_isa::{BinOp, BranchCond, ProgramBuilder, Reg};
    use dift_taint::BitTaint;
    use dift_vm::MachineConfig;
    use std::sync::Arc;

    fn taint_workload() -> (Arc<dift_isa::Program>, Vec<u64>) {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 0);
        b.li(Reg(3), 500);
        b.label("loop");
        b.add(Reg(2), Reg(2), Reg(1));
        b.bini(BinOp::Rem, Reg(4), Reg(2), 97);
        b.li(Reg(5), 300);
        b.store(Reg(4), Reg(5), 0);
        b.load(Reg(6), Reg(5), 0);
        b.bini(BinOp::Sub, Reg(3), Reg(3), 1);
        b.branch(BranchCond::Ne, Reg(3), Reg(0), "loop");
        b.output(Reg(2), 0);
        b.halt();
        (Arc::new(b.build().unwrap()), vec![7])
    }

    fn machine(p: &Arc<dift_isa::Program>, inputs: &[u64]) -> Machine {
        let mut m = Machine::new(p.clone(), MachineConfig::small());
        m.feed_input(0, inputs);
        m
    }

    #[test]
    fn helper_produces_same_taint_as_inline() {
        let (p, inputs) = taint_workload();
        let inline =
            run_inline_dift::<BitTaint>(machine(&p, &inputs), TaintPolicy::propagate_only());
        let offload = run_helper_dift::<BitTaint>(
            machine(&p, &inputs),
            ChannelModel::hardware(),
            TaintPolicy::propagate_only(),
        );
        assert_eq!(inline.engine.output_labels.len(), offload.engine.output_labels.len());
        for (a, b) in inline.engine.output_labels.iter().zip(&offload.engine.output_labels) {
            assert_eq!(a, b, "helper must compute identical labels");
        }
        assert_eq!(inline.engine.tainted_words(), offload.engine.tainted_words());
    }

    #[test]
    fn hardware_offload_is_cheaper_than_inline() {
        let (p, inputs) = taint_workload();
        let native = machine(&p, &inputs).run().cycles;
        let inline =
            run_inline_dift::<BitTaint>(machine(&p, &inputs), TaintPolicy::propagate_only());
        let hw = run_helper_dift::<BitTaint>(
            machine(&p, &inputs),
            ChannelModel::hardware(),
            TaintPolicy::propagate_only(),
        );
        let inline_oh = inline.stats.overhead_vs(native);
        let hw_oh = hw.stats.overhead_vs(native);
        assert!(hw_oh < inline_oh, "offload must beat inline: {hw_oh:.2} vs {inline_oh:.2}");
        assert!(hw_oh > 1.0);
    }

    #[test]
    fn software_channel_costs_more_than_hardware() {
        let (p, inputs) = taint_workload();
        let native = machine(&p, &inputs).run().cycles;
        let sw = run_helper_dift::<BitTaint>(
            machine(&p, &inputs),
            ChannelModel::software(),
            TaintPolicy::propagate_only(),
        );
        let hw = run_helper_dift::<BitTaint>(
            machine(&p, &inputs),
            ChannelModel::hardware(),
            TaintPolicy::propagate_only(),
        );
        assert!(
            sw.stats.overhead_vs(native) > hw.stats.overhead_vs(native),
            "sw {} vs hw {}",
            sw.stats.overhead_vs(native),
            hw.stats.overhead_vs(native)
        );
        assert_eq!(sw.stats.messages, hw.stats.messages);
    }

    #[test]
    fn stalls_appear_when_helper_is_saturated() {
        let (p, inputs) = taint_workload();
        // Pathologically slow helper with a tiny queue.
        let model = ChannelModel { enqueue_cycles: 1, helper_per_msg: 50, queue_depth: 4 };
        let run =
            run_helper_dift::<BitTaint>(machine(&p, &inputs), model, TaintPolicy::propagate_only());
        assert!(run.stats.stall_cycles > 0, "backpressure must stall the producer");
        assert!(run.stats.completion_cycles >= run.stats.main_cycles);
    }

    #[test]
    fn alerts_work_across_the_offload() {
        // PC-taint attack detection on the helper core (§3.3 + §2.1).
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.addi(Reg(2), Reg(1), 100);
        b.li(Reg(3), 1);
        b.store(Reg(3), Reg(2), 0); // tainted store address -> alert
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let run = run_helper_dift::<dift_taint::PcTaint>(
            machine(&p, &[4]),
            ChannelModel::hardware(),
            TaintPolicy::default(),
        );
        assert_eq!(run.engine.alerts.len(), 1);
        assert_eq!(run.engine.alerts[0].label.pc(), Some(1), "addi is the last writer");
    }

    /// A label whose propagation panics on tainted input — stands in for
    /// any helper-side bug a differential run might trip.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    struct PanickyLabel(bool);

    impl dift_taint::TaintLabel for PanickyLabel {
        fn is_clean(&self) -> bool {
            !self.0
        }
        fn propagate(sources: &[Self], _ctx: &dift_taint::LabelCtx) -> Self {
            if sources.iter().any(|s| s.0) {
                panic!("synthetic helper-side label fault");
            }
            PanickyLabel(false)
        }
        fn source(_ctx: &dift_taint::LabelCtx, _channel: u16, _index: u64) -> Self {
            PanickyLabel(true)
        }
        fn shadow_bytes(&self) -> usize {
            1
        }
    }

    #[test]
    fn helper_panics_surface_their_message() {
        let (p, inputs) = taint_workload();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_helper_dift::<PanickyLabel>(
                machine(&p, &inputs),
                ChannelModel::hardware(),
                TaintPolicy::propagate_only(),
            )
        }));
        let payload = match caught {
            Ok(_) => panic!("the helper's panic must propagate"),
            Err(p) => p,
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("propagated panic carries a String message");
        assert!(
            msg.contains("helper DIFT thread panicked")
                && msg.contains("synthetic helper-side label fault"),
            "panic must name the helper and carry the original payload, got: {msg}"
        );
    }

    #[test]
    fn batching_amortizes_channel_sends_without_touching_the_model() {
        let (p, inputs) = taint_workload();
        let run = run_helper_dift::<BitTaint>(
            machine(&p, &inputs),
            ChannelModel::hardware(),
            TaintPolicy::propagate_only(),
        );
        // Every instruction is still a modeled message...
        assert!(run.stats.messages > BATCH_SIZE as u64 * 4);
        // ...but the physical channel saw far fewer sends.
        assert!(run.stats.batches > 0);
        assert!(
            run.stats.batches <= run.stats.messages / (BATCH_SIZE as u64 / 2),
            "batching must amortize sends: {} batches for {} messages",
            run.stats.batches,
            run.stats.messages
        );
        // And batching must not change the modeled clock: identical
        // inputs yield identical modeled stats across runs.
        let again = run_helper_dift::<BitTaint>(
            machine(&p, &inputs),
            ChannelModel::hardware(),
            TaintPolicy::propagate_only(),
        );
        assert_eq!(run.stats.main_cycles, again.stats.main_cycles);
        assert_eq!(run.stats.completion_cycles, again.stats.completion_cycles);
        assert_eq!(run.stats.stall_cycles, again.stats.stall_cycles);
    }
}
