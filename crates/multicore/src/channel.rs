//! Main↔helper communication models.

/// Timing model of the main→helper message path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelModel {
    /// Cycles the *main* core pays to enqueue one instruction record.
    pub enqueue_cycles: u64,
    /// Cycles the *helper* core needs to process one record (dequeue +
    /// taint propagation).
    pub helper_per_msg: u64,
    /// Bounded queue depth; a full queue stalls the main core.
    pub queue_depth: usize,
}

impl ChannelModel {
    /// Software approach: a shared-memory ring buffer. Every enqueue is a
    /// store that migrates a cache line to the consumer, the consumer pays
    /// the mirrored miss, and the buffer is a few cache lines deep — the
    /// helper cannot keep pace, so the producer also absorbs stalls.
    pub fn software() -> ChannelModel {
        ChannelModel { enqueue_cycles: 3, helper_per_msg: 5, queue_depth: 128 }
    }

    /// Hardware approach: a dedicated core-to-core interconnect with an
    /// ISA-level enqueue — near-free for the producer, deeply buffered,
    /// and the helper's streamlined record format lets it keep pace with
    /// the main core (the property the 48 % result depends on).
    pub fn hardware() -> ChannelModel {
        ChannelModel { enqueue_cycles: 1, helper_per_msg: 2, queue_depth: 1024 }
    }
}

/// Logical-time simulation of the bounded queue: tracks in-flight message
/// completion times on the helper's clock and computes producer stalls.
#[derive(Debug)]
pub struct QueueSim {
    model: ChannelModel,
    /// Completion times (helper clock) of in-flight messages.
    in_flight: std::collections::VecDeque<u64>,
    /// Helper core's logical clock.
    pub helper_clock: u64,
    /// Total producer stall cycles caused by a full queue.
    pub stall_cycles: u64,
    /// Messages sent.
    pub messages: u64,
    /// Helper busy cycles.
    pub helper_busy: u64,
}

impl QueueSim {
    pub fn new(model: ChannelModel) -> QueueSim {
        // Guards the pop-when-full path below: with a depth of at least
        // one, a full queue always has a front element to wait on.
        assert!(model.queue_depth >= 1, "queue depth must be at least 1");
        QueueSim {
            model,
            in_flight: std::collections::VecDeque::new(),
            helper_clock: 0,
            stall_cycles: 0,
            messages: 0,
            helper_busy: 0,
        }
    }

    /// Record an enqueue at main-core time `now`; returns the stall
    /// cycles the producer must absorb (0 when the queue has room).
    pub fn enqueue(&mut self, now: u64) -> u64 {
        // Retire messages the helper finished by `now`.
        while self.in_flight.front().map(|&c| c <= now).unwrap_or(false) {
            self.in_flight.pop_front();
        }
        // Full queue: the producer waits until the oldest message
        // completes. `queue_depth >= 1` (asserted in `new`) makes a full
        // queue non-empty, so the front always exists here.
        let mut stall = 0;
        if self.in_flight.len() >= self.model.queue_depth {
            if let Some(&oldest) = self.in_flight.front() {
                stall = oldest.saturating_sub(now);
                self.stall_cycles += stall;
                self.in_flight.pop_front();
            }
        }
        let arrival = now + stall;
        let start = self.helper_clock.max(arrival);
        self.helper_clock = start + self.model.helper_per_msg;
        self.helper_busy += self.model.helper_per_msg;
        self.in_flight.push_back(self.helper_clock);
        self.messages += 1;
        stall
    }

    /// Messages currently in flight (queue occupancy as of the last
    /// `enqueue` — retirement happens lazily at enqueue time).
    pub fn depth(&self) -> usize {
        self.in_flight.len()
    }
}

/// Timing model of a fanned-out channel: one bounded queue per helper
/// shard, each with its own helper clock. The producer steers every
/// message to one shard (epoch-parallel DIFT sends a whole epoch to the
/// same shard) and only stalls on *that* shard's backpressure; overall
/// helper-side completion is the slowest shard's clock.
#[derive(Debug)]
pub struct MultiQueueSim {
    shards: Vec<QueueSim>,
}

impl MultiQueueSim {
    pub fn new(model: ChannelModel, shards: usize) -> MultiQueueSim {
        assert!(shards >= 1, "at least one helper shard");
        MultiQueueSim { shards: (0..shards).map(|_| QueueSim::new(model)).collect() }
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Enqueue onto `shard` at main-core time `now`; returns the stall
    /// the producer absorbs (only this shard's queue can block it).
    pub fn enqueue(&mut self, shard: usize, now: u64) -> u64 {
        self.shards[shard].enqueue(now)
    }

    /// The slowest shard's clock — helper-side completion time.
    pub fn max_helper_clock(&self) -> u64 {
        self.shards.iter().map(|s| s.helper_clock).max().unwrap_or(0)
    }

    pub fn stall_cycles(&self) -> u64 {
        self.shards.iter().map(|s| s.stall_cycles).sum()
    }

    pub fn messages(&self) -> u64 {
        self.shards.iter().map(|s| s.messages).sum()
    }

    pub fn helper_busy(&self) -> u64 {
        self.shards.iter().map(|s| s.helper_busy).sum()
    }

    /// In-flight occupancy of one shard's queue.
    pub fn depth(&self, shard: usize) -> usize {
        self.shards[shard].depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let sw = ChannelModel::software();
        let hw = ChannelModel::hardware();
        assert!(sw.enqueue_cycles > hw.enqueue_cycles);
        assert!(sw.queue_depth < hw.queue_depth);
    }

    #[test]
    fn fast_producer_fills_queue_and_stalls() {
        // Queue depth 2, helper needs 10 cycles/msg, producer sends every
        // cycle.
        let m = ChannelModel { enqueue_cycles: 1, helper_per_msg: 10, queue_depth: 2 };
        let mut q = QueueSim::new(m);
        assert_eq!(q.enqueue(0), 0); // completes at 10
        assert_eq!(q.enqueue(1), 0); // completes at 20
        let stall = q.enqueue(2); // full: waits for t=10
        assert_eq!(stall, 8);
        assert_eq!(q.stall_cycles, 8);
    }

    #[test]
    fn slow_producer_never_stalls() {
        let m = ChannelModel { enqueue_cycles: 1, helper_per_msg: 2, queue_depth: 4 };
        let mut q = QueueSim::new(m);
        for t in (0..100).step_by(10) {
            assert_eq!(q.enqueue(t), 0);
        }
        assert_eq!(q.stall_cycles, 0);
        assert_eq!(q.messages, 10);
    }

    #[test]
    fn helper_clock_tracks_busy_time() {
        let m = ChannelModel { enqueue_cycles: 1, helper_per_msg: 3, queue_depth: 64 };
        let mut q = QueueSim::new(m);
        q.enqueue(0);
        q.enqueue(0);
        q.enqueue(0);
        assert_eq!(q.helper_clock, 9, "back-to-back messages serialize on the helper");
        assert_eq!(q.helper_busy, 9);
        // A late message starts at its arrival time.
        q.enqueue(100);
        assert_eq!(q.helper_clock, 103);
    }

    #[test]
    fn sharded_queues_progress_independently() {
        let m = ChannelModel { enqueue_cycles: 1, helper_per_msg: 10, queue_depth: 2 };
        let mut q = MultiQueueSim::new(m, 2);
        // Interleaving across two shards halves each shard's pressure:
        // the same traffic that stalls a single queue stays stall-free.
        let mut single = QueueSim::new(m);
        let mut stalled = 0;
        for t in 0..4u64 {
            stalled += single.enqueue(t);
            assert_eq!(q.enqueue((t % 2) as usize, t), 0);
        }
        assert!(stalled > 0, "the single queue must have stalled");
        assert_eq!(q.stall_cycles(), 0);
        assert_eq!(q.messages(), 4);
        assert_eq!(q.helper_busy(), 40);
        // Completion is the slowest shard, not the sum.
        assert!(q.max_helper_clock() < single.helper_clock);
    }

    #[test]
    fn one_shard_matches_the_plain_queue() {
        let m = ChannelModel { enqueue_cycles: 1, helper_per_msg: 7, queue_depth: 3 };
        let mut multi = MultiQueueSim::new(m, 1);
        let mut plain = QueueSim::new(m);
        for t in [0u64, 1, 2, 3, 10, 11, 50] {
            assert_eq!(multi.enqueue(0, t), plain.enqueue(t));
        }
        assert_eq!(multi.max_helper_clock(), plain.helper_clock);
        assert_eq!(multi.stall_cycles(), plain.stall_cycles);
        assert_eq!(multi.helper_busy(), plain.helper_busy);
    }
}
