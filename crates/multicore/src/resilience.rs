//! Recovery policy and accounting for the fault-tolerant epoch pipeline.
//!
//! Epoch summaries (`dift_taint::summary`) are pure functions of an
//! epoch's records and its I/O base, so any helper-side loss — a shard
//! panic, a wedged queue, dropped channel traffic, a damaged summary —
//! is recoverable by recomputing the epoch elsewhere, with results
//! bit-identical to the serial engine. This module holds the knobs
//! ([`RecoveryPolicy`]) and the ledger ([`RecoveryStats`]) of that
//! machinery; the mechanism itself lives in [`crate::epoch`].
//!
//! The recovery ladder, in order:
//!
//! 1. **Isolate** — shard panics are caught per epoch, so one bad epoch
//!    costs exactly one summary, not the shard's whole backlog.
//! 2. **Detect** — per-shard progress watermarks notice a shard that
//!    stopped draining its queue ([`RecoveryPolicy::stall_timeout`]);
//!    producer sends time out rather than blocking forever, and every
//!    surviving summary must pass the record-count integrity check.
//! 3. **Retry on a spare shard** — lost epochs are re-summarized on
//!    fresh spare threads, up to [`RecoveryPolicy::max_retries`] rounds.
//! 4. **Degrade to serial** — whatever is still missing is summarized
//!    inline on the main thread, which cannot fail by construction (it
//!    is exactly the serial DIFT path), so the run always completes.

use std::time::Duration;

/// How the epoch runner responds to helper-side failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Master switch. Disabled (fail-stop) reproduces the pre-resilience
    /// behavior: any shard failure aborts the run with a diagnostic
    /// naming the shard and epoch.
    pub enabled: bool,
    /// Rounds of retry-on-spare-shard before degrading to inline
    /// re-summarization on the main thread.
    pub max_retries: u32,
    /// How long a shard may go without draining a batch (and a producer
    /// send may block) before it is declared stalled and abandoned.
    pub stall_timeout: Duration,
    /// Poll interval for the progress-watermark check while waiting on
    /// shard results.
    pub backoff: Duration,
}

impl RecoveryPolicy {
    /// Pre-resilience behavior: propagate the first failure.
    pub fn fail_stop() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: false,
            max_retries: 0,
            stall_timeout: Duration::from_secs(30),
            backoff: Duration::from_millis(20),
        }
    }

    /// Production shape: retry twice on spares, then degrade.
    pub fn tolerant() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: true,
            max_retries: 2,
            stall_timeout: Duration::from_secs(2),
            backoff: Duration::from_millis(20),
        }
    }

    /// Test-sized timeouts so stall detection resolves in milliseconds.
    pub fn quick() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: true,
            max_retries: 1,
            stall_timeout: Duration::from_millis(150),
            backoff: Duration::from_millis(5),
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy::fail_stop()
    }
}

/// What the recovery machinery did during one run. All zeros on a
/// fault-free run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Distinct injected faults that actually fired.
    pub faults_injected: u64,
    /// Epochs whose helper-side summary was missing, damaged, or
    /// stranded on a failed shard.
    pub epochs_lost: u64,
    /// Epochs recomputed successfully (always equals `epochs_lost` when
    /// the run returns — recovery cannot give up).
    pub epochs_recovered: u64,
    /// Re-summarization attempts on spare shards (counts attempts, not
    /// rounds; a retried epoch that fails again counts each time).
    pub retries: u64,
    /// Epochs recovered by a spare shard (the rest degraded to inline).
    pub spare_recovered: u64,
    /// Epochs re-summarized inline on the main thread — the graceful
    /// degradation to serial DIFT.
    pub degraded_epochs: u64,
    /// Shards abandoned after a progress-watermark stall.
    pub shards_lost: u64,
}

impl RecoveryStats {
    /// True when any fault fired or any epoch needed recovery.
    pub fn eventful(&self) -> bool {
        *self != RecoveryStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_make_sense() {
        assert!(!RecoveryPolicy::fail_stop().enabled);
        assert!(RecoveryPolicy::tolerant().enabled);
        assert!(RecoveryPolicy::quick().enabled);
        assert!(RecoveryPolicy::quick().stall_timeout < RecoveryPolicy::tolerant().stall_timeout);
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::fail_stop());
    }

    #[test]
    fn default_stats_are_uneventful() {
        assert!(!RecoveryStats::default().eventful());
        let s = RecoveryStats { faults_injected: 1, ..Default::default() };
        assert!(s.eventful());
    }
}
