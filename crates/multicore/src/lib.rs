//! # dift-multicore — DIFT on a second core (INTERACT'08, §2.1)
//!
//! "We spawn a helper thread that is scheduled on a separate core and is
//! only responsible for performing information flow tracking operations.
//! This entails the communication of registers and flags between the main
//! and helper threads. We explore software (shared memory) and hardware
//! (dedicated interconnect) approaches…"
//!
//! This crate reproduces that design with **both** a real helper thread
//! (taint propagation actually runs on another core, via a crossbeam
//! channel) and a deterministic **timing model**: the main core charges an
//! enqueue cost per instruction and stalls when the bounded queue fills;
//! the helper core's clock advances per message. Reported overheads are
//! ratios of modeled cycles, so they are reproducible while the *work* is
//! genuinely parallel.
//!
//! The [`ChannelModel::software`] (shared-memory ring buffer: cache-miss
//! per enqueue, moderate depth) and [`ChannelModel::hardware`] (dedicated
//! core-to-core interconnect: cheap enqueue, deeper buffering) presets
//! bracket the paper's design space; the hardware variant lands at the
//! reported ≈48 % main-thread overhead, the software variant is markedly
//! worse — which is exactly the argument the paper makes for hardware
//! support.

pub mod channel;
pub mod epoch;
pub mod faultplan;
pub mod helper;
pub mod lineage_shard;
pub mod resilience;

pub use channel::{ChannelModel, MultiQueueSim, QueueSim};
pub use epoch::{
    epoch_process_stream, epoch_process_stream_tolerant, run_epoch_dift, run_epoch_dift_obs,
    run_epoch_dift_tolerant, EpochModel,
};
pub use faultplan::{
    silence_injected_panics, FaultPlan, FaultSite, Injection, NoopFaults, ScriptedFaults,
    INJECTED_PANIC_MARKER,
};
pub use helper::{run_helper_dift, run_inline_dift, DiftRun, MulticoreStats};
pub use lineage_shard::{
    shard_lineage_stream, shard_lineage_stream_obs, shard_lineage_stream_tolerant,
    LineageShardConfig, LineageShardRun, LineageShardStats,
};
pub use resilience::{RecoveryPolicy, RecoveryStats};
