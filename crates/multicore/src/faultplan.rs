//! Deterministic, seedable fault injection for the epoch pipeline.
//!
//! The epoch-parallel runner ([`crate::epoch`]) distributes self-contained
//! taint-transfer summaries across helper shards; because a summary is a
//! pure function of its epoch's records and I/O base, any lost or damaged
//! epoch can be recomputed anywhere with bit-identical results. This
//! module provides the *adversary* for exercising that property: a
//! [`FaultPlan`] names exact `(site, shard, epoch)` coordinates at which
//! the pipeline misbehaves, so recovery tests are reproducible down to
//! the individual message.
//!
//! The design mirrors the `dift-obs` [`dift_obs::Recorder`] pattern:
//! instrumented functions are generic over `F: FaultPlan` with
//! [`NoopFaults`] as the default, and every injection site guards on
//! `F::ARMED` — a monomorphized `false` for the no-op plan, so release
//! builds of the ordinary entry points carry no fault-injection code at
//! all.

use std::sync::Arc;

/// Marker every injected panic message starts with, so panic hooks and
/// failure handlers can tell injected faults from real bugs.
pub const INJECTED_PANIC_MARKER: &str = "injected fault:";

/// A place in the pipeline where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The shard thread panics while summarizing the epoch (caught by
    /// the per-epoch `catch_unwind` in the shard loop).
    ShardPanic,
    /// The producer drops the epoch's channel traffic on the floor: the
    /// shard never sees the epoch at all.
    DropMessage,
    /// The shard wedges at the start of the epoch and stops draining its
    /// queue — the stuck-bounded-queue scenario. Only progress-watermark
    /// stall detection can notice this one.
    QueueStall,
    /// The shard silently corrupts the epoch's summary (modeled as
    /// summarizing the epoch minus its first record, the kind of damage
    /// the record-count integrity check catches).
    CorruptSummary,
}

impl FaultSite {
    /// Every site, in a stable order (the fault-matrix experiments and
    /// CI grid iterate this).
    pub const ALL: [FaultSite; 4] = [
        FaultSite::ShardPanic,
        FaultSite::DropMessage,
        FaultSite::QueueStall,
        FaultSite::CorruptSummary,
    ];

    /// Stable snake_case name for reports and JSON artifacts.
    pub const fn name(self) -> &'static str {
        match self {
            FaultSite::ShardPanic => "shard_panic",
            FaultSite::DropMessage => "drop_message",
            FaultSite::QueueStall => "queue_stall",
            FaultSite::CorruptSummary => "corrupt_summary",
        }
    }
}

/// A deterministic oracle deciding whether a fault fires at a pipeline
/// coordinate. `fires` must be pure: the same `(site, shard, epoch)`
/// always returns the same answer, so a retry on a *different* shard
/// index sees fresh coordinates while a retry on the same ones re-fails.
pub trait FaultPlan: Clone + Send + 'static {
    /// `false` plans promise `fires` never returns `true`; injection
    /// sites guard on this so the no-fault build compiles the sites
    /// away, exactly like `Recorder::ENABLED`.
    const ARMED: bool;

    /// Does a fault fire at this coordinate?
    fn fires(&self, site: FaultSite, shard: usize, epoch: usize) -> bool;
}

/// The default plan: no faults, no cost. With `F = NoopFaults` every
/// `if F::ARMED` injection site folds away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopFaults;

impl FaultPlan for NoopFaults {
    const ARMED: bool = false;

    #[inline(always)]
    fn fires(&self, _site: FaultSite, _shard: usize, _epoch: usize) -> bool {
        false
    }
}

/// One scripted fault at an exact coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    pub site: FaultSite,
    pub shard: usize,
    pub epoch: usize,
}

/// A scripted plan: an explicit list of coordinates, either hand-written
/// (the CI fault grid) or generated from a seed (the differential
/// proptest). Cloning shares the list.
#[derive(Clone, Debug)]
pub struct ScriptedFaults {
    injections: Arc<Vec<Injection>>,
}

impl ScriptedFaults {
    pub fn new(injections: Vec<Injection>) -> ScriptedFaults {
        ScriptedFaults { injections: Arc::new(injections) }
    }

    /// A single fault at one coordinate — the unit of the fault matrix.
    pub fn single(site: FaultSite, shard: usize, epoch: usize) -> ScriptedFaults {
        ScriptedFaults::new(vec![Injection { site, shard, epoch }])
    }

    /// `count` pseudo-random injections drawn deterministically from
    /// `seed` over `shards × epochs` coordinates. Identical seeds give
    /// identical plans on every platform (splitmix64, no global state).
    pub fn seeded(seed: u64, count: usize, shards: usize, epochs: usize) -> ScriptedFaults {
        let mut state = seed;
        let mut next = move || {
            // splitmix64: the standard seedable 64-bit mixer.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let injections = (0..count)
            .map(|_| Injection {
                site: FaultSite::ALL[(next() % FaultSite::ALL.len() as u64) as usize],
                shard: (next() % shards.max(1) as u64) as usize,
                epoch: (next() % epochs.max(1) as u64) as usize,
            })
            .collect();
        ScriptedFaults { injections: Arc::new(injections) }
    }

    /// The scripted coordinates (diagnostics / test assertions).
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }
}

impl FaultPlan for ScriptedFaults {
    const ARMED: bool = true;

    fn fires(&self, site: FaultSite, shard: usize, epoch: usize) -> bool {
        self.injections.iter().any(|i| i.site == site && i.shard == shard && i.epoch == epoch)
    }
}

/// Install a process-wide panic hook that suppresses the default
/// backtrace spew for *injected* panics (payloads starting with
/// [`INJECTED_PANIC_MARKER`]) while forwarding every real panic to the
/// previously installed hook. Idempotent; intended for test binaries and
/// the resilience experiment, where injected shard panics are expected
/// and their default-hook output would drown the real signal.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&'static str>()
                .copied()
                .map(str::to_string)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.starts_with(INJECTED_PANIC_MARKER) {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disarmed() {
        const { assert!(!NoopFaults::ARMED) }
        assert!(!NoopFaults.fires(FaultSite::ShardPanic, 0, 0));
    }

    #[test]
    fn scripted_fires_only_at_its_coordinates() {
        let plan = ScriptedFaults::single(FaultSite::DropMessage, 1, 3);
        assert!(plan.fires(FaultSite::DropMessage, 1, 3));
        assert!(!plan.fires(FaultSite::DropMessage, 1, 4));
        assert!(!plan.fires(FaultSite::DropMessage, 0, 3));
        assert!(!plan.fires(FaultSite::ShardPanic, 1, 3));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = ScriptedFaults::seeded(42, 8, 4, 100);
        let b = ScriptedFaults::seeded(42, 8, 4, 100);
        assert_eq!(a.injections(), b.injections());
        for i in a.injections() {
            assert!(i.shard < 4);
            assert!(i.epoch < 100);
        }
        let c = ScriptedFaults::seeded(43, 8, 4, 100);
        assert_ne!(a.injections(), c.injections(), "different seeds should differ");
    }

    #[test]
    fn fires_is_pure() {
        let plan = ScriptedFaults::seeded(7, 16, 8, 64);
        for i in plan.injections() {
            assert!(plan.fires(i.site, i.shard, i.epoch));
            assert_eq!(plan.fires(i.site, i.shard, i.epoch), plan.fires(i.site, i.shard, i.epoch));
        }
    }
}
