//! Sharded lineage tracing (and optional slice-index derivation) on the
//! epoch-parallel pipeline.
//!
//! [`epoch_process_stream_tolerant`](crate::epoch::epoch_process_stream_tolerant)
//! fans *taint* propagation out by epoch; this module does the same for
//! the two remaining serial analyses (DESIGN §17):
//!
//! * **Lineage** — each shard summarizes its epoch into a
//!   [`LineageEpochSummary`]: set-valued effects over a private roBDD
//!   arena, with reads of pre-epoch state left symbolic. Composition
//!   absorbs each arena into the primary [`BddManager`] via the
//!   canonicity-preserving hash-cons merge and resolves the symbolic
//!   reads, reproducing the serial [`LineageEngine`] bit for bit.
//! * **Slicing** — each shard derives its epoch's dependences into a
//!   private `SliceIndex` fragment ([`dift_ddg::epoch`]); composition
//!   splices fragments chunk-by-chunk and resolves the few cross-epoch
//!   pending dependences, so `dift-slicing`'s `SliceService` can answer
//!   queries against a sharded run.
//!
//! The fault-tolerance contract is inherited unchanged: summaries are
//! pure functions of their epoch's records (plus label-independent
//! pre-scans), so any epoch lost to an injected [`FaultSite`] is
//! re-summarized inline during composition and the result is still
//! bit-identical to serial processing.
//!
//! [`BddManager`]: dift_robdd::BddManager

use crate::faultplan::{FaultPlan, FaultSite, NoopFaults, INJECTED_PANIC_MARKER};
use crate::resilience::RecoveryStats;
use dift_ddg::epoch::{control_entry_snapshots, summarize_dep_epoch, EpochDeps};
use dift_ddg::{ControlStack, SliceIndex};
use dift_isa::Program;
use dift_lineage::{
    summarize_lineage_epoch, BddBackend, LineageEngine, LineageEpochSummary, SinkLog,
};
use dift_obs::{Metric, NoopRecorder, Recorder};
use dift_taint::IoBase;
use dift_vm::StepEffects;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;
use std::time::Instant;

/// Configuration of the sharded lineage/slicing run.
#[derive(Clone, Debug)]
pub struct LineageShardConfig {
    /// Shard threads the stream fans out across.
    pub workers: usize,
    /// Instructions per epoch.
    pub epoch_len: usize,
    /// Bit width of the roBDD input-identifier universe.
    pub id_bits: u32,
    /// Capture sink observations (stores, outputs, address lineage) for
    /// the sentinel, exactly as the serial `SinkObserver` would.
    pub capture_sinks: bool,
    /// Also derive per-epoch `SliceIndex` fragments and merge them.
    pub slice: bool,
}

impl LineageShardConfig {
    pub fn new(workers: usize, epoch_len: usize, id_bits: u32) -> LineageShardConfig {
        LineageShardConfig { workers, epoch_len, id_bits, capture_sinks: false, slice: false }
    }
}

/// Wall-clock and merge-cost accounting for one sharded run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LineageShardStats {
    pub epochs: u64,
    pub workers: usize,
    /// Total shard-side summarize time — the serial-equivalent work.
    pub shard_nanos_total: u64,
    /// Busiest worker's summarize time — the parallel critical path.
    pub max_worker_nanos: u64,
    /// Sequential composition time (arena merges, symbolic resolution,
    /// fragment splicing).
    pub compose_nanos: u64,
    /// roBDD nodes built in shard arenas (upper bound on merge traffic).
    pub arena_nodes: u64,
    /// Dependences whose def lay in an earlier epoch (resolved at
    /// composition).
    pub cross_epoch_deps: u64,
    /// Pending reads of never-written locations (no dependence exists).
    pub unresolved_pendings: u64,
    /// Index chunks spliced by `Arc` move vs merged key-by-key.
    pub chunks_moved: u64,
    pub chunks_merged: u64,
}

impl LineageShardStats {
    /// Modeled shard speedup: serial-equivalent shard work over the
    /// parallel critical path (busiest worker + sequential compose).
    /// Wall-clock on a single-core host cannot show this; the model is
    /// exact in the sense that both numerator and denominator are
    /// measured, only their overlap is assumed.
    pub fn modeled_speedup(&self) -> f64 {
        let path = self.max_worker_nanos + self.compose_nanos;
        if path == 0 {
            1.0
        } else {
            (self.shard_nanos_total + self.compose_nanos) as f64 / path as f64
        }
    }
}

/// The result of a sharded run: a primary engine (and optional sink log
/// / merged index) bit-identical to serial processing, plus accounting.
pub struct LineageShardRun {
    pub engine: LineageEngine<BddBackend>,
    /// Sink observations in serial order (`capture_sinks` only).
    pub sinks: Option<SinkLog>,
    /// The merged whole-run slice index (`slice` only).
    pub index: Option<SliceIndex>,
    pub stats: LineageShardStats,
    pub recovery: RecoveryStats,
}

/// [`shard_lineage_stream_obs`] with no recorder and no faults.
pub fn shard_lineage_stream(
    stream: &[StepEffects],
    program: &Program,
    mem_words: usize,
    cfg: &LineageShardConfig,
) -> LineageShardRun {
    shard_lineage_stream_obs(stream, program, mem_words, cfg, NoopFaults, NoopRecorder).0
}

/// Epoch-parallel lineage (and optional slicing) over a pre-captured
/// effects stream, under a [`FaultPlan`] adversary, with `dift-obs`
/// probes. Mirrors the taint pipeline's tolerant runner: workers claim
/// epochs from a shared counter; a wedged worker stops claiming; panics
/// are caught per epoch; and any epoch whose summary is missing or
/// fails the instruction-count integrity check is re-summarized inline
/// during composition — the result is always bit-identical to serial.
pub fn shard_lineage_stream_obs<F: FaultPlan, R: Recorder + Send>(
    stream: &[StepEffects],
    program: &Program,
    mem_words: usize,
    cfg: &LineageShardConfig,
    faults: F,
    mut obs: R,
) -> (LineageShardRun, R) {
    assert!(cfg.epoch_len >= 1, "epochs must be non-empty");
    assert!(cfg.workers >= 1, "at least one worker");
    let chunks: Vec<&[StepEffects]> = stream.chunks(cfg.epoch_len).collect();

    // Label-independent sequential pre-scans: per-channel input counts
    // (numbers the lineage identifiers) and, when slicing, the control
    // stack at each epoch entry (grounds control dependences).
    let mut bases = Vec::with_capacity(chunks.len());
    let mut base = IoBase::default();
    for c in &chunks {
        bases.push(base.clone());
        base.advance(c);
    }
    let snaps: Option<Vec<ControlStack>> =
        cfg.slice.then(|| control_entry_snapshots(program, &chunks));

    type Slot = (LineageEpochSummary, Option<EpochDeps>);
    let summaries: Vec<OnceLock<Slot>> = chunks.iter().map(|_| OnceLock::new()).collect();
    let worker_nanos: Vec<AtomicU64> = (0..cfg.workers).map(|_| AtomicU64::new(0)).collect();
    let next = AtomicUsize::new(0);
    let fired = AtomicU64::new(0);
    thread::scope(|s| {
        let chunks = &chunks;
        let bases = &bases;
        let snaps = &snaps;
        let summaries = &summaries;
        let next = &next;
        let fired = &fired;
        for (w, nanos) in worker_nanos.iter().enumerate() {
            let faults = faults.clone();
            let cfg = cfg.clone();
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks.len() {
                    break;
                }
                if F::ARMED && faults.fires(FaultSite::QueueStall, w, i) {
                    fired.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if F::ARMED && faults.fires(FaultSite::DropMessage, w, i) {
                    fired.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let t0 = Instant::now();
                let res = catch_unwind(AssertUnwindSafe(|| {
                    if F::ARMED && faults.fires(FaultSite::ShardPanic, w, i) {
                        fired.fetch_add(1, Ordering::Relaxed);
                        panic_any(format!("{INJECTED_PANIC_MARKER} scripted worker panic"));
                    }
                    if F::ARMED && faults.fires(FaultSite::CorruptSummary, w, i) {
                        fired.fetch_add(1, Ordering::Relaxed);
                        // Summarize the epoch minus its first record; the
                        // instruction-count check catches it at compose.
                        let sum = summarize_lineage_epoch(
                            &chunks[i][1..],
                            cfg.id_bits,
                            &bases[i],
                            cfg.capture_sinks,
                        );
                        (sum, None)
                    } else {
                        let sum = summarize_lineage_epoch(
                            chunks[i],
                            cfg.id_bits,
                            &bases[i],
                            cfg.capture_sinks,
                        );
                        let deps = snaps.as_ref().map(|snaps| {
                            summarize_dep_epoch(
                                chunks[i],
                                snaps[i].clone(),
                                chunks[i][0].step,
                                mem_words,
                            )
                        });
                        (sum, deps)
                    }
                }));
                nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if let Ok(slot) = res {
                    let _ = summaries[i].set(slot);
                }
            });
        }
    });

    let mut recovery = RecoveryStats {
        faults_injected: fired.load(Ordering::Relaxed),
        ..RecoveryStats::default()
    };
    let mut stats = LineageShardStats {
        epochs: chunks.len() as u64,
        workers: cfg.workers,
        shard_nanos_total: worker_nanos.iter().map(|n| n.load(Ordering::Relaxed)).sum(),
        max_worker_nanos: worker_nanos.iter().map(|n| n.load(Ordering::Relaxed)).max().unwrap_or(0),
        ..LineageShardStats::default()
    };
    if R::ENABLED {
        for n in &worker_nanos {
            obs.observe(Metric::LsShardEpochNanos, n.load(Ordering::Relaxed));
        }
        obs.add(Metric::LsEpochs, stats.epochs);
    }

    // Composition: epoch order, inline recovery for invalid slots.
    let mut engine = LineageEngine::new(BddBackend::new(cfg.id_bits));
    let mut sinks = cfg.capture_sinks.then(SinkLog::default);
    let mut composer = cfg.slice.then(dift_ddg::EpochDepComposer::new);
    let t0 = Instant::now();
    for (i, slot) in summaries.into_iter().enumerate() {
        let want = chunks[i].len() as u64;
        let valid = slot.into_inner().filter(|(sum, deps)| {
            sum.instrs() == want
                && (!cfg.slice || deps.as_ref().is_some_and(|d| d.instrs() == want))
        });
        let (sum, deps) = match valid {
            Some(slot) => slot,
            None => {
                recovery.epochs_lost += 1;
                recovery.degraded_epochs += 1;
                recovery.epochs_recovered += 1;
                let sum =
                    summarize_lineage_epoch(chunks[i], cfg.id_bits, &bases[i], cfg.capture_sinks);
                let deps = snaps.as_ref().map(|snaps| {
                    summarize_dep_epoch(chunks[i], snaps[i].clone(), chunks[i][0].step, mem_words)
                });
                (sum, deps)
            }
        };
        stats.arena_nodes += sum.arena_nodes() as u64;
        sum.apply(&mut engine, sinks.as_mut());
        if let (Some(c), Some(d)) = (composer.as_mut(), deps) {
            let ms = c.absorb(d);
            stats.chunks_moved += ms.chunks_moved as u64;
            stats.chunks_merged += ms.chunks_merged as u64;
        }
    }
    stats.compose_nanos = t0.elapsed().as_nanos() as u64;
    if let Some(c) = &composer {
        let cs = c.stats();
        stats.cross_epoch_deps = cs.cross_epoch_records;
        stats.unresolved_pendings = cs.unresolved_pendings;
    }
    if R::ENABLED {
        obs.add(Metric::LsComposeNanos, stats.compose_nanos);
        obs.add(Metric::LsArenaNodes, stats.arena_nodes);
        obs.add(Metric::LsCrossEpochDeps, stats.cross_epoch_deps);
        obs.add(Metric::LsEpochsRecovered, recovery.epochs_recovered);
    }

    let index = composer.map(|c| c.into_index());
    (LineageShardRun { engine, sinks, index, stats, recovery }, obs)
}

/// [`shard_lineage_stream_obs`] without probes — the fault-injection
/// test entry point.
pub fn shard_lineage_stream_tolerant<F: FaultPlan>(
    stream: &[StepEffects],
    program: &Program,
    mem_words: usize,
    cfg: &LineageShardConfig,
    faults: F,
) -> LineageShardRun {
    shard_lineage_stream_obs(stream, program, mem_words, cfg, faults, NoopRecorder).0
}
