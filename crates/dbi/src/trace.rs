//! Hot-trace formation (NET-style next-executing-tail).
//!
//! ONTRAC's second generic optimization extends intra-block static
//! dependence inference to *traces* — sequences of basic blocks that
//! execute consecutively in hot code. This module provides the runtime
//! trace builder: when a block's entry count crosses `hot_threshold` the
//! builder starts recording the block sequence the thread executes next,
//! ending at `max_blocks`, at a back-edge to the head, or at a block
//! already in the trace.

use dift_isa::Addr;
use dift_vm::ThreadId;
use std::collections::HashMap;

/// A formed hot trace: a head block plus the recorded successor blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotTrace {
    pub head: Addr,
    /// Block entry addresses, starting with `head`.
    pub blocks: Vec<Addr>,
}

enum Recording {
    No,
    Yes { head: Addr, blocks: Vec<Addr> },
}

/// Builds hot traces from a stream of block-entry events.
pub struct TraceBuilder {
    hot_threshold: u32,
    max_blocks: usize,
    counts: HashMap<Addr, u32>,
    recording: HashMap<ThreadId, Recording>,
    traces: HashMap<Addr, HotTrace>,
}

impl TraceBuilder {
    pub fn new(hot_threshold: u32, max_blocks: usize) -> TraceBuilder {
        TraceBuilder {
            hot_threshold,
            max_blocks,
            counts: HashMap::new(),
            recording: HashMap::new(),
            traces: HashMap::new(),
        }
    }

    /// Feed one block entry; returns a completed trace when this event
    /// finishes one.
    pub fn on_block(&mut self, tid: ThreadId, entry: Addr) -> Option<HotTrace> {
        // Continue an in-progress recording for this thread.
        let state = self.recording.entry(tid).or_insert(Recording::No);
        if let Recording::Yes { head, blocks } = state {
            let head = *head;
            let cycle = blocks.contains(&entry);
            if cycle || blocks.len() >= self.max_blocks {
                let trace = HotTrace { head, blocks: std::mem::take(blocks) };
                *state = Recording::No;
                self.traces.insert(head, trace.clone());
                return Some(trace);
            }
            blocks.push(entry);
            return None;
        }

        // Not recording: bump hotness and maybe start.
        if self.traces.contains_key(&entry) {
            return None; // already have a trace for this head
        }
        let c = self.counts.entry(entry).or_insert(0);
        *c += 1;
        if *c >= self.hot_threshold {
            self.recording.insert(tid, Recording::Yes { head: entry, blocks: vec![entry] });
        }
        None
    }

    /// The trace formed for `head`, if any.
    pub fn trace_for(&self, head: Addr) -> Option<&HotTrace> {
        self.traces.get(&head)
    }

    /// All formed traces.
    pub fn traces(&self) -> impl Iterator<Item = &HotTrace> {
        self.traces.values()
    }

    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_forms_a_trace_at_threshold() {
        let mut tb = TraceBuilder::new(3, 8);
        // Simulate a 2-block loop body: A -> B -> A -> B ...
        let mut formed = None;
        for _ in 0..10 {
            if let Some(t) = tb.on_block(0, 100) {
                formed = Some(t);
                break;
            }
            if let Some(t) = tb.on_block(0, 200) {
                formed = Some(t);
                break;
            }
        }
        let t = formed.expect("hot loop should form a trace");
        assert_eq!(t.head, 100);
        assert_eq!(t.blocks, vec![100, 200]);
        assert!(tb.trace_for(100).is_some());
    }

    #[test]
    fn recording_stops_at_max_blocks() {
        let mut tb = TraceBuilder::new(1, 3);
        // Straight-line distinct blocks.
        assert!(tb.on_block(0, 1).is_none()); // hot immediately, starts recording
        assert!(tb.on_block(0, 2).is_none());
        assert!(tb.on_block(0, 3).is_none());
        let t = tb.on_block(0, 4).expect("max_blocks reached");
        assert_eq!(t.blocks, vec![1, 2, 3]);
    }

    #[test]
    fn cold_blocks_form_no_trace() {
        let mut tb = TraceBuilder::new(100, 8);
        for _ in 0..50 {
            assert!(tb.on_block(0, 7).is_none());
        }
        assert_eq!(tb.trace_count(), 0);
    }

    #[test]
    fn per_thread_recording_is_independent() {
        let mut tb = TraceBuilder::new(1, 8);
        assert!(tb.on_block(0, 10).is_none()); // thread 0 starts recording at 10
        assert!(tb.on_block(1, 20).is_none()); // thread 1 starts recording at 20
        assert!(tb.on_block(0, 11).is_none());
        assert!(tb.on_block(1, 21).is_none());
        let t0 = tb.on_block(0, 10).unwrap(); // cycle back to head
        assert_eq!(t0.blocks, vec![10, 11]);
        let t1 = tb.on_block(1, 20).unwrap();
        assert_eq!(t1.blocks, vec![20, 21]);
    }

    #[test]
    fn existing_trace_head_is_not_recounted() {
        let mut tb = TraceBuilder::new(1, 4);
        tb.on_block(0, 5);
        tb.on_block(0, 6);
        let t = tb.on_block(0, 5).unwrap();
        assert_eq!(t.blocks, vec![5, 6]);
        // Re-entering the head afterwards does not restart recording.
        assert!(tb.on_block(0, 5).is_none());
        assert!(tb.on_block(0, 6).is_none());
        assert_eq!(tb.trace_count(), 1);
    }
}
