//! Hot-trace formation (NET-style next-executing-tail).
//!
//! ONTRAC's second generic optimization extends intra-block static
//! dependence inference to *traces* — sequences of basic blocks that
//! execute consecutively in hot code. This module provides the runtime
//! trace builder: when a block's entry count crosses `hot_threshold` the
//! builder starts recording the block sequence the thread executes next,
//! ending at `max_blocks`, at a back-edge to the head, or at a block
//! already in the trace.

use dift_isa::Addr;
use dift_vm::ThreadId;
use std::collections::HashMap;

/// A formed hot trace: a head block plus the recorded successor blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotTrace {
    pub head: Addr,
    /// Block entry addresses, starting with `head`.
    pub blocks: Vec<Addr>,
}

enum Recording {
    No,
    Yes { head: Addr, blocks: Vec<Addr> },
}

/// Cold hotness counters tracked before decay kicks in. A long run over
/// a large code footprint otherwise accumulates one counter per block
/// that ever executes — an unbounded leak for an always-on tool.
const DEFAULT_COUNTER_BOUND: usize = 4096;

/// Builds hot traces from a stream of block-entry events.
pub struct TraceBuilder {
    hot_threshold: u32,
    max_blocks: usize,
    counter_bound: usize,
    counts: HashMap<Addr, u32>,
    recording: HashMap<ThreadId, Recording>,
    traces: HashMap<Addr, HotTrace>,
}

impl TraceBuilder {
    pub fn new(hot_threshold: u32, max_blocks: usize) -> TraceBuilder {
        TraceBuilder {
            hot_threshold,
            max_blocks,
            counter_bound: DEFAULT_COUNTER_BOUND,
            counts: HashMap::new(),
            recording: HashMap::new(),
            traces: HashMap::new(),
        }
    }

    /// Override the cold-counter bound (tests and memory-tight tools).
    pub fn with_counter_bound(mut self, bound: usize) -> TraceBuilder {
        self.counter_bound = bound.max(1);
        self
    }

    /// Hotness counters currently tracked (bounded; excludes heads whose
    /// trace already formed).
    pub fn tracked_counters(&self) -> usize {
        self.counts.len()
    }

    /// Feed one block entry; returns a completed trace when this event
    /// finishes one.
    pub fn on_block(&mut self, tid: ThreadId, entry: Addr) -> Option<HotTrace> {
        // Continue an in-progress recording for this thread.
        let state = self.recording.entry(tid).or_insert(Recording::No);
        if let Recording::Yes { head, blocks } = state {
            let head = *head;
            let cycle = blocks.contains(&entry);
            if cycle || blocks.len() >= self.max_blocks {
                let trace = HotTrace { head, blocks: std::mem::take(blocks) };
                *state = Recording::No;
                self.traces.insert(head, trace.clone());
                // The head's trace has formed: its hotness counter will
                // never be consulted again (formed heads short-circuit
                // below), so keeping it would leak one entry per trace.
                self.counts.remove(&head);
                return Some(trace);
            }
            blocks.push(entry);
            return None;
        }

        // Not recording: bump hotness and maybe start.
        if self.traces.contains_key(&entry) {
            return None; // already have a trace for this head
        }
        if self.counts.len() >= self.counter_bound && !self.counts.contains_key(&entry) {
            // Table full and this is a new block: decay the cold mass
            // (halve every counter, evict the zeros). Genuinely hot
            // blocks survive halving and still cross the threshold;
            // blocks seen once or twice — the leak on long runs — drop
            // out. If everything is warm enough to survive, reset: a
            // bounded table beats an exact one for an always-on tool.
            self.counts.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
            if self.counts.len() >= self.counter_bound {
                self.counts.clear();
            }
        }
        let c = self.counts.entry(entry).or_insert(0);
        *c += 1;
        if *c >= self.hot_threshold {
            // Recording starts: the counter has served its purpose
            // (either a trace forms — removed above on formation — or
            // the recording aborts into a fresh count).
            self.counts.remove(&entry);
            self.recording.insert(tid, Recording::Yes { head: entry, blocks: vec![entry] });
        }
        None
    }

    /// The trace formed for `head`, if any.
    pub fn trace_for(&self, head: Addr) -> Option<&HotTrace> {
        self.traces.get(&head)
    }

    /// All formed traces.
    pub fn traces(&self) -> impl Iterator<Item = &HotTrace> {
        self.traces.values()
    }

    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_forms_a_trace_at_threshold() {
        let mut tb = TraceBuilder::new(3, 8);
        // Simulate a 2-block loop body: A -> B -> A -> B ...
        let mut formed = None;
        for _ in 0..10 {
            if let Some(t) = tb.on_block(0, 100) {
                formed = Some(t);
                break;
            }
            if let Some(t) = tb.on_block(0, 200) {
                formed = Some(t);
                break;
            }
        }
        let t = formed.expect("hot loop should form a trace");
        assert_eq!(t.head, 100);
        assert_eq!(t.blocks, vec![100, 200]);
        assert!(tb.trace_for(100).is_some());
    }

    #[test]
    fn recording_stops_at_max_blocks() {
        let mut tb = TraceBuilder::new(1, 3);
        // Straight-line distinct blocks.
        assert!(tb.on_block(0, 1).is_none()); // hot immediately, starts recording
        assert!(tb.on_block(0, 2).is_none());
        assert!(tb.on_block(0, 3).is_none());
        let t = tb.on_block(0, 4).expect("max_blocks reached");
        assert_eq!(t.blocks, vec![1, 2, 3]);
    }

    #[test]
    fn cold_blocks_form_no_trace() {
        let mut tb = TraceBuilder::new(100, 8);
        for _ in 0..50 {
            assert!(tb.on_block(0, 7).is_none());
        }
        assert_eq!(tb.trace_count(), 0);
    }

    #[test]
    fn per_thread_recording_is_independent() {
        let mut tb = TraceBuilder::new(1, 8);
        assert!(tb.on_block(0, 10).is_none()); // thread 0 starts recording at 10
        assert!(tb.on_block(1, 20).is_none()); // thread 1 starts recording at 20
        assert!(tb.on_block(0, 11).is_none());
        assert!(tb.on_block(1, 21).is_none());
        let t0 = tb.on_block(0, 10).unwrap(); // cycle back to head
        assert_eq!(t0.blocks, vec![10, 11]);
        let t1 = tb.on_block(1, 20).unwrap();
        assert_eq!(t1.blocks, vec![20, 21]);
    }

    #[test]
    fn existing_trace_head_is_not_recounted() {
        let mut tb = TraceBuilder::new(1, 4);
        tb.on_block(0, 5);
        tb.on_block(0, 6);
        let t = tb.on_block(0, 5).unwrap();
        assert_eq!(t.blocks, vec![5, 6]);
        // Re-entering the head afterwards does not restart recording.
        assert!(tb.on_block(0, 5).is_none());
        assert!(tb.on_block(0, 6).is_none());
        assert_eq!(tb.trace_count(), 1);
    }

    #[test]
    fn counter_is_pruned_when_a_trace_forms() {
        // Regression: `counts` used to keep an entry forever for every
        // head whose trace had already formed.
        let mut tb = TraceBuilder::new(2, 4);
        for head in 0..100u32 {
            let a = head * 10;
            let b = a + 1;
            let mut formed = false;
            for _ in 0..5 {
                formed |= tb.on_block(0, a).is_some();
                formed |= tb.on_block(0, b).is_some();
                if formed {
                    break;
                }
            }
            assert!(formed, "loop at {a} should form a trace");
        }
        assert_eq!(tb.trace_count(), 100);
        // Only the tail blocks (never heads) may still be counted.
        assert!(
            tb.tracked_counters() <= 100,
            "formed heads must not leak counters: {}",
            tb.tracked_counters()
        );
        for head in 0..100u32 {
            assert!(!tb.counts.contains_key(&(head * 10)), "head {head} leaked");
        }
    }

    #[test]
    fn cold_counters_are_bounded() {
        // Regression: a long run over a huge cold footprint used to grow
        // `counts` without bound.
        let mut tb = TraceBuilder::new(1000, 4).with_counter_bound(64);
        for block in 0..10_000u32 {
            assert!(tb.on_block(0, block).is_none());
        }
        assert!(
            tb.tracked_counters() <= 64,
            "cold counters must be bounded: {}",
            tb.tracked_counters()
        );
        assert_eq!(tb.trace_count(), 0);
    }

    #[test]
    fn hot_blocks_survive_cold_counter_decay() {
        let mut tb = TraceBuilder::new(8, 4).with_counter_bound(32);
        // Interleave one genuinely hot block with a stream of cold ones;
        // decay must not stop the hot block from forming a trace.
        let mut formed = false;
        let mut cold = 1000u32;
        for _ in 0..200 {
            formed |= tb.on_block(0, 5).is_some();
            formed |= tb.on_block(0, 6).is_some();
            if formed {
                break;
            }
            cold += 1;
            tb.on_block(0, cold);
        }
        assert!(formed, "the hot loop must still form a trace under decay");
        assert_eq!(tb.trace_for(5).map(|t| t.head), Some(5));
    }
}
