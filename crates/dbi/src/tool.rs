//! The tool (analysis plugin) interface.

use dift_isa::Addr;
use dift_vm::{Machine, Pending, RunResult, StepEffects, ThreadId};

/// An instrumentation tool — the analysis code a DBI user writes.
///
/// All callbacks receive `&mut Machine` so tools can inspect state and,
/// where the technique requires it, mutate it (predicate switching flips
/// branch outcomes, value replacement overwrites operands, environment
/// patching adjusts allocation behaviour).
///
/// Tools model their runtime cost by calling
/// [`Machine::charge`] from their callbacks; the engine never
/// charges implicitly.
pub trait Tool {
    /// Called once before the first instruction.
    fn on_start(&mut self, _m: &mut Machine) {}

    /// Called before each instrumented instruction executes. The pending
    /// descriptor names the thread, address and instruction about to run.
    fn before(&mut self, _m: &mut Machine, _pending: &Pending) {}

    /// Called after each instrumented instruction with its architectural
    /// effects.
    fn after(&mut self, _m: &mut Machine, _fx: &StepEffects) {}

    /// Called when an instrumented thread enters a basic block (the first
    /// time the engine sees the block, `is_new` is true — the analog of
    /// JIT-compiling it).
    fn on_block(&mut self, _m: &mut Machine, _tid: ThreadId, _entry: Addr, _is_new: bool) {}

    /// Called once when the machine stops.
    fn on_finish(&mut self, _m: &mut Machine, _result: &RunResult) {}
}

/// A tool that does nothing — used to measure bare engine dispatch
/// overhead.
#[derive(Default)]
pub struct NullTool;

impl Tool for NullTool {}

/// A tool counting events, for tests and calibration.
#[derive(Default, Debug)]
pub struct CountingTool {
    pub before_calls: u64,
    pub after_calls: u64,
    pub block_entries: u64,
    pub new_blocks: u64,
    pub started: bool,
    pub finished: bool,
}

impl Tool for CountingTool {
    fn on_start(&mut self, _m: &mut Machine) {
        self.started = true;
    }
    fn before(&mut self, _m: &mut Machine, _p: &Pending) {
        self.before_calls += 1;
    }
    fn after(&mut self, _m: &mut Machine, _fx: &StepEffects) {
        self.after_calls += 1;
    }
    fn on_block(&mut self, _m: &mut Machine, _tid: ThreadId, _entry: Addr, is_new: bool) {
        self.block_entries += 1;
        if is_new {
            self.new_blocks += 1;
        }
    }
    fn on_finish(&mut self, _m: &mut Machine, _r: &RunResult) {
        self.finished = true;
    }
}
