//! A profiling tool — the "hello world" of DBI frameworks, and the
//! source of the workload-characterization table in the experiment
//! report (instruction mixes are what make tracing overheads differ
//! across benchmarks).

use crate::tool::Tool;
use dift_isa::{Addr, Opcode};
use dift_vm::{Machine, RunResult, StepEffects, ThreadId};
use std::collections::HashMap;

/// Coarse instruction classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InsnClass {
    Alu,
    Load,
    Store,
    Branch,
    Jump,
    CallRet,
    Io,
    Atomic,
    Thread,
    Other,
}

impl InsnClass {
    pub fn of(op: &Opcode) -> InsnClass {
        match op {
            Opcode::Li { .. } | Opcode::Mov { .. } | Opcode::Bin { .. } | Opcode::BinImm { .. } => {
                InsnClass::Alu
            }
            Opcode::Load { .. } => InsnClass::Load,
            Opcode::Store { .. } => InsnClass::Store,
            Opcode::Branch { .. } => InsnClass::Branch,
            Opcode::Jump { .. } | Opcode::JumpInd { .. } => InsnClass::Jump,
            Opcode::Call { .. } | Opcode::CallInd { .. } | Opcode::Ret => InsnClass::CallRet,
            Opcode::In { .. } | Opcode::Out { .. } => InsnClass::Io,
            Opcode::Atomic { .. } | Opcode::Cas { .. } | Opcode::Fence => InsnClass::Atomic,
            Opcode::Spawn { .. } | Opcode::Join { .. } | Opcode::Yield => InsnClass::Thread,
            _ => InsnClass::Other,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            InsnClass::Alu => "alu",
            InsnClass::Load => "load",
            InsnClass::Store => "store",
            InsnClass::Branch => "branch",
            InsnClass::Jump => "jump",
            InsnClass::CallRet => "call/ret",
            InsnClass::Io => "io",
            InsnClass::Atomic => "atomic",
            InsnClass::Thread => "thread",
            InsnClass::Other => "other",
        }
    }
}

/// Execution profile: instruction mix, block statistics, branch bias.
#[derive(Default, Debug)]
pub struct ProfileTool {
    pub class_counts: HashMap<InsnClass, u64>,
    pub block_entries: u64,
    pub distinct_blocks: u64,
    pub taken_branches: u64,
    pub total_branches: u64,
    pub instrs: u64,
    /// Per-block execution counts (hotness histogram).
    pub block_hits: HashMap<Addr, u64>,
}

impl ProfileTool {
    pub fn new() -> ProfileTool {
        ProfileTool::default()
    }

    /// Fraction of dynamic instructions in `class`.
    pub fn fraction(&self, class: InsnClass) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            *self.class_counts.get(&class).unwrap_or(&0) as f64 / self.instrs as f64
        }
    }

    /// Mean dynamic basic-block length.
    pub fn mean_block_len(&self) -> f64 {
        if self.block_entries == 0 {
            0.0
        } else {
            self.instrs as f64 / self.block_entries as f64
        }
    }

    /// One-shot flush of the profile's headline counters into an
    /// observability recorder (`dbi/profile/*` metrics).
    pub fn record_into<R: dift_obs::Recorder>(&self, obs: &mut R) {
        if R::ENABLED {
            obs.add(dift_obs::Metric::DbiInstrs, self.instrs);
            obs.add(dift_obs::Metric::DbiBlockEntries, self.block_entries);
            obs.add(dift_obs::Metric::DbiDistinctBlocks, self.distinct_blocks);
            obs.add(dift_obs::Metric::DbiBranches, self.total_branches);
            obs.add(dift_obs::Metric::DbiTakenBranches, self.taken_branches);
        }
    }

    /// Dynamic coverage concentration: fraction of block entries landing
    /// on the hottest 10% of blocks (how "loopy" the workload is).
    pub fn hot10_concentration(&self) -> f64 {
        if self.block_hits.is_empty() {
            return 0.0;
        }
        let mut hits: Vec<u64> = self.block_hits.values().copied().collect();
        hits.sort_unstable_by(|a, b| b.cmp(a));
        let top = hits.len().div_ceil(10);
        let hot: u64 = hits[..top].iter().sum();
        hot as f64 / self.block_entries.max(1) as f64
    }
}

impl Tool for ProfileTool {
    fn on_block(&mut self, _m: &mut Machine, _tid: ThreadId, entry: Addr, is_new: bool) {
        self.block_entries += 1;
        if is_new {
            self.distinct_blocks += 1;
        }
        *self.block_hits.entry(entry).or_insert(0) += 1;
    }

    fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
        self.instrs += 1;
        *self.class_counts.entry(InsnClass::of(&fx.insn.op)).or_insert(0) += 1;
        if fx.insn.is_branch() {
            self.total_branches += 1;
            if fx.branch_taken() {
                self.taken_branches += 1;
            }
        }
    }

    fn on_finish(&mut self, _m: &mut Machine, _r: &RunResult) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use dift_isa::{BinOp, BranchCond, ProgramBuilder, Reg};
    use dift_vm::MachineConfig;
    use std::sync::Arc;

    #[test]
    fn profile_counts_classes_and_blocks() {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.li(Reg(1), 4);
        b.label("loop");
        b.li(Reg(2), 100);
        b.store(Reg(1), Reg(2), 0);
        b.load(Reg(3), Reg(2), 0);
        b.bini(BinOp::Sub, Reg(1), Reg(1), 1);
        b.branch(BranchCond::Ne, Reg(1), Reg(0), "loop");
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let m = Machine::new(p, MachineConfig::small());
        let mut prof = ProfileTool::new();
        let mut e = Engine::new(m);
        let r = e.run_tool(&mut prof);

        assert_eq!(prof.instrs, r.steps);
        assert_eq!(*prof.class_counts.get(&InsnClass::Load).unwrap(), 4);
        assert_eq!(*prof.class_counts.get(&InsnClass::Store).unwrap(), 4);
        assert_eq!(prof.total_branches, 4);
        assert_eq!(prof.taken_branches, 3);
        assert!(prof.mean_block_len() > 1.0);
        let sum: u64 = prof.class_counts.values().sum();
        assert_eq!(sum, prof.instrs, "classes partition the stream");
    }

    #[test]
    fn hot_concentration_detects_loops() {
        // Loopy program: concentration near 1; straight-line: lower.
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.li(Reg(1), 50);
        b.label("l");
        b.bini(BinOp::Sub, Reg(1), Reg(1), 1);
        b.branch(BranchCond::Ne, Reg(1), Reg(0), "l");
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let mut prof = ProfileTool::new();
        let mut e = Engine::new(Machine::new(p, MachineConfig::small()));
        e.run_tool(&mut prof);
        assert!(prof.hot10_concentration() > 0.9, "{}", prof.hot10_concentration());
    }
}
