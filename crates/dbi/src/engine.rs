//! The instrumentation engine: drives the VM and dispatches tool
//! callbacks.

use crate::tool::Tool;
use dift_isa::{Addr, Cfg, FuncId};
use dift_vm::{ExitStatus, Machine, RunResult, ThreadId};
use std::collections::{HashMap, HashSet};

/// Which instructions receive instrumentation callbacks.
#[derive(Clone, Debug, Default)]
pub enum InstrumentationScope {
    /// Everything (default).
    #[default]
    All,
    /// Only instructions inside the named functions. Used by ONTRAC's
    /// selective tracing; note that *engine* events stop at the boundary,
    /// and it is the tracer's job to summarize dependences through
    /// unselected code (`dift-ddg`).
    Funcs(HashSet<FuncId>),
}

impl InstrumentationScope {
    /// Build a function scope from names, resolving against `program`.
    pub fn funcs(program: &dift_isa::Program, names: &[&str]) -> InstrumentationScope {
        let set = names.iter().filter_map(|n| program.func_by_name(n)).collect();
        InstrumentationScope::Funcs(set)
    }
}

/// Drives a machine to completion while dispatching to tools.
///
/// Basic blocks are discovered statically (per function) when the engine
/// is constructed — the moral equivalent of the DBI front-end decoding
/// code as it is first reached; the `is_new` flag on block entries
/// reproduces the first-touch distinction.
pub struct Engine {
    machine: Machine,
    scope: InstrumentationScope,
    /// Leaders (block entry addresses) across the whole program.
    leaders: HashSet<Addr>,
    /// Blocks already entered at least once.
    seen_blocks: HashSet<Addr>,
    /// Per-thread flag: the next instrumented instruction begins a block.
    block_pending: HashMap<ThreadId, bool>,
    /// Total instrumented (callback-dispatched) instructions.
    pub instrumented_steps: u64,
}

impl Engine {
    pub fn new(machine: Machine) -> Engine {
        let mut leaders = HashSet::new();
        let program = machine.program().clone();
        for cfg in Cfg::build_all(&program) {
            for b in &cfg.blocks {
                leaders.insert(b.start);
            }
        }
        Engine {
            machine,
            scope: InstrumentationScope::All,
            leaders,
            seen_blocks: HashSet::new(),
            block_pending: HashMap::new(),
            instrumented_steps: 0,
        }
    }

    pub fn with_scope(mut self, scope: InstrumentationScope) -> Engine {
        self.scope = scope;
        self
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Consume the engine, returning the machine (for post-run
    /// inspection when the engine is no longer needed).
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    fn in_scope(&self, addr: Addr) -> bool {
        match &self.scope {
            InstrumentationScope::All => true,
            InstrumentationScope::Funcs(set) => {
                self.machine.program().func_at(addr).map(|f| set.contains(&f)).unwrap_or(false)
            }
        }
    }

    /// Execute one instruction with callbacks; returns machine status.
    pub fn step(&mut self, tools: &mut [&mut dyn Tool]) -> ExitStatus {
        let pending = match self.machine.pending() {
            Some(p) => p,
            None => return self.machine.status(),
        };
        let instrumented = self.in_scope(pending.addr);
        if instrumented {
            // Block-entry dispatch: the pending address is a leader, or
            // the thread was flagged after a control transfer. The flag is
            // consumed either way so it cannot leak into the block body.
            let flagged = self.block_pending.remove(&pending.tid).unwrap_or(false);
            if self.leaders.contains(&pending.addr) || flagged {
                let is_new = self.seen_blocks.insert(pending.addr);
                for t in tools.iter_mut() {
                    t.on_block(&mut self.machine, pending.tid, pending.addr, is_new);
                }
            }
            for t in tools.iter_mut() {
                t.before(&mut self.machine, &pending);
            }
        }
        let status = self.machine.step();
        if instrumented {
            self.instrumented_steps += 1;
            let fx = self.machine.last_step().clone();
            if fx.control.is_some() {
                self.block_pending.insert(fx.tid, true);
            }
            for t in tools.iter_mut() {
                t.after(&mut self.machine, &fx);
            }
        }
        status
    }

    /// Run to completion with callbacks; returns the run summary.
    pub fn run(&mut self, tools: &mut [&mut dyn Tool]) -> RunResult {
        for t in tools.iter_mut() {
            t.on_start(&mut self.machine);
        }
        while self.step(tools) == ExitStatus::Running {}
        // Final summary comes from the machine.
        let result = RunResult {
            status: self.machine.status(),
            steps: self.machine.steps(),
            cycles: self.machine.cycles(),
            threads: self.machine.threads().len(),
            sched_decisions: self.machine.sched_trace().len(),
        };
        for t in tools.iter_mut() {
            t.on_finish(&mut self.machine, &result);
        }
        result
    }

    /// Convenience: run a single tool.
    pub fn run_tool(&mut self, tool: &mut dyn Tool) -> RunResult {
        let mut tools: [&mut dyn Tool; 1] = [tool];
        self.run(&mut tools)
    }

    /// Number of statically discovered basic blocks.
    pub fn block_count(&self) -> usize {
        self.leaders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{CountingTool, NullTool};
    use dift_isa::{BinOp, BranchCond, ProgramBuilder, Reg};
    use dift_vm::MachineConfig;
    use std::sync::Arc;

    fn looping_program() -> Arc<dift_isa::Program> {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.li(Reg(1), 5);
        b.label("loop");
        b.bini(BinOp::Sub, Reg(1), Reg(1), 1);
        b.branch(BranchCond::Ne, Reg(1), Reg(0), "loop");
        b.call("leaf");
        b.halt();
        b.func("leaf");
        b.li(Reg(2), 1);
        b.ret();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn callbacks_fire_for_every_instruction() {
        let m = Machine::new(looping_program(), MachineConfig::small());
        let mut e = Engine::new(m);
        let mut tool = CountingTool::default();
        let r = e.run_tool(&mut tool);
        assert!(tool.started && tool.finished);
        assert_eq!(tool.before_calls, r.steps);
        assert_eq!(tool.after_calls, r.steps);
        assert_eq!(e.instrumented_steps, r.steps);
    }

    #[test]
    fn block_entries_count_loop_iterations() {
        let m = Machine::new(looping_program(), MachineConfig::small());
        let mut e = Engine::new(m);
        let mut tool = CountingTool::default();
        e.run_tool(&mut tool);
        // Blocks: [li], [sub,bne] x5, [call], [halt], [leaf li,ret].
        assert_eq!(tool.new_blocks as usize, 5);
        assert_eq!(tool.block_entries, 1 + 5 + 1 + 1 + 1);
    }

    #[test]
    fn scope_restricts_callbacks_to_selected_functions() {
        let p = looping_program();
        let m = Machine::new(p.clone(), MachineConfig::small());
        let scope = InstrumentationScope::funcs(&p, &["leaf"]);
        let mut e = Engine::new(m).with_scope(scope);
        let mut tool = CountingTool::default();
        let r = e.run_tool(&mut tool);
        assert_eq!(tool.before_calls, 2, "only leaf's two instructions");
        assert!(r.steps > tool.before_calls);
    }

    #[test]
    fn multiple_tools_all_receive_events() {
        let m = Machine::new(looping_program(), MachineConfig::small());
        let mut e = Engine::new(m);
        let mut t1 = CountingTool::default();
        let mut t2 = CountingTool::default();
        {
            let mut tools: [&mut dyn Tool; 2] = [&mut t1, &mut t2];
            e.run(&mut tools);
        }
        assert_eq!(t1.before_calls, t2.before_calls);
        assert!(t1.before_calls > 0);
    }

    #[test]
    fn null_tool_adds_no_cycles() {
        let p = looping_program();
        let mut bare = Machine::new(p.clone(), MachineConfig::small());
        let bare_r = bare.run();

        let m = Machine::new(p, MachineConfig::small());
        let mut e = Engine::new(m);
        let mut tool = NullTool;
        let r = e.run_tool(&mut tool);
        assert_eq!(r.cycles, bare_r.cycles, "engine dispatch itself is free in the cost model");
        assert_eq!(r.steps, bare_r.steps);
    }

    #[test]
    fn block_count_matches_static_discovery() {
        let m = Machine::new(looping_program(), MachineConfig::small());
        let e = Engine::new(m);
        assert_eq!(e.block_count(), 5);
    }

    #[test]
    fn tool_can_mutate_machine_state() {
        // A before-hook that forces r1 = 0 right before the branch,
        // making the loop exit on the first iteration.
        struct Forcer;
        impl Tool for Forcer {
            fn before(&mut self, m: &mut Machine, p: &dift_vm::Pending) {
                if p.insn.is_branch() {
                    m.set_reg(p.tid, Reg(1), 0);
                }
            }
        }
        let m = Machine::new(looping_program(), MachineConfig::small());
        let mut e = Engine::new(m);
        let mut forcer = Forcer;
        let r = e.run_tool(&mut forcer);
        // Unforced: 1 + 5*2 + 1(call) + 2(leaf) + 1(halt) = 15 steps.
        // Forced: single loop iteration = 1 + 2 + 1 + 2 + 1 = 7.
        assert_eq!(r.steps, 7);
    }
}
