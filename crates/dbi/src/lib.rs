//! # dift-dbi — a Pin-style dynamic binary instrumentation framework
//!
//! The paper's systems (ONTRAC, the taint trackers, the lineage tracer)
//! are Pin/Valgrind tools. This crate reproduces the tool-writing model
//! over the `dift-vm` substrate:
//!
//! * [`Tool`] — the callback interface: instruction-level `before`/`after`
//!   hooks, basic-block entry hooks, and lifecycle hooks. `before` hooks
//!   may *mutate* the machine (registers, memory, PC) — that power is what
//!   predicate switching and fault avoidance are built on.
//! * [`Engine`] — drives a [`Machine`](dift_vm::Machine) while dispatching
//!   to any number of tools, discovering basic-block boundaries on the
//!   fly exactly as a JIT-based DBI discovers code.
//! * [`trace::TraceBuilder`] — hot-trace formation (NET-style: when a
//!   block becomes hot, the following block sequence is recorded as a
//!   trace), which ONTRAC uses to extend static dependence inference
//!   across block boundaries.
//! * Function filtering — tools can restrict instrumentation to selected
//!   functions, the mechanism behind ONTRAC's "trace only where the
//!   programmer expects the bug" optimization.
//!
//! Instrumentation *cost* is explicit: a tool charges cycles to the
//! machine via [`dift_vm::Machine::charge`], and every slowdown factor in
//! the experiment suite is a ratio of charged to uncharged cycle counts.

pub mod engine;
pub mod profile;
pub mod tool;
pub mod trace;

pub use engine::{Engine, InstrumentationScope};
pub use profile::{InsnClass, ProfileTool};
pub use tool::{CountingTool, NullTool, Tool};
pub use trace::{HotTrace, TraceBuilder};
