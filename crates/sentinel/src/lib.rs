//! Taint-boundary sentinel: declarative policies over lineage, a
//! replayable attack-scenario corpus, and scored detection quality.
//!
//! The PC-taint detector (crate `dift-taint`) answers *"is a tainted
//! value reaching a dangerous use, and which instruction last wrote
//! it?"* — a fixed, hard-coded boundary. This crate generalizes that
//! into a policy layer:
//!
//! * [`policy`] — the declarative [`TaintBoundary`] language: named
//!   source classes over input channels, sink classes (the three
//!   PC-taint alert kinds plus lineage-only sinks: stored values and
//!   output emissions), lineage predicates ("derived from ≥2 distinct
//!   channels"), and allow/deny/contain verdicts with first-match-wins
//!   evaluation.
//! * [`eval`] — the evaluator. A [`SinkObserver`] (roBDD lineage pass)
//!   captures per-value input sets at sink sites; [`combine_events`]
//!   joins them with the PC-taint engine's alerts and output labels;
//!   [`apply_policy`] yields structured [`SentinelAlert`]s carrying the
//!   rule id, root-cause PC, offending lineage set, and — for `Contain`
//!   verdicts — a stable [`ContainmentReceipt`]. The [`Sentinel`] tool
//!   runs the whole pipeline online.
//! * [`mod@corpus`] — fourteen scenarios in seven attack/benign-near-miss
//!   pairs (the five `dift-attack` vulnerabilities, a mixed-source
//!   write, and cross-tenant exfiltration on the kv server).
//! * [`runner`] — records each scenario, replays it twice under the
//!   sentinel (byte-diffing the outcomes) and once under plain PC-taint
//!   (overhead baseline), and scores recall / precision /
//!   root-cause-hit / replay-determinism / overhead.

pub mod corpus;
pub mod eval;
pub mod policy;
pub mod runner;

pub use corpus::{corpus, untrusted_input_boundary, CorpusConfig, Scenario};
pub use eval::{
    apply_policy, combine_events, ContainmentReceipt, Sentinel, SentinelAlert, SentinelOutcome,
    SinkEvent, SinkObservations, SinkObserver,
};
pub use policy::{
    BoundaryPolicy, LineagePredicate, SinkClass, SourceClass, SourceSpec, TaintBoundary, Verdict,
};
pub use runner::{run_corpus, run_scenario, CorpusOutcome, ScenarioOutcome};
