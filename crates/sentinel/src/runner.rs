//! Corpus runner: record each scenario once, replay it twice under the
//! sentinel (byte-diffing the outcomes), replay it once under plain
//! PC-taint (the overhead baseline), and score the corpus.

use crate::corpus::{corpus, CorpusConfig, Scenario};
use crate::eval::Sentinel;
use dift_replay::{record, replay_full_with_tool};
use dift_taint::{PcTaint, TaintEngine};
use serde::Serialize;

/// Checkpoint interval used when recording corpus scenarios.
const CHECKPOINT_INTERVAL: u64 = 512;

/// Per-scenario scoring detail.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioOutcome {
    pub name: String,
    pub is_attack: bool,
    /// At least one sentinel alert fired.
    pub detected: bool,
    /// The expected rule is among the firing rules (attacks only;
    /// benign twins trivially pass).
    pub rule_hit: bool,
    /// Some alert's root-cause or origin PC names the known root cause
    /// (only scored when the scenario declares one).
    pub root_cause_hit: Option<bool>,
    /// Two deterministic replays produced byte-identical outcomes.
    pub replay_identical: bool,
    pub alerts: usize,
    pub receipts: usize,
    /// Cycles of the sentinel replay vs the plain PC-taint replay.
    pub sentinel_cycles: u64,
    pub taint_cycles: u64,
    pub overhead: f64,
    /// Canonical JSON of the full [`crate::SentinelOutcome`] — the
    /// replay-determinism diff compares these byte-for-byte.
    pub canonical: String,
}

/// Corpus-level detection-quality score.
#[derive(Clone, Debug, Serialize)]
pub struct CorpusOutcome {
    pub scenarios: Vec<ScenarioOutcome>,
    /// Attacks whose expected rule fired / attacks.
    pub recall: f64,
    /// Detected attacks / (detected attacks + alerting benign twins).
    pub precision: f64,
    /// Scenarios with a known root cause whose alerts name it.
    pub root_cause_fraction: f64,
    /// Scenarios whose two sentinel replays were byte-identical.
    pub replay_identical_fraction: f64,
    /// Geometric mean of sentinel cycles / plain PC-taint cycles.
    pub overhead_geomean: f64,
}

/// Record one scenario and score it (two sentinel replays + one plain
/// PC-taint replay).
pub fn run_scenario(s: &Scenario) -> ScenarioOutcome {
    let rec = record(&s.spec, CHECKPOINT_INTERVAL);

    let mut first = Sentinel::new(s.taint_policy, s.boundary.clone());
    let (_, sentinel_result) = replay_full_with_tool(&s.spec, &rec.log, &mut first);
    let first_out = first.outcome.expect("sentinel finalizes on finish");

    let mut second = Sentinel::new(s.taint_policy, s.boundary.clone());
    let (_, _) = replay_full_with_tool(&s.spec, &rec.log, &mut second);
    let second_out = second.outcome.expect("sentinel finalizes on finish");

    let canonical = first_out.canonical_json();
    let replay_identical = canonical == second_out.canonical_json();

    let mut taint = TaintEngine::<PcTaint>::new(s.taint_policy);
    let (_, taint_result) = replay_full_with_tool(&s.spec, &rec.log, &mut taint);

    let detected = !first_out.alerts.is_empty();
    let rule_hit = match s.expect_rule {
        Some(rule) => first_out.alerts.iter().any(|a| a.rule == rule),
        None => true,
    };
    let root_cause_hit = s.root_cause.map(|pc| {
        first_out.alerts.iter().any(|a| a.root_cause_pc == Some(pc) || a.origin_pc == Some(pc))
    });
    let receipts = first_out.alerts.iter().filter(|a| a.receipt.is_some()).count();
    let overhead = sentinel_result.cycles as f64 / taint_result.cycles.max(1) as f64;

    ScenarioOutcome {
        name: s.name.clone(),
        is_attack: s.is_attack,
        detected,
        rule_hit,
        root_cause_hit,
        replay_identical,
        alerts: first_out.alerts.len(),
        receipts,
        sentinel_cycles: sentinel_result.cycles,
        taint_cycles: taint_result.cycles,
        overhead,
        canonical,
    }
}

/// Run and score the whole corpus.
pub fn run_corpus(cfg: CorpusConfig) -> CorpusOutcome {
    let outcomes: Vec<ScenarioOutcome> = corpus(cfg).iter().map(run_scenario).collect();

    let attacks: Vec<&ScenarioOutcome> = outcomes.iter().filter(|o| o.is_attack).collect();
    let benign: Vec<&ScenarioOutcome> = outcomes.iter().filter(|o| !o.is_attack).collect();

    let rule_hits = attacks.iter().filter(|o| o.detected && o.rule_hit).count();
    let recall = rule_hits as f64 / attacks.len().max(1) as f64;

    let tp = attacks.iter().filter(|o| o.detected).count();
    let fp = benign.iter().filter(|o| o.detected).count();
    let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };

    let scored: Vec<bool> = outcomes.iter().filter_map(|o| o.root_cause_hit).collect();
    let root_cause_fraction = if scored.is_empty() {
        1.0
    } else {
        scored.iter().filter(|&&h| h).count() as f64 / scored.len() as f64
    };

    let replay_identical_fraction = outcomes.iter().filter(|o| o.replay_identical).count() as f64
        / outcomes.len().max(1) as f64;

    let overhead_geomean = (outcomes.iter().map(|o| o.overhead.ln()).sum::<f64>()
        / outcomes.len().max(1) as f64)
        .exp();

    CorpusOutcome {
        scenarios: outcomes,
        recall,
        precision,
        root_cause_fraction,
        replay_identical_fraction,
        overhead_geomean,
    }
}

impl CorpusOutcome {
    /// Deterministic per-scenario alert dump, one line per scenario —
    /// the CI replay-determinism step byte-diffs two of these.
    pub fn alerts_dump(&self) -> String {
        let mut out = String::new();
        for s in &self.scenarios {
            out.push_str(&s.name);
            out.push(' ');
            out.push_str(&s.canonical);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorpusConfig {
        CorpusConfig { kv_filler: 2 }
    }

    #[test]
    fn corpus_meets_detection_quality_targets() {
        let out = run_corpus(small());
        assert_eq!(out.scenarios.len(), 14);
        for s in &out.scenarios {
            if s.is_attack {
                assert!(s.detected, "{} must alert", s.name);
                assert!(s.rule_hit, "{} must fire its expected rule", s.name);
            } else {
                assert!(!s.detected, "{} must stay silent (alerts={})", s.name, s.alerts);
            }
        }
        assert!(out.recall >= 0.95, "recall {}", out.recall);
        assert!(out.precision >= 0.90, "precision {}", out.precision);
        assert!(out.root_cause_fraction >= 0.8, "root-cause {}", out.root_cause_fraction);
    }

    #[test]
    fn replays_are_byte_identical() {
        let out = run_corpus(small());
        assert_eq!(out.replay_identical_fraction, 1.0);
        // The whole dump is reproducible too.
        let again = run_corpus(small());
        assert_eq!(out.alerts_dump(), again.alerts_dump());
    }

    #[test]
    fn overhead_is_positive_and_bounded() {
        let out = run_corpus(small());
        assert!(out.overhead_geomean >= 1.0, "sentinel adds work: {}", out.overhead_geomean);
        assert!(out.overhead_geomean < 20.0, "but not unboundedly: {}", out.overhead_geomean);
    }
}
