//! The declarative `TaintBoundary` policy language.
//!
//! A policy is an ordered list of boundary rules plus named source
//! classes. Each rule connects a **source set** (which input channels
//! the data derived from) to a **sink class** (where the data is about
//! to be used) through optional **lineage predicates** (structural
//! conditions on the per-value input set), and names the verdict when
//! it matches. Evaluation is first-match-wins over the rule list; an
//! event no rule matches gets the policy's default verdict.

use serde::Serialize;

/// A named set of input channels ("untrusted", "secret", ...). Classes
/// let several rules share one channel set and keep rule text readable.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct SourceClass {
    pub name: String,
    pub channels: Vec<u16>,
}

/// Which sources a rule is about. A source spec matches an event when
/// the event's lineage **intersects** the spec's channel set — "any
/// byte derived from one of these channels".
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum SourceSpec {
    /// Any source (including events whose lineage is empty).
    Any,
    /// Derived from at least one of these channels.
    Channels(Vec<u16>),
    /// Derived from at least one channel of the named [`SourceClass`].
    /// A spec naming an unknown class never matches.
    Class(String),
}

/// Where tainted data is about to be used. The first three mirror the
/// PC-taint detector's alert kinds; `Output` and `MemWriteValue` are
/// lineage-only sinks the plain detector cannot see.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum SinkClass {
    /// Tainted value used as a load address.
    MemReadAddr,
    /// Tainted value used as a store address.
    MemWriteAddr,
    /// Tainted value used as an indirect jump/call target.
    ControlTarget,
    /// Lineage-carrying value emitted on an output channel. `None` in a
    /// rule matches any channel; events always carry the concrete one.
    Output { channel: Option<u16> },
    /// Lineage-carrying value written to memory (the *stored value*,
    /// not the address — mixed-source-write rules live here).
    MemWriteValue,
}

impl SinkClass {
    /// Does a rule's sink pattern (`self`) cover a concrete event sink?
    pub fn matches(&self, event: &SinkClass) -> bool {
        match (self, event) {
            (SinkClass::Output { channel: None }, SinkClass::Output { .. }) => true,
            _ => self == event,
        }
    }
}

/// A structural condition on the event's lineage set. All predicates of
/// a rule must hold (conjunction).
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum LineagePredicate {
    /// The value derives from at least this many *distinct* input
    /// channels — the "any byte derived from ≥2 input channels" clause.
    MinDistinctChannels(usize),
    /// At least this many input words contributed.
    MinSetSize(usize),
    /// At most this many input words contributed.
    MaxSetSize(usize),
}

impl LineagePredicate {
    pub fn holds(&self, lineage: &[u64], channels: &[u16]) -> bool {
        match *self {
            LineagePredicate::MinDistinctChannels(n) => channels.len() >= n,
            LineagePredicate::MinSetSize(n) => lineage.len() >= n,
            LineagePredicate::MaxSetSize(n) => lineage.len() <= n,
        }
    }
}

/// What happens when a rule matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// Explicitly permitted: the flow is recorded as allowed, no alert.
    Allow,
    /// Forbidden: a [`crate::SentinelAlert`] is raised.
    Deny,
    /// Forbidden *and* contained: the alert carries a
    /// [`crate::ContainmentReceipt`] describing the same-tick action
    /// (halt the transfer, block the access, suppress the emission).
    Contain,
}

/// One source-set → sink-class rule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct TaintBoundary {
    /// Stable rule id — alerts and receipts name it.
    pub id: String,
    pub from: SourceSpec,
    pub sink: SinkClass,
    /// Lineage predicates, all of which must hold.
    pub when: Vec<LineagePredicate>,
    pub verdict: Verdict,
}

impl TaintBoundary {
    pub fn new(id: &str, from: SourceSpec, sink: SinkClass, verdict: Verdict) -> TaintBoundary {
        TaintBoundary { id: id.to_string(), from, sink, when: Vec::new(), verdict }
    }

    /// Add a lineage predicate (builder style).
    pub fn when(mut self, p: LineagePredicate) -> TaintBoundary {
        self.when.push(p);
        self
    }
}

/// A full boundary policy: classes + ordered rules + default verdict.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct BoundaryPolicy {
    pub classes: Vec<SourceClass>,
    /// First matching rule wins.
    pub rules: Vec<TaintBoundary>,
    /// Verdict for events no rule matches.
    pub default_verdict: Verdict,
}

impl Default for BoundaryPolicy {
    fn default() -> Self {
        BoundaryPolicy { classes: Vec::new(), rules: Vec::new(), default_verdict: Verdict::Allow }
    }
}

impl BoundaryPolicy {
    pub fn new() -> BoundaryPolicy {
        BoundaryPolicy::default()
    }

    /// Register a named source class (builder style).
    pub fn class(mut self, name: &str, channels: Vec<u16>) -> BoundaryPolicy {
        self.classes.push(SourceClass { name: name.to_string(), channels });
        self
    }

    /// Append a rule (builder style).
    pub fn rule(mut self, rule: TaintBoundary) -> BoundaryPolicy {
        self.rules.push(rule);
        self
    }

    fn class_channels(&self, name: &str) -> Option<&[u16]> {
        self.classes.iter().find(|c| c.name == name).map(|c| c.channels.as_slice())
    }

    fn source_matches(&self, spec: &SourceSpec, channels: &[u16]) -> bool {
        match spec {
            SourceSpec::Any => true,
            SourceSpec::Channels(set) => channels.iter().any(|c| set.contains(c)),
            SourceSpec::Class(name) => self
                .class_channels(name)
                .is_some_and(|set| channels.iter().any(|c| set.contains(c))),
        }
    }

    /// First-match rule lookup for an event at `sink` whose lineage
    /// resolves to `lineage` (input indices) over `channels`.
    pub fn decide(
        &self,
        sink: &SinkClass,
        lineage: &[u64],
        channels: &[u16],
    ) -> (Option<&TaintBoundary>, Verdict) {
        for rule in &self.rules {
            if rule.sink.matches(sink)
                && self.source_matches(&rule.from, channels)
                && rule.when.iter().all(|p| p.holds(lineage, channels))
            {
                return (Some(rule), rule.verdict);
            }
        }
        (None, self.default_verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BoundaryPolicy {
        BoundaryPolicy::new()
            .class("untrusted", vec![0])
            .class("secret", vec![2, 3])
            .rule(TaintBoundary::new(
                "halt-tainted-control",
                SourceSpec::Class("untrusted".into()),
                SinkClass::ControlTarget,
                Verdict::Contain,
            ))
            .rule(
                TaintBoundary::new(
                    "no-mixed-writes",
                    SourceSpec::Any,
                    SinkClass::MemWriteValue,
                    Verdict::Deny,
                )
                .when(LineagePredicate::MinDistinctChannels(2)),
            )
            .rule(TaintBoundary::new(
                "no-secret-output",
                SourceSpec::Class("secret".into()),
                SinkClass::Output { channel: None },
                Verdict::Deny,
            ))
    }

    #[test]
    fn first_match_wins_and_names_the_rule() {
        let p = policy();
        let (rule, v) = p.decide(&SinkClass::ControlTarget, &[5], &[0]);
        assert_eq!(rule.unwrap().id, "halt-tainted-control");
        assert_eq!(v, Verdict::Contain);
    }

    #[test]
    fn unmatched_event_gets_default_verdict() {
        let p = policy();
        let (rule, v) = p.decide(&SinkClass::MemReadAddr, &[5], &[0]);
        assert!(rule.is_none());
        assert_eq!(v, Verdict::Allow);
    }

    #[test]
    fn lineage_predicate_gates_the_match() {
        let p = policy();
        // One channel: the mixed-write rule must not fire.
        let (rule, _) = p.decide(&SinkClass::MemWriteValue, &[1, 2], &[0]);
        assert!(rule.is_none());
        // Two distinct channels: it must.
        let (rule, v) = p.decide(&SinkClass::MemWriteValue, &[1, 9], &[0, 1]);
        assert_eq!(rule.unwrap().id, "no-mixed-writes");
        assert_eq!(v, Verdict::Deny);
    }

    #[test]
    fn output_rule_with_wildcard_channel_matches_any_concrete_channel() {
        let p = policy();
        for ch in [0u16, 1, 7] {
            let (rule, _) = p.decide(&SinkClass::Output { channel: Some(ch) }, &[3], &[2]);
            assert_eq!(rule.unwrap().id, "no-secret-output", "channel {ch}");
        }
        // Non-secret lineage passes through.
        let (rule, _) = p.decide(&SinkClass::Output { channel: Some(1) }, &[3], &[1]);
        assert!(rule.is_none());
    }

    #[test]
    fn unknown_class_never_matches() {
        let p = BoundaryPolicy::new().rule(TaintBoundary::new(
            "ghost",
            SourceSpec::Class("no-such-class".into()),
            SinkClass::ControlTarget,
            Verdict::Deny,
        ));
        let (rule, v) = p.decide(&SinkClass::ControlTarget, &[1], &[0]);
        assert!(rule.is_none());
        assert_eq!(v, Verdict::Allow);
    }

    #[test]
    fn set_size_predicates() {
        assert!(LineagePredicate::MinSetSize(2).holds(&[1, 2], &[0]));
        assert!(!LineagePredicate::MinSetSize(3).holds(&[1, 2], &[0]));
        assert!(LineagePredicate::MaxSetSize(2).holds(&[1, 2], &[0]));
        assert!(!LineagePredicate::MaxSetSize(1).holds(&[1, 2], &[0]));
    }
}
