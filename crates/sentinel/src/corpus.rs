//! The attack-scenario corpus.
//!
//! Fourteen scenarios in seven attack/benign pairs. Every attack has a
//! *benign near-miss twin* — same program, input driven to the legal
//! boundary of the vulnerable path — that must NOT alert. Twins are
//! what pins precision: a sentinel that fires whenever the copy loop
//! runs long scores recall 1.0 but fails every twin.
//!
//! * Five pairs come from the `dift-attack` vulnerability suite
//!   (function-pointer overflow, unchecked table index, format-string
//!   write primitive, heap overflow, integer-overflow length check),
//!   deployed under the standard untrusted-input boundary policy.
//! * One pair exercises the mixed-source-write rule (`MinDistinctChannels`
//!   lineage predicate): a value combining two input channels is stored
//!   — the twin combines two words of the *same* channel.
//! * One pair stages cross-tenant exfiltration on the kv-server
//!   workload: a public tenant GETs a key the secret tenant PUT, so the
//!   reply's lineage crosses the tenant boundary on the shared reply
//!   channel — the twin GETs the public tenant's own key.

use crate::policy::{
    BoundaryPolicy, LineagePredicate, SinkClass, SourceSpec, TaintBoundary, Verdict,
};
use dift_attack::all_cases;
use dift_isa::{Addr, BinOp, ProgramBuilder, Reg};
use dift_replay::RunSpec;
use dift_taint::TaintPolicy;
use dift_vm::MachineConfig;
use dift_workloads::server::{server_with_streams, ServerConfig};
use std::sync::Arc;

/// One corpus entry: a recorded-replayable run spec plus the boundary
/// policy it is deployed under and the expected outcome.
pub struct Scenario {
    pub name: String,
    pub description: &'static str,
    pub spec: RunSpec,
    /// Policy for the sentinel's internal PC-taint engine.
    pub taint_policy: TaintPolicy,
    pub boundary: BoundaryPolicy,
    /// True for the seven attacks, false for the seven benign twins.
    pub is_attack: bool,
    /// The rule expected to fire (attacks only).
    pub expect_rule: Option<&'static str>,
    /// Known root-cause PC when the scenario has one (the five
    /// vulnerability-suite attacks).
    pub root_cause: Option<Addr>,
}

/// Corpus scale knobs (the CI gate runs a smaller kv workload).
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Filler PUT requests issued by the kv tenants before the probed
    /// GET (larger = longer exfil scenarios).
    pub kv_filler: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { kv_filler: 6 }
    }
}

/// The standard boundary policy for untrusted single-channel programs:
/// channel 0 is the attacker-facing input; derived data must not reach
/// control transfers (contained) or memory addressing (denied).
pub fn untrusted_input_boundary() -> BoundaryPolicy {
    BoundaryPolicy::new()
        .class("untrusted", vec![0])
        .rule(TaintBoundary::new(
            "halt-tainted-control",
            SourceSpec::Class("untrusted".into()),
            SinkClass::ControlTarget,
            Verdict::Contain,
        ))
        .rule(TaintBoundary::new(
            "block-tainted-store",
            SourceSpec::Class("untrusted".into()),
            SinkClass::MemWriteAddr,
            Verdict::Deny,
        ))
        .rule(TaintBoundary::new(
            "block-tainted-load",
            SourceSpec::Class("untrusted".into()),
            SinkClass::MemReadAddr,
            Verdict::Deny,
        ))
}

/// Which rule detects each vulnerability-suite case.
fn expected_rule_for(case_name: &str) -> &'static str {
    match case_name {
        "format-write" => "block-tainted-store",
        "heap-overflow" => "block-tainted-load",
        // fptr-overflow, boundary-error, int-overflow hijack control.
        _ => "halt-tainted-control",
    }
}

fn vuln_pairs() -> Vec<Scenario> {
    let mut out = Vec::new();
    for case in all_cases() {
        let spec = RunSpec::new(case.program.clone(), MachineConfig::small())
            .with_input(0, case.attack_input.clone());
        out.push(Scenario {
            name: format!("{}.attack", case.name),
            description: case.description,
            spec,
            taint_policy: case.policy,
            boundary: untrusted_input_boundary(),
            is_attack: true,
            expect_rule: Some(expected_rule_for(case.name)),
            root_cause: Some(case.root_cause),
        });
        let spec = RunSpec::new(case.program.clone(), MachineConfig::small())
            .with_input(0, case.near_miss_input.clone());
        out.push(Scenario {
            name: format!("{}.near-miss", case.name),
            description: case.description,
            spec,
            taint_policy: case.policy,
            boundary: untrusted_input_boundary(),
            is_attack: false,
            expect_rule: None,
            root_cause: None,
        });
    }
    out
}

/// Mixed-source write: the attack stores a value derived from BOTH
/// input channels; the twin derives from two words of channel 0 only —
/// same set size, one channel, so only the `MinDistinctChannels`
/// predicate separates them.
fn mixed_source_pair() -> Vec<Scenario> {
    fn boundary() -> BoundaryPolicy {
        BoundaryPolicy::new().rule(
            TaintBoundary::new(
                "no-mixed-writes",
                SourceSpec::Any,
                SinkClass::MemWriteValue,
                Verdict::Deny,
            )
            .when(LineagePredicate::MinDistinctChannels(2)),
        )
    }
    fn program(two_channels: bool) -> RunSpec {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.input(Reg(2), if two_channels { 1 } else { 0 });
        b.bin(BinOp::Add, Reg(3), Reg(1), Reg(2));
        b.li(Reg(4), 420);
        b.store(Reg(3), Reg(4), 0);
        b.load(Reg(5), Reg(4), 0);
        b.output(Reg(5), 0);
        b.halt();
        let spec = RunSpec::new(Arc::new(b.build().unwrap()), MachineConfig::small());
        if two_channels {
            spec.with_input(0, vec![7]).with_input(1, vec![9])
        } else {
            spec.with_input(0, vec![7, 9])
        }
    }
    vec![
        Scenario {
            name: "mixed-source-write.attack".into(),
            description: "stored value blends two input channels",
            spec: program(true),
            taint_policy: TaintPolicy::propagate_only(),
            boundary: boundary(),
            is_attack: true,
            expect_rule: Some("no-mixed-writes"),
            root_cause: None,
        },
        Scenario {
            name: "mixed-source-write.near-miss".into(),
            description: "stored value blends two words of ONE channel",
            spec: program(false),
            taint_policy: TaintPolicy::propagate_only(),
            boundary: boundary(),
            is_attack: false,
            expect_rule: None,
            root_cause: None,
        },
    ]
}

/// Cross-tenant exfiltration on the kv server: worker 0 serves the
/// public tenant (channel 1), worker 1 the secret tenant (channel 2).
/// Both reply on the shared output channel 1. The attack GET names a
/// key the secret tenant PUT, so the reply derives from channel-2
/// input; the twin GETs the public tenant's own key.
fn exfil_pair(cfg: CorpusConfig) -> Vec<Scenario> {
    fn boundary() -> BoundaryPolicy {
        BoundaryPolicy::new().class("secret", vec![2]).rule(TaintBoundary::new(
            "no-cross-tenant-exfil",
            SourceSpec::Class("secret".into()),
            SinkClass::Output { channel: Some(1) },
            Verdict::Contain,
        ))
    }
    fn spec(cfg: CorpusConfig, get_key: u64) -> RunSpec {
        // Public tenant: filler PUTs of its own keys, then the probed
        // GET last (the filler also lets the secret tenant's PUTs land
        // first under the round-robin schedule).
        let mut public = Vec::new();
        for i in 0..cfg.kv_filler {
            public.extend_from_slice(&[1, 20 + i, 5_000 + i]);
        }
        public.extend_from_slice(&[2, get_key, 0]);
        // Secret tenant: its PUTs, then filler PUTs of other keys.
        let mut secret = Vec::new();
        secret.extend_from_slice(&[1, 10, 777]);
        secret.extend_from_slice(&[1, 11, 888]);
        for i in 0..cfg.kv_filler {
            secret.extend_from_slice(&[1, 40 + i, 9_000 + i]);
        }
        let server_cfg = ServerConfig { workers: 2, requests_per_worker: 0, ..Default::default() };
        let w = server_with_streams(server_cfg, vec![public, secret]);
        let mut spec = RunSpec::new(w.program.clone(), w.config());
        for (ch, vals) in &w.inputs {
            spec = spec.with_input(*ch, vals.clone());
        }
        spec
    }
    vec![
        Scenario {
            name: "kv-exfil.attack".into(),
            description: "public tenant GETs the secret tenant's key",
            spec: spec(cfg, 10),
            taint_policy: TaintPolicy::propagate_only(),
            boundary: boundary(),
            is_attack: true,
            expect_rule: Some("no-cross-tenant-exfil"),
            root_cause: None,
        },
        Scenario {
            name: "kv-exfil.near-miss".into(),
            description: "public tenant GETs its own key",
            spec: spec(cfg, 20),
            taint_policy: TaintPolicy::propagate_only(),
            boundary: boundary(),
            is_attack: false,
            expect_rule: None,
            root_cause: None,
        },
    ]
}

/// The full corpus: 7 attacks + 7 benign twins.
pub fn corpus(cfg: CorpusConfig) -> Vec<Scenario> {
    let mut out = vuln_pairs();
    out.extend(mixed_source_pair());
    out.extend(exfil_pair(cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_balanced_and_named() {
        let c = corpus(CorpusConfig::default());
        assert_eq!(c.len(), 14);
        assert_eq!(c.iter().filter(|s| s.is_attack).count(), 7);
        for s in &c {
            assert_eq!(s.is_attack, s.expect_rule.is_some(), "{}", s.name);
            assert!(s.name.ends_with(".attack") || s.name.ends_with(".near-miss"), "{}", s.name);
        }
        // Pairwise: every attack has a twin on the same stem.
        for s in c.iter().filter(|s| s.is_attack) {
            let stem = s.name.strip_suffix(".attack").unwrap();
            assert!(
                c.iter().any(|t| !t.is_attack && t.name == format!("{stem}.near-miss")),
                "{stem} has no twin"
            );
        }
    }

    #[test]
    fn scenario_programs_complete() {
        for s in corpus(CorpusConfig::default()) {
            let r = s.spec.machine().run();
            assert!(r.status.is_clean(), "{}: {:?}", s.name, r.status);
        }
    }
}
