//! Sink observation and boundary-policy evaluation.
//!
//! The evaluator is split into three pure stages so the differential
//! tests can drive them with taint state produced by *any* engine
//! (plain, epoch-parallel, summary-cached):
//!
//! 1. [`SinkObserver`] — a lineage pass over the step stream that
//!    captures, at every potential sink site, the per-value input set:
//!    the address register's lineage *before* the step (matching the
//!    taint engine's check-before-write order), the stored value's
//!    lineage *after* it (exact even for atomics), and each emitted
//!    word's lineage.
//! 2. [`combine_events`] — joins the observations with the PC-taint
//!    engine's alerts and output labels into [`SinkEvent`]s. The join
//!    key is the step index: the ISA has at most one address-forming
//!    register per instruction, so an alert's step uniquely names the
//!    offending register without widening `TaintAlert`.
//! 3. [`apply_policy`] — first-match rule evaluation producing
//!    structured [`SentinelAlert`]s with root-cause PCs, offending
//!    lineage sets, and containment receipts.

use crate::policy::{BoundaryPolicy, SinkClass, Verdict};
use dift_dbi::Tool;
use dift_isa::{Addr, MemAddr};
use dift_lineage::{BddBackend, LineageEngine};
use dift_obs::{Metric, NoopRecorder, Recorder};
use dift_taint::{AlertKind, PcTaint, TaintAlert, TaintEngine, TaintPolicy};
use dift_vm::{Machine, RunResult, StepEffects, ThreadId};
use serde::Serialize;
use std::collections::BTreeMap;

/// Per-value input sets captured at sink sites, plus the channel map
/// needed to resolve input indices to channels.
#[derive(Clone, Debug, Default)]
pub struct SinkObservations {
    /// step → lineage of the address-forming register, pre-state.
    /// Only non-empty sets are recorded.
    pub addr_lineage: BTreeMap<u64, Vec<u64>>,
    /// `(step, tid, at, cell, lineage)` per lineage-carrying store,
    /// post-state — the cell then holds exactly the stored set.
    pub stores: Vec<(u64, ThreadId, Addr, MemAddr, Vec<u64>)>,
    /// `(step, tid, at, channel, emit index, lineage)` per
    /// lineage-carrying output word.
    pub outputs: Vec<(u64, ThreadId, Addr, u16, u64, Vec<u64>)>,
    /// Channel that produced each input index.
    pub input_channels: Vec<u16>,
}

impl SinkObservations {
    /// Observations from an epoch-sharded lineage run
    /// (`dift_multicore::shard_lineage_stream` with sink capture on):
    /// the shards' composed [`SinkLog`] carries the same captures the
    /// serial [`SinkObserver`] would have made, in the same order;
    /// `input_channels` comes from the composed engine. The resulting
    /// events and policy outcomes are byte-identical to the serial path.
    ///
    /// [`SinkLog`]: dift_lineage::SinkLog
    pub fn from_sharded(log: dift_lineage::SinkLog, input_channels: Vec<u16>) -> SinkObservations {
        SinkObservations {
            addr_lineage: log.addr_lineage,
            stores: log.stores,
            outputs: log.outputs,
            input_channels,
        }
    }

    /// Distinct channels behind a lineage set, sorted.
    pub fn channels_of(&self, lineage: &[u64]) -> Vec<u16> {
        let mut chs: Vec<u16> =
            lineage.iter().filter_map(|&i| self.input_channels.get(i as usize).copied()).collect();
        chs.sort_unstable();
        chs.dedup();
        chs
    }
}

/// The lineage pass: a [`LineageEngine`] over the roBDD backend plus
/// sink-site capture. Machine-free (`process` takes only the step
/// effects and returns the cycle charge), so it runs identically online
/// as part of [`Sentinel`] or offline over a captured step stream.
pub struct SinkObserver {
    lineage: LineageEngine<BddBackend>,
    obs: SinkObservations,
}

impl Default for SinkObserver {
    fn default() -> Self {
        SinkObserver::new()
    }
}

/// Hard ceiling on materialized sink-lineage sets: the full 16-bit
/// input-id universe. Within the observer's id space this truncates
/// nothing, so captures stay exact; it makes the enumeration cost of a
/// sink event explicit (O(set), at most 64K) instead of trusting the
/// set representation never to hold a wider universe.
const MAX_SINK_SET: usize = 1 << 16;

impl SinkObserver {
    /// Observer with the standard 16-bit input-id space (64K inputs).
    pub fn new() -> SinkObserver {
        SinkObserver {
            lineage: LineageEngine::new(BddBackend::new(16)),
            obs: SinkObservations::default(),
        }
    }

    /// Apply one step and capture sink-site lineage. Returns the cycle
    /// charge (lineage bookkeeping + set unions).
    pub fn process(&mut self, fx: &StepEffects) -> u64 {
        // Pre-state: the address register's lineage as the taint
        // engine's checks see it (before this step's register write —
        // exact even when a load clobbers its own base register).
        if let Some(r) = fx.insn.addr_uses().as_slice().first() {
            let elems = self.lineage.reg_elements_up_to(fx.tid, r.index(), MAX_SINK_SET);
            if !elems.is_empty() {
                self.obs.addr_lineage.insert(fx.step, elems);
            }
        }

        let charge = self.lineage.process(fx);

        // Post-state: the written cell now holds exactly the stored set
        // (for atomics that is union(value reg, old cell) — reading the
        // cell back is what makes this exact).
        if let Some((cell, _, _)) = fx.mem_write {
            let elems = self.lineage.mem_elements_up_to(cell, MAX_SINK_SET);
            if !elems.is_empty() {
                self.obs.stores.push((fx.step, fx.tid, fx.addr, cell, elems));
            }
        }
        if fx.output.is_some() {
            // `LineageEngine::process` pushed this step's entry last.
            if let Some((ch, idx, elems)) = self.lineage.outputs.last() {
                if !elems.is_empty() {
                    self.obs.outputs.push((fx.step, fx.tid, fx.addr, *ch, *idx, elems.clone()));
                }
            }
        }
        charge
    }

    /// The captured observations (the channel map is refreshed first).
    pub fn observations(&mut self) -> &SinkObservations {
        self.obs.input_channels = self.lineage.input_channels().to_vec();
        &self.obs
    }

    pub fn lineage(&self) -> &LineageEngine<BddBackend> {
        &self.lineage
    }
}

/// One policy-relevant use of derived data, ready for rule evaluation.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SinkEvent {
    pub step: u64,
    pub tid: ThreadId,
    /// Instruction performing the use.
    pub at: Addr,
    pub sink: SinkClass,
    /// Input indices the value derives from (sorted).
    pub lineage: Vec<u64>,
    /// Distinct input channels behind `lineage` (sorted).
    pub channels: Vec<u16>,
    /// PC-taint root-cause candidate: the most recent tainted writer of
    /// the offending value.
    pub root_cause_pc: Option<Addr>,
    /// When the offending value came from memory, the corrupted cell's
    /// last tainted writer — the paper's root-cause pointer.
    pub origin_pc: Option<Addr>,
}

fn sink_rank(sink: &SinkClass) -> u8 {
    match sink {
        SinkClass::MemReadAddr | SinkClass::MemWriteAddr | SinkClass::ControlTarget => 0,
        SinkClass::MemWriteValue => 1,
        SinkClass::Output { .. } => 2,
    }
}

/// Join sink observations with a PC-taint engine's alerts and output
/// labels into an ordered event list. Works on any engine's output as
/// long as it is bit-identical to the serial one — which the epoch and
/// summary-cache engines guarantee.
pub fn combine_events(
    obs: &SinkObservations,
    alerts: &[TaintAlert<PcTaint>],
    output_labels: &[(u16, u64, PcTaint)],
) -> Vec<SinkEvent> {
    let mut events = Vec::new();
    for a in alerts {
        let sink = match a.kind {
            AlertKind::TaintedLoadAddr => SinkClass::MemReadAddr,
            AlertKind::TaintedStoreAddr => SinkClass::MemWriteAddr,
            AlertKind::TaintedControl => SinkClass::ControlTarget,
        };
        let lineage = obs.addr_lineage.get(&a.step).cloned().unwrap_or_default();
        let channels = obs.channels_of(&lineage);
        events.push(SinkEvent {
            step: a.step,
            tid: a.tid,
            at: a.at,
            sink,
            lineage,
            channels,
            root_cause_pc: a.label.pc(),
            origin_pc: a.origin.as_ref().and_then(|(_, l)| l.pc()),
        });
    }
    for (step, tid, at, _cell, lineage) in &obs.stores {
        let channels = obs.channels_of(lineage);
        events.push(SinkEvent {
            step: *step,
            tid: *tid,
            at: *at,
            sink: SinkClass::MemWriteValue,
            lineage: lineage.clone(),
            channels,
            root_cause_pc: None,
            origin_pc: None,
        });
    }
    for (step, tid, at, ch, idx, lineage) in &obs.outputs {
        let channels = obs.channels_of(lineage);
        let root_cause_pc =
            output_labels.iter().find(|(c, i, _)| c == ch && i == idx).and_then(|(_, _, l)| l.pc());
        events.push(SinkEvent {
            step: *step,
            tid: *tid,
            at: *at,
            sink: SinkClass::Output { channel: Some(*ch) },
            lineage: lineage.clone(),
            channels,
            root_cause_pc,
            origin_pc: None,
        });
    }
    // One instruction can appear as an address alert AND a value store
    // (a store through a tainted pointer): order within a step by sink
    // class so the stream is canonical.
    events.sort_by_key(|e| (e.step, sink_rank(&e.sink)));
    events
}

/// Same-tick containment action, issued with a `Contain` verdict.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ContainmentReceipt {
    /// Stable id (FNV-1a of rule id, step, and site) so two replays of
    /// the same scenario produce byte-identical receipts.
    pub receipt_id: u64,
    pub rule: String,
    /// What was contained: `halt-control`, `block-store`, `block-load`,
    /// `quarantine-cell`, or `suppress-output:<ch>`.
    pub action: String,
    pub step: u64,
}

fn receipt_id(rule: &str, step: u64, at: Addr) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in rule.bytes() {
        eat(b);
    }
    for b in step.to_le_bytes() {
        eat(b);
    }
    for b in at.to_le_bytes() {
        eat(b);
    }
    h
}

fn containment_action(sink: &SinkClass) -> String {
    match sink {
        SinkClass::ControlTarget => "halt-control".to_string(),
        SinkClass::MemWriteAddr => "block-store".to_string(),
        SinkClass::MemReadAddr => "block-load".to_string(),
        SinkClass::MemWriteValue => "quarantine-cell".to_string(),
        SinkClass::Output { channel } => match channel {
            Some(ch) => format!("suppress-output:{ch}"),
            None => "suppress-output".to_string(),
        },
    }
}

/// A boundary violation: which rule fired, where, on what lineage, and
/// — via PC taint — the root-cause candidate instruction.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SentinelAlert {
    pub rule: String,
    pub verdict: Verdict,
    pub step: u64,
    pub tid: ThreadId,
    pub at: Addr,
    pub sink: SinkClass,
    pub root_cause_pc: Option<Addr>,
    pub origin_pc: Option<Addr>,
    /// The offending lineage set (input indices, sorted).
    pub lineage: Vec<u64>,
    pub channels: Vec<u16>,
    /// Present iff the verdict was `Contain`.
    pub receipt: Option<ContainmentReceipt>,
}

/// Result of evaluating a policy over an event stream.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SentinelOutcome {
    pub events: Vec<SinkEvent>,
    pub alerts: Vec<SentinelAlert>,
    /// Events that ended in `Allow` (by rule or default).
    pub allowed: u64,
}

impl SentinelOutcome {
    /// Canonical byte representation — the replay-determinism diff and
    /// the differential proptests compare these byte-for-byte.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("outcome serializes")
    }
}

/// Evaluate a policy over combined events (first match wins per event).
pub fn apply_policy(policy: &BoundaryPolicy, events: Vec<SinkEvent>) -> SentinelOutcome {
    let mut alerts = Vec::new();
    let mut allowed = 0u64;
    for e in &events {
        let (rule, verdict) = policy.decide(&e.sink, &e.lineage, &e.channels);
        match verdict {
            Verdict::Allow => allowed += 1,
            Verdict::Deny | Verdict::Contain => {
                let rule_id =
                    rule.map(|r| r.id.clone()).unwrap_or_else(|| "default-deny".to_string());
                let receipt = (verdict == Verdict::Contain).then(|| ContainmentReceipt {
                    receipt_id: receipt_id(&rule_id, e.step, e.at),
                    rule: rule_id.clone(),
                    action: containment_action(&e.sink),
                    step: e.step,
                });
                alerts.push(SentinelAlert {
                    rule: rule_id,
                    verdict,
                    step: e.step,
                    tid: e.tid,
                    at: e.at,
                    sink: e.sink.clone(),
                    root_cause_pc: e.root_cause_pc,
                    origin_pc: e.origin_pc,
                    lineage: e.lineage.clone(),
                    channels: e.channels.clone(),
                    receipt,
                });
            }
        }
    }
    SentinelOutcome { events, alerts, allowed }
}

/// The online sentinel: one DBI tool running PC-taint detection and the
/// lineage sink observer side by side, evaluating the boundary policy
/// when the run finishes. Cycle accounting: the taint engine charges
/// its usual costs ([`dift_taint::costs::TAINT_PER_INSN`] etc. when the
/// taint policy says so) and the observer charges lineage costs on top
/// — the sentinel-overhead experiment measures exactly this increment.
pub struct Sentinel<R: Recorder = NoopRecorder> {
    pub taint: TaintEngine<PcTaint>,
    pub observer: SinkObserver,
    pub policy: BoundaryPolicy,
    /// Populated by `on_finish` (or an explicit [`Sentinel::finalize`]).
    pub outcome: Option<SentinelOutcome>,
    /// The probe sink (drain after the run).
    pub obs: R,
}

impl Sentinel {
    pub fn new(taint_policy: TaintPolicy, policy: BoundaryPolicy) -> Sentinel {
        Sentinel::with_recorder(taint_policy, policy, NoopRecorder)
    }
}

impl<R: Recorder> Sentinel<R> {
    pub fn with_recorder(taint_policy: TaintPolicy, policy: BoundaryPolicy, obs: R) -> Sentinel<R> {
        Sentinel {
            taint: TaintEngine::new(taint_policy),
            observer: SinkObserver::new(),
            policy,
            outcome: None,
            obs,
        }
    }

    /// Combine observations with taint state and evaluate the policy.
    pub fn finalize(&mut self) -> &SentinelOutcome {
        let events = combine_events(
            self.observer.observations(),
            &self.taint.alerts,
            &self.taint.output_labels,
        );
        let outcome = apply_policy(&self.policy, events);
        if R::ENABLED {
            self.obs.add(Metric::SentinelSinkEvents, outcome.events.len() as u64);
            self.obs.add(Metric::SentinelAlerts, outcome.alerts.len() as u64);
            let receipts = outcome.alerts.iter().filter(|a| a.receipt.is_some()).count();
            self.obs.add(Metric::SentinelReceipts, receipts as u64);
            self.obs.add(Metric::SentinelAllowed, outcome.allowed);
            for e in &outcome.events {
                self.obs.observe(Metric::SentinelLineageWidth, e.lineage.len() as u64);
            }
        }
        self.outcome = Some(outcome);
        self.outcome.as_ref().expect("just set")
    }
}

impl<R: Recorder> Tool for Sentinel<R> {
    fn on_start(&mut self, m: &mut Machine) {
        self.taint.on_start(m);
    }

    fn after(&mut self, m: &mut Machine, fx: &StepEffects) {
        self.taint.after(m, fx);
        let c = self.observer.process(fx);
        m.charge(c);
    }

    fn on_finish(&mut self, m: &mut Machine, r: &RunResult) {
        self.taint.on_finish(m, r);
        self.finalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{LineagePredicate, SourceSpec, TaintBoundary};
    use dift_dbi::Engine;
    use dift_isa::{BinOp, ProgramBuilder, Reg};
    use dift_vm::MachineConfig;
    use std::sync::Arc;

    /// Two channels in, mixed store, tainted-address store, output.
    fn run_sentinel(policy: BoundaryPolicy) -> Sentinel {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.input(Reg(2), 1);
        b.bin(BinOp::Add, Reg(3), Reg(1), Reg(2)); // mixed-lineage value
        b.li(Reg(4), 400);
        b.store(Reg(3), Reg(4), 0); // MemWriteValue sink, channels {0,1}
        b.bini(BinOp::And, Reg(5), Reg(1), 63);
        b.addi(Reg(5), Reg(5), 300);
        b.store(Reg(1), Reg(5), 0); // tainted store address -> alert
        b.output(Reg(3), 2); // Output sink, channels {0,1}
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let mut m = Machine::new(p, MachineConfig::small());
        m.feed_input(0, &[7]);
        m.feed_input(1, &[9]);
        let mut s = Sentinel::new(TaintPolicy::default(), policy);
        Engine::new(m).run_tool(&mut s);
        s
    }

    fn mixed_policy() -> BoundaryPolicy {
        BoundaryPolicy::new()
            .class("untrusted", vec![0])
            .rule(TaintBoundary::new(
                "block-tainted-store",
                SourceSpec::Class("untrusted".into()),
                SinkClass::MemWriteAddr,
                Verdict::Contain,
            ))
            .rule(
                TaintBoundary::new(
                    "no-mixed-writes",
                    SourceSpec::Any,
                    SinkClass::MemWriteValue,
                    Verdict::Deny,
                )
                .when(LineagePredicate::MinDistinctChannels(2)),
            )
    }

    #[test]
    fn sentinel_raises_structured_alerts_with_lineage() {
        let s = run_sentinel(mixed_policy());
        let out = s.outcome.expect("finalized on finish");
        let rules: Vec<&str> = out.alerts.iter().map(|a| a.rule.as_str()).collect();
        assert!(rules.contains(&"no-mixed-writes"), "{rules:?}");
        assert!(rules.contains(&"block-tainted-store"), "{rules:?}");
        let mixed = out.alerts.iter().find(|a| a.rule == "no-mixed-writes").unwrap();
        assert_eq!(mixed.channels, vec![0, 1]);
        assert_eq!(mixed.lineage.len(), 2);
        assert_eq!(mixed.verdict, Verdict::Deny);
        assert!(mixed.receipt.is_none());
        let store = out.alerts.iter().find(|a| a.rule == "block-tainted-store").unwrap();
        assert_eq!(store.verdict, Verdict::Contain);
        let receipt = store.receipt.as_ref().expect("contain carries a receipt");
        assert_eq!(receipt.action, "block-store");
        assert!(store.root_cause_pc.is_some(), "PC taint names the tainted writer");
    }

    #[test]
    fn allow_rule_suppresses_the_alert_and_counts() {
        let policy = BoundaryPolicy::new().rule(TaintBoundary::new(
            "writes-are-fine",
            SourceSpec::Any,
            SinkClass::MemWriteValue,
            Verdict::Allow,
        ));
        let s = run_sentinel(policy);
        let out = s.outcome.unwrap();
        assert!(out.alerts.is_empty());
        assert!(out.allowed >= 2, "store + output events allowed: {}", out.allowed);
        assert!(!out.events.is_empty());
    }

    #[test]
    fn outcome_is_deterministic_across_runs() {
        let a = run_sentinel(mixed_policy()).outcome.unwrap().canonical_json();
        let b = run_sentinel(mixed_policy()).outcome.unwrap().canonical_json();
        assert_eq!(a, b);
    }

    #[test]
    fn offline_pipeline_matches_online_tool() {
        // Drive the observer offline over a captured stream and compare
        // with the online Sentinel outcome byte-for-byte.
        let online = run_sentinel(mixed_policy());
        let online_json = online.outcome.as_ref().unwrap().canonical_json();

        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.input(Reg(2), 1);
        b.bin(BinOp::Add, Reg(3), Reg(1), Reg(2));
        b.li(Reg(4), 400);
        b.store(Reg(3), Reg(4), 0);
        b.bini(BinOp::And, Reg(5), Reg(1), 63);
        b.addi(Reg(5), Reg(5), 300);
        b.store(Reg(1), Reg(5), 0);
        b.output(Reg(3), 2);
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let mut m = Machine::new(p, MachineConfig::small());
        m.feed_input(0, &[7]);
        m.feed_input(1, &[9]);

        struct Cap(Vec<StepEffects>);
        impl Tool for Cap {
            fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
                self.0.push(fx.clone());
            }
        }
        let mut cap = Cap(Vec::new());
        Engine::new(m).run_tool(&mut cap);

        let mut taint = TaintEngine::<PcTaint>::new(TaintPolicy::default());
        let mut observer = SinkObserver::new();
        for fx in &cap.0 {
            taint.process(fx);
            observer.process(fx);
        }
        let events = combine_events(observer.observations(), &taint.alerts, &taint.output_labels);
        let offline = apply_policy(&mixed_policy(), events);
        assert_eq!(offline.canonical_json(), online_json);
    }

    #[test]
    fn receipt_ids_are_stable_but_site_distinct() {
        let a = receipt_id("rule-a", 10, 5);
        assert_eq!(a, receipt_id("rule-a", 10, 5));
        assert_ne!(a, receipt_id("rule-a", 11, 5));
        assert_ne!(a, receipt_id("rule-b", 10, 5));
    }
}
