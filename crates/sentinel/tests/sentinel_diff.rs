//! Differential property test: sentinel verdicts are identical no
//! matter which taint engine produced the PC-taint state — the plain
//! serial [`TaintEngine`], the epoch-parallel [`run_epoch_dift`]
//! offload, or the [`SummaryCachedEngine`]. Those engines guarantee
//! bit-identical alerts and output labels; this test pins that the
//! *policy layer* built on top inherits the guarantee: combined sink
//! events, rule verdicts, lineage sets, root-cause PCs, and receipts
//! serialize to byte-identical [`SentinelOutcome`]s.

use dift_dbi::{Engine, Tool};
use dift_isa::{BinOp, BranchCond, Program, ProgramBuilder, Reg};
use dift_multicore::{run_epoch_dift, shard_lineage_stream, EpochModel, LineageShardConfig};
use dift_sentinel::{
    apply_policy, combine_events, BoundaryPolicy, LineagePredicate, SinkClass, SinkObservations,
    SinkObserver, SourceSpec, TaintBoundary, Verdict,
};
use dift_taint::{
    PcTaint, SummaryCacheConfig, SummaryCachedEngine, TaintAlert, TaintEngine, TaintPolicy,
};
use dift_vm::{Machine, MachineConfig, StepEffects};
use proptest::prelude::*;
use std::sync::Arc;

const OPS: [BinOp; 6] = [BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Min];

/// Scratch buffer base, in bounds for [`MachineConfig::small`].
const BUF: i64 = 500;

/// One random loop statement over data registers `R1..=R6`.
#[derive(Clone, Debug)]
enum Stmt {
    Alu {
        op: usize,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Load {
        rd: u8,
        slot: u8,
    },
    Store {
        rs: u8,
        slot: u8,
    },
    /// Store through a data-derived (possibly tainted) address — the
    /// taint-alert path and a `MemWriteAddr` sink.
    StoreVia {
        rs: u8,
    },
    /// Data-dependent forward branch.
    SkipIf {
        rs1: u8,
        rs2: u8,
    },
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..OPS.len(), 1u8..7, 1u8..7, 1u8..7).prop_map(|(op, rd, rs1, rs2)| Stmt::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..7, 0u8..8).prop_map(|(rd, slot)| Stmt::Load { rd, slot }),
        (1u8..7, 0u8..8).prop_map(|(rs, slot)| Stmt::Store { rs, slot }),
        (1u8..7).prop_map(|rs| Stmt::StoreVia { rs }),
        (1u8..7, 1u8..7).prop_map(|(rs1, rs2)| Stmt::SkipIf { rs1, rs2 }),
    ]
}

/// Ingest words from TWO input channels (so lineage-channel predicates
/// have something to distinguish), run `sweeps` iterations of the
/// random body, then emit the data registers — `Output` sinks with
/// real per-word lineage.
fn build(n0: usize, n1: usize, sweeps: u8, body: &[Stmt]) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(Reg(9), BUF);
    for i in 0..n0 {
        b.input(Reg(13), 0);
        b.store(Reg(13), Reg(9), i as i64);
        b.li(Reg(i as u8 % 6 + 1), i as i64 + 3);
    }
    for i in 0..n1 {
        b.input(Reg(13), 1);
        b.store(Reg(13), Reg(9), (n0 + i) as i64);
    }
    b.li(Reg(11), sweeps as i64);
    b.label("sweep");
    let mut pending: Option<String> = None;
    let mut skip = 0usize;
    for s in body {
        if let Stmt::SkipIf { rs1, rs2 } = s {
            if let Some(l) = pending.take() {
                b.label(&l);
            }
            let l = format!("skip{skip}");
            skip += 1;
            b.branch(BranchCond::Lt, Reg(*rs1), Reg(*rs2), l.as_str());
            pending = Some(l);
            continue;
        }
        match s {
            Stmt::Alu { op, rd, rs1, rs2 } => {
                b.bin(OPS[*op], Reg(*rd), Reg(*rs1), Reg(*rs2));
            }
            Stmt::Load { rd, slot } => {
                b.load(Reg(*rd), Reg(9), *slot as i64);
            }
            Stmt::Store { rs, slot } => {
                b.store(Reg(*rs), Reg(9), *slot as i64);
            }
            Stmt::StoreVia { rs } => {
                b.bini(BinOp::And, Reg(12), Reg(*rs), 63);
                b.add(Reg(12), Reg(12), Reg(9));
                b.store(Reg(*rs), Reg(12), 0);
            }
            Stmt::SkipIf { .. } => unreachable!("handled above"),
        }
        if let Some(l) = pending.take() {
            b.label(&l);
        }
    }
    if let Some(l) = pending.take() {
        b.label(&l);
    }
    b.bini(BinOp::Sub, Reg(11), Reg(11), 1);
    b.branch(BranchCond::Ne, Reg(11), Reg(0), "sweep");
    for i in 1..7u8 {
        b.output(Reg(i), 2);
    }
    b.halt();
    Arc::new(b.build().unwrap())
}

/// A policy touching every sink class, with a lineage predicate and a
/// wildcard output rule, so a verdict mismatch anywhere surfaces.
fn boundary() -> BoundaryPolicy {
    BoundaryPolicy::new()
        .class("untrusted", vec![0])
        .rule(TaintBoundary::new(
            "halt-tainted-control",
            SourceSpec::Class("untrusted".into()),
            SinkClass::ControlTarget,
            Verdict::Contain,
        ))
        .rule(TaintBoundary::new(
            "block-tainted-store",
            SourceSpec::Class("untrusted".into()),
            SinkClass::MemWriteAddr,
            Verdict::Contain,
        ))
        .rule(TaintBoundary::new(
            "block-tainted-load",
            SourceSpec::Class("untrusted".into()),
            SinkClass::MemReadAddr,
            Verdict::Deny,
        ))
        .rule(
            TaintBoundary::new(
                "no-mixed-writes",
                SourceSpec::Any,
                SinkClass::MemWriteValue,
                Verdict::Deny,
            )
            .when(LineagePredicate::MinDistinctChannels(2)),
        )
        .rule(TaintBoundary::new(
            "no-secret-output",
            SourceSpec::Channels(vec![1]),
            SinkClass::Output { channel: None },
            Verdict::Deny,
        ))
}

#[derive(Default)]
struct Capture {
    fxs: Vec<StepEffects>,
}

impl Tool for Capture {
    fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
        self.fxs.push(fx.clone());
    }
}

fn machine(p: &Arc<Program>, in0: &[u64], in1: &[u64]) -> Machine {
    let mut m = Machine::new(p.clone(), MachineConfig::small());
    m.feed_input(0, in0);
    m.feed_input(1, in1);
    m
}

/// Evaluate the boundary policy against one engine's taint state (the
/// sink observations are shared — lineage is engine-independent).
fn verdicts(
    observer: &mut SinkObserver,
    alerts: &[TaintAlert<PcTaint>],
    output_labels: &[(u16, u64, PcTaint)],
) -> String {
    let events = combine_events(observer.observations(), alerts, output_labels);
    apply_policy(&boundary(), events).canonical_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Plain vs epoch-parallel vs summary-cached: the sentinel outcome
    /// must be byte-identical across all three.
    #[test]
    fn sentinel_outcome_is_engine_independent(
        body in proptest::collection::vec(stmt(), 1..12),
        sweeps in 2u8..7,
        in0 in proptest::collection::vec(0u64..1000, 1..4),
        in1 in proptest::collection::vec(0u64..1000, 1..4),
    ) {
        let p = build(in0.len(), in1.len(), sweeps, &body);
        let policy = TaintPolicy::default();

        // Capture the step stream once.
        let mut cap = Capture::default();
        let m = machine(&p, &in0, &in1);
        let mem_words = m.mem_words();
        Engine::new(m).run_tool(&mut cap);

        // One shared lineage pass (engine-independent by construction).
        let mut observer = SinkObserver::new();
        for fx in &cap.fxs {
            observer.process(fx);
        }

        // Plain serial engine.
        let mut plain = TaintEngine::<PcTaint>::new(policy);
        plain.pre_size(mem_words);
        for fx in &cap.fxs {
            plain.process(fx);
        }
        let baseline = verdicts(&mut observer, &plain.alerts, &plain.output_labels);

        // Epoch-parallel offload.
        let epoch = run_epoch_dift::<PcTaint>(machine(&p, &in0, &in1), EpochModel::software(3), policy);
        prop_assert_eq!(&epoch.engine.alerts, &plain.alerts, "epoch alert stream must agree");
        let via_epoch = verdicts(&mut observer, &epoch.engine.alerts, &epoch.engine.output_labels);
        prop_assert_eq!(&via_epoch, &baseline, "epoch-parallel sentinel outcome diverged");

        // Summary-cached engine.
        let mut cached = SummaryCachedEngine::<PcTaint>::new(
            policy,
            SummaryCacheConfig { hot_threshold: 2, ..SummaryCacheConfig::default() },
        );
        cached.engine_mut().pre_size(mem_words);
        cached.pin_program(&p);
        cached.process_stream(&cap.fxs);
        cached.finish();
        let e = cached.engine();
        prop_assert_eq!(&e.alerts, &plain.alerts, "cached alert stream must agree");
        let via_cache = verdicts(&mut observer, &e.alerts, &e.output_labels);
        prop_assert_eq!(&via_cache, &baseline, "summary-cached sentinel outcome diverged");
    }

    /// The lineage pass itself sharded: observations composed from the
    /// epoch-sharded `SinkLog` must reproduce the serial observer's
    /// captures exactly — and the policy outcome stays byte-identical.
    #[test]
    fn sharded_lineage_observations_match_serial(
        body in proptest::collection::vec(stmt(), 1..12),
        sweeps in 2u8..7,
        in0 in proptest::collection::vec(0u64..1000, 1..4),
        in1 in proptest::collection::vec(0u64..1000, 1..4),
        epoch_len in 3usize..24,
        workers in 1usize..4,
    ) {
        let p = build(in0.len(), in1.len(), sweeps, &body);
        let policy = TaintPolicy::default();
        let mut cap = Capture::default();
        let m = machine(&p, &in0, &in1);
        let mem_words = m.mem_words();
        Engine::new(m).run_tool(&mut cap);

        let mut observer = SinkObserver::new();
        for fx in &cap.fxs {
            observer.process(fx);
        }
        let mut plain = TaintEngine::<PcTaint>::new(policy);
        plain.pre_size(mem_words);
        for fx in &cap.fxs {
            plain.process(fx);
        }
        let baseline = verdicts(&mut observer, &plain.alerts, &plain.output_labels);

        let mut cfg = LineageShardConfig::new(workers, epoch_len, 16);
        cfg.capture_sinks = true;
        let run = shard_lineage_stream(&cap.fxs, &p, mem_words, &cfg);
        let sharded = SinkObservations::from_sharded(
            run.sinks.expect("sink capture enabled"),
            run.engine.input_channels().to_vec(),
        );
        let serial = observer.observations();
        prop_assert_eq!(&sharded.addr_lineage, &serial.addr_lineage, "address lineage");
        prop_assert_eq!(&sharded.stores, &serial.stores, "store captures");
        prop_assert_eq!(&sharded.outputs, &serial.outputs, "output captures");
        prop_assert_eq!(&sharded.input_channels, &serial.input_channels, "channel map");

        let events = combine_events(&sharded, &plain.alerts, &plain.output_labels);
        let outcome = apply_policy(&boundary(), events).canonical_json();
        prop_assert_eq!(outcome, baseline, "sharded sentinel outcome diverged");
    }
}
