//! Hot-code taint-transfer summary cache: one summary application per
//! hot-region execution instead of per-instruction shadow updates.
//!
//! The epoch machinery of [`crate::summary`] can summarize *any* window
//! of the effects stream into a transfer function that composes onto an
//! engine bit-exactly. Hot code executes the **same** window over and
//! over: a loop iteration whose instruction sequence, memory addresses
//! and branch outcomes repeat is, from the taint engine's point of view,
//! the identical transfer function every time — only the incoming labels
//! differ, and those are exactly what [`EpochSummary`] leaves symbolic.
//!
//! So the cache records one iteration of a hot region (head address →
//! next occurrence of the head), summarizes it once, and keys the
//! summary by head address plus a **shape fingerprint** (`GuardStep`
//! per instruction: address, instruction, destination register, and
//! concrete memory addresses — the *minimal exact* set, every fact
//! [`TaintEngine::process`] reads except data values). On re-entry at a
//! cached head the front-end ([`SummaryCachedEngine`]) checks incoming
//! effects against the fingerprint step by step; only when the whole
//! region matches does it apply the cached summary (via the bit-exact
//! [`TaintEngine::apply_summary_memoized`] composition) — on any
//! mismatch it falls back to the plain path mid-region, replaying the
//! deferred prefix. Correctness is never speculative: the guard pins
//! every input `process` reads except data *values*, which the engine
//! provably never consults, and the step counter, which step-invariant
//! labels ([`TaintLabel::STEP_INVARIANT`]) provably ignore. Control
//! outcomes and faults are pinned *transitively*, not directly —
//! `process` reads neither: a diverging branch changes the next step's
//! `addr`, and a fault suppresses the step's `reg_write`/`mem_write`,
//! both caught by the compared fields. The exactness argument is
//! spelled out in DESIGN.md §13.
//!
//! Three stacked fast paths take the steady-state cost from "cheaper
//! than shadow propagation" to a few ns/instruction:
//!
//! 1. **Pinned packed guards** ([`SummaryCachedEngine::pin_program`],
//!    `FastStep`): once the caller asserts the effects stream comes
//!    from machine execution of an immutable program, `addr` determines
//!    the instruction and the opcode determines which effect classes a
//!    step can carry, so the compare shrinks to 24 packed bytes and
//!    touches only the [`StepEffects`] cache lines the recorded step
//!    actually used.
//! 2. **Memoized application** ([`ApplyMemo`]): when a region's
//!    incoming labels are unchanged since its last application, the
//!    concretized action list replays instead of re-evaluating the
//!    summary's node DAG.
//! 3. **Sealed application** ([`TaintEngine::apply_summary_sealed`]):
//!    a generation counter proves nothing mutated taint state since the
//!    region's last application; once the replay is additionally proven
//!    a *fixpoint* on its own inputs, re-application degenerates to
//!    appending observables (alerts, output lineage, statistics) with
//!    no label resolution and no writes at all.
//!
//! Regions containing I/O or faults are never cached: `In`/`Out` labels
//! and lineage indices advance with *global* per-channel counts, so two
//! iterations are never guard-identical. Regions that bail repeatedly
//! are invalidated and re-recorded a bounded number of times
//! (versioned invalidation), then marked uncacheable.
//!
//! [`SummaryTool`] packages the front-end as a DBI tool: the NET-style
//! [`TraceBuilder`] feeds trace-formation events (a formed [`HotTrace`]
//! head becomes a candidate region head; with a function filter, a hot
//! function's entry does), and instrumentation cycles are charged
//! honestly per [`StepOutcome`] — guard comparisons are cheap, summary
//! applications pay per event, and bails pay the full replayed cost.

use crate::costs;
use crate::engine::TaintEngine;
use crate::label::TaintLabel;
use crate::policy::TaintPolicy;
use crate::summary::{ApplyMemo, EpochSummarizer, EpochSummary, IoBase};
use dift_dbi::{Tool, TraceBuilder};
use dift_isa::{Addr, FuncId, Instruction, MemAddr, Program};
use dift_obs::{Metric, NoopRecorder, Recorder};
use dift_vm::{ControlEffect, Machine, RunResult, StepEffects, ThreadId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

#[cfg(doc)]
use dift_dbi::HotTrace;

/// Raw trace encoding density (bytes/instr) the paper's unoptimized
/// regime pays; `bytes_saved` reports summarized instructions in this
/// currency so the obs number lines up with the 16 → 0.8 B/instr axis.
const RAW_TRACE_BYTES_PER_INSN: u64 = 16;

/// Tuning knobs of the summary cache.
#[derive(Clone, Debug)]
pub struct SummaryCacheConfig {
    /// Back-edge executions at which a target becomes a candidate head
    /// (the built-in detector; [`SummaryTool`] additionally feeds formed
    /// hot traces).
    pub hot_threshold: u32,
    /// Longest region (one head-to-head iteration) recorded or matched.
    pub max_region_len: usize,
    /// Most regions ever summarized; further heads become uncacheable
    /// (bounds both memory and summarization work).
    pub max_regions: usize,
    /// Guard-mismatch bails after which a region version is invalidated.
    pub max_bails: u32,
    /// Recordings per head before giving up on it (versioned
    /// invalidation budget).
    pub max_versions: u32,
    /// Bound on the back-edge hotness counter table (cold counters decay
    /// and evict past this, mirroring the [`TraceBuilder`] fix).
    pub max_counters: usize,
    /// Detect hot heads from taken backward branches in the effects
    /// stream itself (in addition to [`SummaryCachedEngine::mark_hot`]).
    pub detect_backedges: bool,
}

impl Default for SummaryCacheConfig {
    fn default() -> SummaryCacheConfig {
        SummaryCacheConfig {
            hot_threshold: 8,
            max_region_len: 8192,
            max_regions: 512,
            max_bails: 4,
            max_versions: 3,
            max_counters: 4096,
            detect_backedges: true,
        }
    }
}

/// Cache effectiveness counters (all monotone).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SummaryCacheStats {
    /// Cached summary applications (whole regions skipped).
    pub hits: u64,
    /// Hot-head entries with no cached region yet (recordings started).
    pub misses: u64,
    /// Guard mismatches that fell back to the plain path mid-region.
    pub guard_bails: u64,
    /// Regions summarized and installed (including re-records).
    pub regions_recorded: u64,
    /// Installs that replaced an invalidated version.
    pub rerecords: u64,
    /// Heads given up on (I/O inside, too long, or version budget spent).
    pub uncacheable_heads: u64,
    /// Instructions covered by hits (never individually processed).
    pub instrs_summarized: u64,
    /// `instrs_summarized` priced at the raw 16 B/instr trace encoding.
    pub bytes_saved: u64,
}

/// What [`SummaryCachedEngine::process`] did with one step — the honest
/// cycle-charging interface ([`SummaryTool`] maps each outcome to its
/// cost; direct drivers may ignore it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Processed by the plain engine.
    Plain,
    /// Processed plainly while also being buffered into a recording.
    Recorded,
    /// Matched against a guard; processing deferred until the region
    /// fully matches (hit) or mismatches (bail).
    Deferred,
    /// A full region matched: one summary application replaced `instrs`
    /// per-instruction updates by `events` replayed events.
    Hit { instrs: u64, events: u64 },
    /// Guard mismatch: the deferred prefix (plus this step) was replayed
    /// through the plain path.
    Bail { replayed_instrs: u64, replayed_mem: u64 },
}

/// One step of the shape fingerprint: every fact
/// [`TaintEngine::process`] reads from a [`StepEffects`] except data
/// values (never consulted) and the step index (checked separately
/// against the region base). `process` never reads `control` or
/// `fault`, so neither is pinned directly: a diverging branch outcome
/// changes the *next* step's `addr` (caught there), and a fault
/// suppresses the step's `reg_write`/`mem_write` (caught here).
#[derive(Clone, Debug, PartialEq)]
struct GuardStep {
    addr: Addr,
    insn: Instruction,
    /// Destination register of `reg_write` (presence + which register;
    /// the written value is data).
    reg_write: Option<dift_isa::Reg>,
    mem_read: Option<MemAddr>,
    mem_write: Option<MemAddr>,
}

impl GuardStep {
    fn of(fx: &StepEffects) -> GuardStep {
        GuardStep {
            addr: fx.addr,
            insn: fx.insn,
            reg_write: fx.reg_write.map(|(r, _, _)| r),
            mem_read: fx.mem_read.map(|(a, _)| a),
            mem_write: fx.mem_write.map(|(a, _, _)| a),
        }
    }

    #[inline]
    fn matches(&self, fx: &StepEffects) -> bool {
        self.addr == fx.addr
            && self.insn == fx.insn
            && self.reg_write == fx.reg_write.map(|(r, _, _)| r)
            && self.mem_read == fx.mem_read.map(|(a, _)| a)
            && self.mem_write == fx.mem_write.map(|(a, _, _)| a)
            && region_step_ok(fx)
    }
}

/// Sentinel for "no memory effect" in [`FastStep`] (no data address can
/// be `u64::MAX`: shadow memory is word-indexed and bounded far below).
const NO_MEM: u64 = u64::MAX;

/// The packed fingerprint step the **pinned** fast path compares
/// (24 bytes, vs ~72 for [`GuardStep`]): with the program pinned,
/// `addr` determines `insn`, and the opcode in turn determines whether
/// a step *can* carry memory or I/O effects — so the compare touches
/// only the effect fields the recorded step actually had, instead of
/// every cache line of a 272-byte [`StepEffects`].
#[derive(Clone, Debug)]
struct FastStep {
    /// `addr | (reg_write register + 1) << 32` — one word pins the code
    /// address and the destination-register write (a fault-suppressed
    /// write shows up as a zero field here and bails).
    key: u64,
    /// Read address or [`NO_MEM`].
    mem_read: u64,
    /// Write address or [`NO_MEM`].
    mem_write: u64,
}

impl FastStep {
    fn of(fx: &StepEffects) -> FastStep {
        FastStep {
            key: fx.addr as u64 | fx.reg_write.map_or(0, |(r, _, _)| (r.index() as u64 + 1) << 32),
            mem_read: fx.mem_read.map_or(NO_MEM, |(a, _)| a),
            mem_write: fx.mem_write.map_or(NO_MEM, |(a, _, _)| a),
        }
    }

    /// The pinned-path compare. Sound only under [`program pinning`]
    /// (see [`SummaryCachedEngine::pin_program`]): skipped fields are
    /// those the pinned opcode at `addr` cannot produce.
    ///
    /// [`program pinning`]: SummaryCachedEngine::pin_program
    #[inline]
    fn matches(&self, fx: &StepEffects) -> bool {
        let key = fx.addr as u64 | fx.reg_write.map_or(0, |(r, _, _)| (r.index() as u64 + 1) << 32);
        if self.key != key {
            return false;
        }
        // Guard-side flags decide which effect fields to touch: a step
        // recorded without a memory effect cannot grow one (the pinned
        // opcode has no memory operand), and a recorded Load/Store that
        // faults mid-region diverges in the compared address (or in the
        // suppressed reg_write above).
        (self.mem_read == NO_MEM || self.mem_read == fx.mem_read.map_or(NO_MEM, |(a, _)| a))
            && (self.mem_write == NO_MEM
                || self.mem_write == fx.mem_write.map_or(NO_MEM, |(a, _, _)| a))
    }
}

/// A step a cached region may contain: no I/O (global indices advance
/// per iteration) and no faults (the thread stops mid-shape).
#[inline]
fn region_step_ok(fx: &StepEffects) -> bool {
    fx.input.is_none() && fx.output.is_none() && fx.fault.is_none()
}

/// A recorded, summarized region.
struct CachedRegion<T: TaintLabel> {
    tid: ThreadId,
    /// Step of the recorded iteration's head instruction; guard step `k`
    /// matched step `base_step + k`, and applications rebase alerts by
    /// the difference to the matched base.
    base_step: u64,
    guard: Vec<GuardStep>,
    /// Packed fingerprint for the pinned fast path (same steps as
    /// `guard`).
    fast: Vec<FastStep>,
    summary: EpochSummary<T>,
    version: u32,
    bails: u32,
    hits: u64,
    /// Per-region memo for [`TaintEngine::apply_summary_memoized`]: in
    /// steady state the incoming labels stop changing and applications
    /// replay a concrete action list instead of re-evaluating the node
    /// DAG.
    memo: ApplyMemo<T>,
    /// Engine generation right after this region's last application
    /// (0 = never applied). When it still equals the engine's current
    /// generation, nothing has mutated taint state since — the seal.
    last_apply_gen: u64,
    /// Proven: the memo's replay maps a state whose incoming labels
    /// equal `memo.inputs` to a state whose incoming labels *still*
    /// equal `memo.inputs` (the hot loop's taint state is stationary).
    /// Established when a sealed-generation application finds its
    /// incoming labels unchanged; voided whenever the memo re-records.
    fixpoint: bool,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum HeadState {
    /// Never nominated (the dense-table default).
    Cold,
    /// Marked hot; the next entry starts recording `version`.
    Hot { version: u32 },
    /// A live region in `regions[slot]`.
    Cached { slot: usize },
    /// Given up (I/O inside, too long, or version budget spent).
    Uncacheable,
}

/// Head states in a dense table indexed by code address. Code addresses
/// are instruction indices, so the table is bounded by program size and
/// the per-step state lookup on the plain path is an array read — the
/// `HashMap` this replaces cost more than the taint transfer itself.
#[derive(Default)]
struct HeadTable {
    states: Vec<HeadState>,
}

/// Ceiling on head-table growth: code addresses are instruction
/// indices, so any real program sits far below this; a synthetic
/// stream with absurd addresses degrades to "never cached" (correct,
/// just unaccelerated) instead of allocating gigabytes.
const MAX_HEAD_ADDR: usize = 1 << 22;

impl HeadTable {
    #[inline]
    fn get(&self, addr: Addr) -> HeadState {
        self.states.get(addr as usize).copied().unwrap_or(HeadState::Cold)
    }

    fn set(&mut self, addr: Addr, state: HeadState) {
        let i = addr as usize;
        if i >= MAX_HEAD_ADDR {
            return;
        }
        if i >= self.states.len() {
            self.states.resize(i + 1, HeadState::Cold);
        }
        self.states[i] = state;
    }
}

enum Mode {
    Plain,
    /// Buffering one iteration of `head` (steps also processed plainly).
    Recording {
        head: Addr,
        tid: ThreadId,
        buf: Vec<StepEffects>,
    },
    /// Guard-matching `regions[slot]`; `buffered` holds the deferred
    /// prefix for replay on a bail.
    Matching {
        head: Addr,
        slot: usize,
        pos: usize,
        base_step: u64,
        buffered: Vec<StepEffects>,
    },
}

/// Caching front-end to [`TaintEngine`]: behaviorally identical to the
/// plain engine (labels, alerts, peaks, stats — bit for bit; the
/// differential proptest `summary_cache_diff.rs` pins this), but hot
/// regions whose shape repeats cost one guard comparison per instruction
/// plus one summary application per execution.
pub struct SummaryCachedEngine<T: TaintLabel, R: Recorder = NoopRecorder> {
    /// The wrapped engine — all observable state (alerts,
    /// `output_labels`, shadow, stats, obs) lives here. Private so every
    /// mutation goes through [`Self::engine_mut`] and bumps `gen`; read
    /// access is [`Self::engine`].
    engine: TaintEngine<T, R>,
    /// Taint-state generation: bumped on every plain-path step, every
    /// state-mutating summary application, and every external
    /// [`Self::engine_mut`] borrow. A region whose `last_apply_gen`
    /// still equals `gen` is *sealed*: the engine provably sits in that
    /// region's post-application state, and a re-application with
    /// proven-fixpoint inputs degenerates to appending observables
    /// ([`TaintEngine::apply_summary_sealed`]) — no label resolution,
    /// no writes.
    gen: u64,
    cfg: SummaryCacheConfig,
    heads: HeadTable,
    regions: Vec<Option<CachedRegion<T>>>,
    /// Back-edge hotness counters (bounded by `cfg.max_counters`).
    counts: HashMap<Addr, u32>,
    mode: Mode,
    stats: SummaryCacheStats,
    /// `[start, end)` global-step ranges covered by hits, in completion
    /// order — the elision input for the DDG "summaries" ladder level.
    hit_ranges: Vec<(u64, u64)>,
    /// False for labels without [`TaintLabel::STEP_INVARIANT`]: the
    /// cache then never installs regions and every step takes the plain
    /// path (still correct, no speedup).
    enabled: bool,
    /// The immutable program the effects stream is generated from, when
    /// the caller asserts it (see [`Self::pin_program`]); enables the
    /// `FastStep` compare.
    pinned: Option<Arc<Program>>,
}

impl<T: TaintLabel> SummaryCachedEngine<T> {
    /// Unprobed front-end (same `new`/`with_recorder` split as
    /// [`TaintEngine`]).
    pub fn new(policy: TaintPolicy, cfg: SummaryCacheConfig) -> SummaryCachedEngine<T> {
        SummaryCachedEngine::with_recorder(policy, cfg, NoopRecorder)
    }
}

impl<T: TaintLabel, R: Recorder> SummaryCachedEngine<T, R> {
    pub fn with_recorder(
        policy: TaintPolicy,
        cfg: SummaryCacheConfig,
        obs: R,
    ) -> SummaryCachedEngine<T, R> {
        SummaryCachedEngine {
            engine: TaintEngine::with_recorder(policy, obs),
            gen: 1,
            cfg,
            heads: HeadTable::default(),
            regions: Vec::new(),
            counts: HashMap::new(),
            mode: Mode::Plain,
            stats: SummaryCacheStats::default(),
            hit_ranges: Vec::new(),
            enabled: T::STEP_INVARIANT,
            pinned: None,
        }
    }

    /// Assert that every effects stream this engine will see is
    /// generated by machine execution of `program` (which is immutable —
    /// there is no self-modifying code on this substrate). Under that
    /// contract `addr` determines `insn`, and the opcode determines
    /// which effect classes a step can carry at all, so guard matching
    /// uses the packed `FastStep` compare instead of re-checking the
    /// full instruction per step. `install` still verifies each recorded
    /// step's `insn` against the pinned program — a stream that violates
    /// the contract falls back to never caching, not to wrong answers.
    ///
    /// Pinning a *different* program flushes the cache (the DBI analogue
    /// of a code-cache flush); re-pinning the same one is a no-op.
    pub fn pin_program(&mut self, program: &Arc<Program>) {
        if self.pinned.as_ref().is_some_and(|p| Arc::ptr_eq(p, program)) {
            return;
        }
        if self.pinned.is_some() {
            self.regions.clear();
            self.heads = HeadTable::default();
            self.counts.clear();
        }
        self.pinned = Some(program.clone());
    }

    /// The wrapped engine's observable state (alerts, `output_labels`,
    /// shadow, stats).
    pub fn engine(&self) -> &TaintEngine<T, R> {
        &self.engine
    }

    /// Mutable access to the wrapped engine. Bumps the taint-state
    /// generation: any external mutation (e.g. [`TaintEngine::pre_size`])
    /// unseals every cached region, so the next application re-resolves
    /// its incoming labels instead of trusting the sealed fast path.
    pub fn engine_mut(&mut self) -> &mut TaintEngine<T, R> {
        self.gen = self.gen.wrapping_add(1);
        &mut self.engine
    }

    /// Forward one step to the plain engine, unsealing (the step may
    /// write any label).
    #[inline]
    fn engine_process(&mut self, fx: &StepEffects) {
        self.gen = self.gen.wrapping_add(1);
        self.engine.process(fx);
    }

    pub fn stats(&self) -> &SummaryCacheStats {
        &self.stats
    }

    /// `[start, end)` step ranges covered by summary applications, in
    /// completion order (ascending for a single-pass run).
    pub fn hit_ranges(&self) -> &[(u64, u64)] {
        &self.hit_ranges
    }

    /// Live cached regions.
    pub fn regions_live(&self) -> usize {
        self.regions.iter().flatten().count()
    }

    /// Approximate resident bytes of the live cache (guards + summary
    /// arenas) — the storage side of the bytes/instr ledger.
    pub fn cache_bytes(&self) -> u64 {
        self.regions
            .iter()
            .flatten()
            .map(|r| {
                64 + r.guard.len() as u64
                    * (std::mem::size_of::<GuardStep>() + std::mem::size_of::<FastStep>()) as u64
                    + (r.summary.node_count() + r.summary.event_count()) as u64 * 16
                    + r.memo.approx_bytes()
            })
            .sum()
    }

    /// Nominate `head` as a region head (trace formation, function
    /// filtering, or tests). Idempotent; a no-op for non-step-invariant
    /// labels.
    pub fn mark_hot(&mut self, head: Addr) {
        if self.enabled && self.heads.get(head) == HeadState::Cold {
            self.heads.set(head, HeadState::Hot { version: 0 });
        }
    }

    fn mark_uncacheable(&mut self, head: Addr) {
        self.stats.uncacheable_heads += 1;
        self.heads.set(head, HeadState::Uncacheable);
    }

    /// Count a taken backward edge toward `cfg.hot_threshold`. The
    /// counter table is bounded: past `cfg.max_counters` cold counters
    /// decay (halve, drop zeros) before a new head is admitted.
    fn note_backedge(&mut self, fx: &StepEffects) {
        if !self.enabled || !self.cfg.detect_backedges {
            return;
        }
        let target = match fx.control {
            Some(ControlEffect::Branch { taken: true, target }) => target,
            Some(ControlEffect::Jump { target }) => target,
            _ => return,
        };
        if target > fx.addr || self.heads.get(target) != HeadState::Cold {
            return;
        }
        if self.counts.len() >= self.cfg.max_counters && !self.counts.contains_key(&target) {
            self.counts.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
            if self.counts.len() >= self.cfg.max_counters {
                self.counts.clear();
            }
        }
        let c = self.counts.entry(target).or_insert(0);
        *c += 1;
        if *c >= self.cfg.hot_threshold {
            self.counts.remove(&target);
            self.mark_hot(target);
        }
    }

    /// Summarize and install one recorded iteration.
    fn install(&mut self, head: Addr, tid: ThreadId, fxs: &[StepEffects]) {
        debug_assert!(!fxs.is_empty(), "a region has at least its head instruction");
        if self.regions.len() >= self.cfg.max_regions {
            self.mark_uncacheable(head);
            return;
        }
        let version = match self.heads.get(head) {
            HeadState::Hot { version } => version,
            _ => 0,
        };
        // Pinning contract check, once per install: every recorded
        // step's instruction must be the pinned program's instruction at
        // that address. A stream that violates it is not accelerated.
        if let Some(p) = &self.pinned {
            if fxs.iter().any(|fx| p.get(fx.addr) != Some(&fx.insn)) {
                self.mark_uncacheable(head);
                return;
            }
        }
        // No I/O inside a region, so the summarizer needs no stream
        // prefix counts: the IoBase is irrelevant by construction.
        let mut sum = EpochSummarizer::new(self.engine.policy(), &IoBase::default());
        let mut guard = Vec::with_capacity(fxs.len());
        let mut fast = Vec::with_capacity(fxs.len());
        for fx in fxs {
            guard.push(GuardStep::of(fx));
            fast.push(FastStep::of(fx));
            sum.step(fx);
        }
        let slot = self.regions.len();
        self.regions.push(Some(CachedRegion {
            tid,
            base_step: fxs[0].step,
            guard,
            fast,
            summary: sum.finish(),
            version,
            bails: 0,
            hits: 0,
            memo: ApplyMemo::default(),
            last_apply_gen: 0,
            fixpoint: false,
        }));
        self.heads.set(head, HeadState::Cached { slot });
        self.stats.regions_recorded += 1;
        if version > 0 {
            self.stats.rerecords += 1;
        }
        if R::ENABLED {
            self.engine.obs.add(Metric::TaintScRegions, 1);
        }
    }

    /// Apply `regions[slot]` rebased to `base_step`.
    fn apply_hit(&mut self, slot: usize, base_step: u64) -> StepOutcome {
        let gen = self.gen;
        let r = self.regions[slot].as_mut().expect("hit on a live region");
        r.hits += 1;
        let (instrs, events, delta) =
            (r.summary.instrs(), r.summary.event_count() as u64, base_step - r.base_step);
        // Split borrow: the engine and the region live in disjoint
        // fields, and the memo is the only part of the region mutated.
        let sealed = r.fixpoint
            && r.last_apply_gen == gen
            && self.engine.apply_summary_sealed(&r.summary, delta, &r.memo);
        if !sealed {
            // `sealed_gen`: nothing mutated taint state since this
            // region's last application, so the engine sits in its
            // post-application state. If the incoming labels *still*
            // equal the memo's under that seal, the replay provably maps
            // memo-inputs to memo-inputs — a fixpoint — and subsequent
            // sealed-generation hits need no resolution at all.
            let sealed_gen = r.last_apply_gen != 0 && r.last_apply_gen == gen;
            let matched = self.engine.apply_summary_memoized(&r.summary, delta, &mut r.memo);
            r.fixpoint = matched && (r.fixpoint || sealed_gen);
            // The application wrote labels: unseal every other region.
            self.gen = gen.wrapping_add(1);
        }
        let r = self.regions[slot].as_mut().expect("hit on a live region");
        r.last_apply_gen = self.gen;
        self.stats.hits += 1;
        self.stats.instrs_summarized += instrs;
        self.stats.bytes_saved += instrs * RAW_TRACE_BYTES_PER_INSN;
        self.hit_ranges.push((base_step, base_step + instrs));
        if R::ENABLED {
            self.engine.obs.add(Metric::TaintScHits, 1);
            self.engine.obs.add(Metric::TaintScInstrsSummarized, instrs);
            self.engine.obs.add(Metric::TaintScBytesSaved, instrs * RAW_TRACE_BYTES_PER_INSN);
        }
        StepOutcome::Hit { instrs, events }
    }

    /// Account a guard mismatch; past `cfg.max_bails` the version is
    /// invalidated (freed) and the head re-records or becomes
    /// uncacheable once `cfg.max_versions` recordings are spent.
    fn bail(&mut self, head: Addr, slot: usize) {
        self.stats.guard_bails += 1;
        if R::ENABLED {
            self.engine.obs.add(Metric::TaintScGuardBails, 1);
        }
        let invalidate = {
            let r = self.regions[slot].as_mut().expect("bail on a live region");
            r.bails += 1;
            r.bails >= self.cfg.max_bails
        };
        if invalidate {
            let version = self.regions[slot].take().expect("live region").version;
            if version + 1 >= self.cfg.max_versions {
                self.mark_uncacheable(head);
            } else {
                self.heads.set(head, HeadState::Hot { version: version + 1 });
            }
        }
    }

    /// Replay a deferred prefix (plus the mismatching step) plainly.
    fn replay(&mut self, buffered: &[StepEffects], extra: Option<&StepEffects>) -> StepOutcome {
        let mut replayed_instrs = 0u64;
        let mut replayed_mem = 0u64;
        for b in buffered.iter().chain(extra) {
            self.engine_process(b);
            replayed_instrs += 1;
            if b.mem_read.is_some() || b.mem_write.is_some() {
                replayed_mem += 1;
            }
        }
        StepOutcome::Bail { replayed_instrs, replayed_mem }
    }

    /// Process one step with cache lookups — the per-step (DBI tool)
    /// path. Streaming callers should prefer
    /// [`Self::process_stream`], which matches in place without cloning.
    pub fn process(&mut self, fx: &StepEffects) -> StepOutcome {
        match std::mem::replace(&mut self.mode, Mode::Plain) {
            Mode::Plain => self.step_plain(fx),
            Mode::Recording { head, tid, mut buf } => {
                if fx.tid == tid && fx.addr == head {
                    // One full iteration buffered: install, then treat
                    // this head entry as a fresh (likely matching) one.
                    self.install(head, tid, &buf);
                    self.step_plain(fx)
                } else if fx.tid != tid {
                    // Interleaved thread: abandon the attempt (the head
                    // stays hot and may record cleanly later).
                    self.engine_process(fx);
                    StepOutcome::Plain
                } else if !region_step_ok(fx) || buf.len() >= self.cfg.max_region_len {
                    self.mark_uncacheable(head);
                    self.engine_process(fx);
                    StepOutcome::Plain
                } else {
                    buf.push(fx.clone());
                    self.engine_process(fx);
                    self.mode = Mode::Recording { head, tid, buf };
                    StepOutcome::Recorded
                }
            }
            Mode::Matching { head, slot, pos, base_step, mut buffered } => {
                let pinned = self.pinned.is_some();
                let (matched, len) = {
                    let r = self.regions[slot].as_ref().expect("matching a live region");
                    let step_ok =
                        if pinned { r.fast[pos].matches(fx) } else { r.guard[pos].matches(fx) };
                    (fx.tid == r.tid && fx.step == base_step + pos as u64 && step_ok, r.guard.len())
                };
                if !matched {
                    self.bail(head, slot);
                    return self.replay(&buffered, Some(fx));
                }
                if pos + 1 == len {
                    self.apply_hit(slot, base_step)
                } else {
                    buffered.push(fx.clone());
                    self.mode = Mode::Matching { head, slot, pos: pos + 1, base_step, buffered };
                    StepOutcome::Deferred
                }
            }
        }
    }

    fn step_plain(&mut self, fx: &StepEffects) -> StepOutcome {
        match self.heads.get(fx.addr) {
            HeadState::Cached { slot } => {
                let (matched, len) = {
                    let r = self.regions[slot].as_ref().expect("cached head has a live region");
                    (fx.tid == r.tid && r.guard[0].matches(fx), r.guard.len())
                };
                if matched {
                    if len == 1 {
                        return self.apply_hit(slot, fx.step);
                    }
                    self.mode = Mode::Matching {
                        head: fx.addr,
                        slot,
                        pos: 1,
                        base_step: fx.step,
                        buffered: vec![fx.clone()],
                    };
                    return StepOutcome::Deferred;
                }
                self.bail(fx.addr, slot);
                self.replay(&[], Some(fx))
            }
            HeadState::Hot { .. } => {
                if !region_step_ok(fx) {
                    // An I/O or faulting head can never anchor a
                    // guard-identical region.
                    self.mark_uncacheable(fx.addr);
                    self.engine_process(fx);
                    return StepOutcome::Plain;
                }
                self.stats.misses += 1;
                if R::ENABLED {
                    self.engine.obs.add(Metric::TaintScMisses, 1);
                }
                self.engine_process(fx);
                self.mode = Mode::Recording { head: fx.addr, tid: fx.tid, buf: vec![fx.clone()] };
                StepOutcome::Recorded
            }
            HeadState::Uncacheable | HeadState::Cold => {
                self.note_backedge(fx);
                self.engine_process(fx);
                StepOutcome::Plain
            }
        }
    }

    /// True when `fxs[..guard.len()]` is a guard-exact execution of
    /// `regions[slot]`.
    fn stream_match(&self, slot: usize, window: &[StepEffects]) -> bool {
        let Some(r) = self.regions[slot].as_ref() else {
            return false;
        };
        let base = window[0].step;
        if r.guard.len() != window.len() {
            return false;
        }
        if self.pinned.is_some() {
            // The packed compare — the per-instruction cost the cache
            // actually pays in steady state.
            window
                .iter()
                .zip(&r.fast)
                .enumerate()
                .all(|(k, (fx, g))| fx.tid == r.tid && fx.step == base + k as u64 && g.matches(fx))
        } else {
            window
                .iter()
                .zip(&r.guard)
                .enumerate()
                .all(|(k, (fx, g))| fx.tid == r.tid && fx.step == base + k as u64 && g.matches(fx))
        }
    }

    /// Find the end of a recordable region starting at `fxs[i]` (the
    /// next same-thread occurrence of the head), or disqualify it.
    fn scan_region(&mut self, fxs: &[StepEffects], i: usize) -> Option<usize> {
        let head = fxs[i].addr;
        let tid = fxs[i].tid;
        if !region_step_ok(&fxs[i]) {
            self.mark_uncacheable(head);
            return None;
        }
        for (off, fx) in fxs[i + 1..].iter().enumerate() {
            if fx.tid != tid {
                return None; // interleaved thread: retry later
            }
            if fx.addr == head {
                return Some(i + 1 + off);
            }
            if !region_step_ok(fx) || off + 1 >= self.cfg.max_region_len {
                self.mark_uncacheable(head);
                return None;
            }
        }
        None // stream ended before the loop closed
    }

    /// Process a whole effects stream — the zero-copy fast path: guard
    /// matching compares against the slice in place (no per-step
    /// cloning, no deferral buffer), and recording summarizes straight
    /// from the slice.
    pub fn process_stream(&mut self, fxs: &[StepEffects]) {
        self.finish();
        let mut i = 0;
        while i < fxs.len() {
            let fx = &fxs[i];
            match self.heads.get(fx.addr) {
                HeadState::Cached { slot } => {
                    let len =
                        self.regions[slot].as_ref().map(|r| r.guard.len()).unwrap_or_default();
                    if i + len <= fxs.len() {
                        if self.stream_match(slot, &fxs[i..i + len]) {
                            self.apply_hit(slot, fx.step);
                            i += len;
                            continue;
                        }
                        self.bail(fx.addr, slot);
                    }
                    // Mismatch (or stream boundary): this head step runs
                    // plainly; subsequent steps retry their own lookups.
                }
                HeadState::Hot { .. } => {
                    if let Some(end) = self.scan_region(fxs, i) {
                        self.stats.misses += 1;
                        if R::ENABLED {
                            self.engine.obs.add(Metric::TaintScMisses, 1);
                        }
                        for r in &fxs[i..end] {
                            self.engine_process(r);
                        }
                        self.install(fx.addr, fx.tid, &fxs[i..end]);
                        i = end;
                        continue;
                    }
                }
                HeadState::Uncacheable | HeadState::Cold => {}
            }
            self.note_backedge(fx);
            self.engine_process(fx);
            i += 1;
        }
    }

    /// Drain the state machine at end of stream: a pending match replays
    /// its deferred prefix plainly (not a bail — the stream ended, the
    /// guard did not fail). Returns `(instrs, mem ops)` replayed so a
    /// charging caller can settle the deferred cost.
    pub fn finish(&mut self) -> (u64, u64) {
        match std::mem::replace(&mut self.mode, Mode::Plain) {
            // A recording's steps were already processed plainly.
            Mode::Plain | Mode::Recording { .. } => (0, 0),
            Mode::Matching { buffered, .. } => match self.replay(&buffered, None) {
                StepOutcome::Bail { replayed_instrs, replayed_mem } => {
                    (replayed_instrs, replayed_mem)
                }
                _ => unreachable!("replay always reports a bail outcome"),
            },
        }
    }
}

/// The summary cache as a DBI tool: [`TraceBuilder`] trace formation
/// nominates heads (optionally filtered to whole hot functions), the
/// cached engine processes effects, and instrumentation cycles are
/// charged honestly per [`StepOutcome`].
pub struct SummaryTool<T: TaintLabel, R: Recorder = NoopRecorder> {
    /// The caching front-end (observable state lives in
    /// [`SummaryCachedEngine::engine`]).
    pub cached: SummaryCachedEngine<T, R>,
    traces: TraceBuilder,
    func_filter: Option<HashSet<FuncId>>,
}

impl<T: TaintLabel> SummaryTool<T> {
    pub fn new(policy: TaintPolicy, cfg: SummaryCacheConfig) -> SummaryTool<T> {
        SummaryTool::with_recorder(policy, cfg, NoopRecorder)
    }
}

impl<T: TaintLabel, R: Recorder> SummaryTool<T, R> {
    pub fn with_recorder(
        policy: TaintPolicy,
        cfg: SummaryCacheConfig,
        obs: R,
    ) -> SummaryTool<T, R> {
        let traces = TraceBuilder::new(cfg.hot_threshold, 16);
        SummaryTool {
            cached: SummaryCachedEngine::with_recorder(policy, cfg, obs),
            traces,
            func_filter: None,
        }
    }

    /// Only nominate heads inside `funcs` — e.g. summarize a whole hot
    /// function by caching the head-to-head regions of its entry and
    /// loop heads while leaving cold library code on the plain path.
    pub fn filter_funcs(mut self, funcs: HashSet<FuncId>) -> SummaryTool<T, R> {
        self.func_filter = Some(funcs);
        self
    }
}

/// Instrumentation cycles one step outcome costs (see
/// [`crate::costs`]): the guard compare is cheap, a hit pays a flat
/// application charge plus per-event replay, and bails pay the full
/// plain-path cost of everything replayed.
fn charge_for(out: &StepOutcome, fx: &StepEffects) -> u64 {
    let plain = costs::TAINT_PER_INSN
        + if fx.mem_read.is_some() || fx.mem_write.is_some() { costs::TAINT_PER_MEM } else { 0 };
    match out {
        StepOutcome::Plain => plain,
        StepOutcome::Recorded => plain + costs::SUMMARY_RECORD_PER_INSN,
        StepOutcome::Deferred => costs::SUMMARY_GUARD_PER_INSN,
        StepOutcome::Hit { events, .. } => {
            costs::SUMMARY_GUARD_PER_INSN
                + costs::SUMMARY_APPLY_BASE
                + events * costs::SUMMARY_APPLY_PER_EVENT
        }
        StepOutcome::Bail { replayed_instrs, replayed_mem } => {
            costs::SUMMARY_GUARD_PER_INSN
                + replayed_instrs * costs::TAINT_PER_INSN
                + replayed_mem * costs::TAINT_PER_MEM
        }
    }
}

impl<T: TaintLabel, R: Recorder> Tool for SummaryTool<T, R> {
    fn on_start(&mut self, m: &mut Machine) {
        self.cached.engine_mut().pre_size(m.mem_words());
        // The tool sees effects straight from this machine's execution
        // of its (immutable) program — exactly the pinning contract.
        self.cached.pin_program(m.program());
    }

    fn on_block(&mut self, m: &mut Machine, tid: ThreadId, entry: Addr, _is_new: bool) {
        if let Some(tr) = self.traces.on_block(tid, entry) {
            let ok = match &self.func_filter {
                None => true,
                Some(set) => {
                    m.program().func_at(tr.head).map(|f| set.contains(&f)).unwrap_or(false)
                }
            };
            if ok {
                self.cached.mark_hot(tr.head);
            }
        }
    }

    fn after(&mut self, m: &mut Machine, fx: &StepEffects) {
        let out = self.cached.process(fx);
        if self.cached.engine().policy().charge_cycles {
            m.charge(charge_for(&out, fx));
        }
    }

    fn on_finish(&mut self, m: &mut Machine, _r: &RunResult) {
        let (instrs, mem) = self.cached.finish();
        if self.cached.engine().policy().charge_cycles {
            // Settle deferred steps drained at end of stream: they were
            // charged only the guard compare while deferred.
            m.charge(instrs * costs::TAINT_PER_INSN + mem * costs::TAINT_PER_MEM);
        }
        self.cached.engine_mut().flush_obs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{BitTaint, LabelCtx, PcTaint};
    use dift_dbi::Engine;
    use dift_isa::{BinOp, BranchCond, Program, ProgramBuilder, Reg};
    use dift_vm::MachineConfig;
    use std::sync::Arc;

    fn capture(p: &Arc<Program>, inputs: &[u64]) -> (Vec<StepEffects>, usize) {
        #[derive(Default)]
        struct Cap(Vec<StepEffects>);
        impl Tool for Cap {
            fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
                self.0.push(fx.clone());
            }
        }
        let mut m = Machine::new(p.clone(), MachineConfig::small());
        m.feed_input(0, inputs);
        let mem_words = m.mem_words();
        let mut cap = Cap::default();
        Engine::new(m).run_tool(&mut cap);
        (cap.0, mem_words)
    }

    /// A loop whose iterations sweep a FIXED buffer: every iteration is
    /// guard-identical, the cache's best case.
    fn fixed_loop(iters: i64) -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0); // taint seed
        b.li(Reg(2), 300);
        b.store(Reg(1), Reg(2), 0); // mem[300] tainted
        b.li(Reg(3), iters);
        b.label("loop");
        b.load(Reg(4), Reg(2), 0);
        b.add(Reg(5), Reg(5), Reg(4));
        b.store(Reg(5), Reg(2), 1);
        b.bini(BinOp::Sub, Reg(3), Reg(3), 1);
        b.branch(BranchCond::Ne, Reg(3), Reg(0), "loop");
        b.output(Reg(5), 0);
        b.halt();
        Arc::new(b.build().unwrap())
    }

    /// A loop over a MOVING window: addresses shift every iteration, so
    /// guards always bail and versioned invalidation gives up.
    fn moving_loop(iters: i64) -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 300); // moving base
        b.li(Reg(3), iters);
        b.label("loop");
        b.store(Reg(1), Reg(2), 0);
        b.load(Reg(4), Reg(2), 0);
        b.add(Reg(5), Reg(5), Reg(4));
        b.addi(Reg(2), Reg(2), 1); // slide the window
        b.bini(BinOp::Sub, Reg(3), Reg(3), 1);
        b.branch(BranchCond::Ne, Reg(3), Reg(0), "loop");
        b.output(Reg(5), 0);
        b.halt();
        Arc::new(b.build().unwrap())
    }

    fn test_cfg() -> SummaryCacheConfig {
        SummaryCacheConfig { hot_threshold: 2, ..SummaryCacheConfig::default() }
    }

    fn assert_identical<T: TaintLabel>(
        stream: &[StepEffects],
        mem_words: usize,
        policy: TaintPolicy,
        streaming: bool,
    ) -> SummaryCacheStats {
        let mut plain = TaintEngine::<T>::new(policy);
        plain.pre_size(mem_words);
        for fx in stream {
            plain.process(fx);
        }
        let mut cached = SummaryCachedEngine::<T>::new(policy, test_cfg());
        cached.engine_mut().pre_size(mem_words);
        if streaming {
            cached.process_stream(stream);
        } else {
            for fx in stream {
                cached.process(fx);
            }
        }
        cached.finish();
        assert_eq!(cached.engine().output_labels, plain.output_labels);
        assert_eq!(cached.engine().alerts, plain.alerts);
        assert_eq!(cached.engine().tainted_words(), plain.tainted_words());
        let cells: Vec<(u64, T)> =
            cached.engine().shadow().iter_tainted().map(|(a, l)| (a, l.clone())).collect();
        let plain_cells: Vec<(u64, T)> =
            plain.shadow().iter_tainted().map(|(a, l)| (a, l.clone())).collect();
        assert_eq!(cells, plain_cells);
        assert_eq!(cached.engine().stats(), plain.stats());
        cached.stats().clone()
    }

    #[test]
    fn fixed_loop_hits_and_stays_identical() {
        let (stream, mem) = capture(&fixed_loop(40), &[7]);
        for streaming in [false, true] {
            let s = assert_identical::<BitTaint>(&stream, mem, TaintPolicy::default(), streaming);
            assert!(s.regions_recorded >= 1, "{s:?}");
            assert!(s.hits > 30, "a fixed-shape loop must hit nearly every iteration: {s:?}");
            assert!(s.instrs_summarized > 100, "{s:?}");
        }
    }

    #[test]
    fn pc_labels_rebase_exactly() {
        // PcTaint stamps ctx.addr; the guard pins addresses, so rebased
        // applications must agree bit for bit (incl. alert steps).
        let (stream, mem) = capture(&fixed_loop(40), &[7]);
        let s = assert_identical::<PcTaint>(&stream, mem, TaintPolicy::default(), true);
        assert!(s.hits > 0);
    }

    #[test]
    fn moving_window_bails_and_gives_up() {
        let (stream, mem) = capture(&moving_loop(60), &[7]);
        for streaming in [false, true] {
            let s = assert_identical::<BitTaint>(&stream, mem, TaintPolicy::default(), streaming);
            assert!(s.guard_bails > 0, "moving addresses must mismatch the guard: {s:?}");
            assert!(s.uncacheable_heads >= 1, "version budget must run out: {s:?}");
            assert_eq!(s.hits, 0, "no iteration repeats its shape: {s:?}");
        }
    }

    #[test]
    fn io_inside_the_loop_is_never_cached() {
        // An In inside the hot loop: global input indices advance per
        // iteration, so the region must be rejected at record time.
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.li(Reg(3), 20);
        b.li(Reg(2), 300);
        b.label("loop");
        b.input(Reg(1), 0);
        b.store(Reg(1), Reg(2), 0);
        b.bini(BinOp::Sub, Reg(3), Reg(3), 1);
        b.branch(BranchCond::Ne, Reg(3), Reg(0), "loop");
        b.output(Reg(1), 0);
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let (stream, mem) = capture(&p, &(0..20).collect::<Vec<u64>>());
        for streaming in [false, true] {
            let s = assert_identical::<BitTaint>(&stream, mem, TaintPolicy::default(), streaming);
            assert_eq!(s.hits, 0, "{s:?}");
            assert_eq!(s.regions_recorded, 0, "{s:?}");
            assert!(s.uncacheable_heads >= 1, "{s:?}");
        }
    }

    /// A label whose propagate stamps the step: not step-invariant, so
    /// the cache must disable itself (correctness over speed).
    #[derive(Clone, Debug, Default, PartialEq)]
    struct StepStamp(u64);
    impl TaintLabel for StepStamp {
        fn is_clean(&self) -> bool {
            self.0 == 0
        }
        fn propagate(sources: &[Self], ctx: &LabelCtx) -> Self {
            if sources.iter().any(|s| s.0 != 0) {
                StepStamp(ctx.step + 1)
            } else {
                StepStamp(0)
            }
        }
        fn source(ctx: &LabelCtx, _ch: u16, _idx: u64) -> Self {
            StepStamp(ctx.step + 1)
        }
        fn shadow_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn step_dependent_labels_disable_the_cache() {
        let (stream, mem) = capture(&fixed_loop(40), &[7]);
        let s = assert_identical::<StepStamp>(&stream, mem, TaintPolicy::default(), true);
        assert_eq!(s.regions_recorded, 0, "non-step-invariant labels must not cache");
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn summary_tool_charges_less_than_the_plain_engine() {
        let p = fixed_loop(60);
        let run = |cached: bool| -> (u64, Vec<(u16, u64, BitTaint)>) {
            let mut m = Machine::new(p.clone(), MachineConfig::small());
            m.feed_input(0, &[7]);
            if cached {
                let mut t = SummaryTool::<BitTaint>::new(TaintPolicy::default(), test_cfg());
                let r = Engine::new(m).run_tool(&mut t);
                assert!(t.cached.stats().hits > 0, "tool path must hit via trace formation");
                (r.cycles, t.cached.engine().output_labels.clone())
            } else {
                let mut t = TaintEngine::<BitTaint>::new(TaintPolicy::default());
                let r = Engine::new(m).run_tool(&mut t);
                (r.cycles, t.output_labels.clone())
            }
        };
        let (plain_cycles, plain_out) = run(false);
        let (cached_cycles, cached_out) = run(true);
        assert_eq!(cached_out, plain_out, "observables agree under the tool too");
        assert!(
            cached_cycles < plain_cycles,
            "honest charging must still win on a hot fixed loop: {cached_cycles} vs {plain_cycles}"
        );
    }

    #[test]
    fn truncated_stream_drains_the_pending_match() {
        let (stream, mem) = capture(&fixed_loop(40), &[7]);
        // Cut mid-region so a match is pending at finish().
        let cut = stream.len() - 7;
        let mut plain = TaintEngine::<BitTaint>::new(TaintPolicy::default());
        plain.pre_size(mem);
        for fx in &stream[..cut] {
            plain.process(fx);
        }
        let mut cached = SummaryCachedEngine::<BitTaint>::new(TaintPolicy::default(), test_cfg());
        cached.engine_mut().pre_size(mem);
        for fx in &stream[..cut] {
            cached.process(fx);
        }
        cached.finish();
        assert_eq!(cached.engine().stats(), plain.stats());
        assert_eq!(cached.engine().output_labels, plain.output_labels);
    }

    #[test]
    fn hit_ranges_are_disjoint_and_ascending() {
        let (stream, mem) = capture(&fixed_loop(40), &[7]);
        let mut cached = SummaryCachedEngine::<BitTaint>::new(TaintPolicy::default(), test_cfg());
        cached.engine_mut().pre_size(mem);
        cached.process_stream(&stream);
        let ranges = cached.hit_ranges();
        assert!(!ranges.is_empty());
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "ranges must be disjoint and ordered: {ranges:?}");
        }
        assert!(cached.cache_bytes() > 0);
        assert_eq!(cached.regions_live(), 1);
    }

    #[test]
    fn backedge_counter_table_is_bounded() {
        let mut cached = SummaryCachedEngine::<BitTaint>::new(
            TaintPolicy::default(),
            SummaryCacheConfig { max_counters: 8, ..test_cfg() },
        );
        // Thousands of distinct cold back-edge targets must not grow the
        // table past the bound.
        for i in 0..1000u32 {
            let mut fx = StepEffects {
                tid: 0,
                addr: 10_000 + i,
                step: i as u64,
                control: Some(ControlEffect::Jump { target: i }),
                ..Default::default()
            };
            fx.insn = Instruction::new(dift_isa::Opcode::Nop, 0);
            cached.process(&fx);
        }
        assert!(cached.counts.len() <= 8, "cold counters must be bounded");
    }
}
