//! Epoch taint-transfer summaries for epoch-parallel DIFT.
//!
//! A window ("epoch") of the per-instruction effects stream can be
//! summarized **without knowing the taint state it starts from**: every
//! label the epoch produces is expressed over *symbolic unknowns* — the
//! incoming labels of the registers and memory cells the epoch reads
//! before writing. N workers summarize N epochs concurrently, and a
//! cheap sequential composition pass resolves each summary against the
//! concrete state left by its predecessor. Because instruction operands
//! and memory addresses are concrete in the stream (the VM already
//! resolved them), the intra-epoch data flow is exact; the only unknowns
//! are the incoming *labels*, which composition substitutes. The result
//! is bit-identical to serial [`TaintEngine::process`] over the same
//! stream: labels, alerts (including origin pointers), output lineage,
//! and exact peak statistics.
//!
//! The symbolic domain is a small expression DAG, generic over any
//! [`TaintLabel`]:
//!
//! * `Incoming(loc)` — the unknown label `loc` carries into the epoch;
//! * `Prop { ctx, args }` — `T::propagate(args, ctx)` with the full,
//!   ordered argument list (labels are *not* assumed to form a join
//!   semilattice — `PcTaint::propagate` stamps the current PC, so the
//!   propagate call structure must be preserved verbatim).
//!
//! Nodes are interned per epoch; anything computable from concrete
//! labels alone folds eagerly, so symbolic nodes only materialize along
//! chains rooted at genuinely unknown incoming labels. Peak statistics
//! stay exact because the summary records every shadow write in step
//! order and composition replays them through the engine's own
//! `set_mem_label`, which maintains the running peak counters.

use crate::engine::{AlertKind, TaintAlert, TaintEngine};
use crate::label::{LabelCtx, TaintLabel};
use crate::policy::TaintPolicy;
use dift_isa::{Addr, MemAddr, Opcode, Reg, NUM_REGS, SHADOW_PAGE_WORDS};
use dift_vm::{StepEffects, ThreadId};
use std::collections::HashMap;

/// A location whose label can flow into an epoch from outside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Loc {
    Reg(ThreadId, Reg),
    Mem(MemAddr),
}

/// A label that may depend on unknown incoming labels.
#[derive(Clone, Debug, PartialEq)]
pub enum SymLabel<T> {
    /// Fully determined within the epoch.
    Concrete(T),
    /// Index into the summary's node arena.
    Node(u32),
}

/// One vertex of the symbolic expression DAG.
#[derive(Clone, Debug)]
enum Node<T> {
    /// The label `loc` carries at epoch entry.
    Incoming(Loc),
    /// `T::propagate(args, ctx)` over the ordered argument list.
    Prop { ctx: LabelCtx, args: Vec<SymLabel<T>> },
}

/// How an alert's origin pointer resolves at composition time.
#[derive(Clone, Debug)]
enum OriginRef<T> {
    /// The offending register's origin was `None` at the alert.
    None,
    /// Known cell; its label *at alert time* captured symbolically.
    Cell(MemAddr, SymLabel<T>),
    /// The register was not redefined in the epoch before the alert, so
    /// its origin cell is the engine's epoch-entry origin for this
    /// register; the cell's at-alert-time label is the engine's live
    /// shadow at the replay point (writes replay in step order, so the
    /// live shadow is exactly the serial engine's at-alert-time state).
    IncomingReg(Reg),
}

/// A replayable observation, kept in step order.
#[derive(Clone, Debug)]
enum Event<T> {
    MemWrite {
        addr: MemAddr,
        label: SymLabel<T>,
    },
    Alert {
        step: u64,
        tid: ThreadId,
        at: Addr,
        kind: AlertKind,
        label: SymLabel<T>,
        origin: OriginRef<T>,
    },
    Output {
        ch: u16,
        /// Global emit index (the summarizer is seeded with the
        /// stream-prefix counts, so indices need no post-hoc fixup).
        idx: u64,
        label: SymLabel<T>,
    },
}

/// Per-channel `In`/`Out` counts of the stream prefix before an epoch.
///
/// Source labels (`T::source(ctx, ch, index)`) and output lineage use
/// *global* per-channel indices; those are label-independent functions of
/// the stream itself, so a cheap sequential pre-scan provides them to
/// each worker before summarization fans out.
#[derive(Clone, Debug, Default)]
pub struct IoBase {
    pub inputs: HashMap<u16, u64>,
    pub outputs: HashMap<u16, u64>,
}

impl IoBase {
    /// Advance the counts past `fxs` (the cheap pre-scan step).
    pub fn advance(&mut self, fxs: &[StepEffects]) {
        for fx in fxs {
            if let Some((ch, _)) = fx.input {
                *self.inputs.entry(ch).or_insert(0) += 1;
            }
            if let Some((ch, _)) = fx.output {
                *self.outputs.entry(ch).or_insert(0) += 1;
            }
        }
    }
}

/// Overlay cell state for one shadow word during summarization.
#[derive(Clone, Debug)]
enum OverlayCell<T> {
    /// Not touched by the epoch (reads intern an incoming node once).
    Empty,
    /// Read before any write; caches the interned incoming node.
    Incoming(u32),
    /// Written by the epoch; the current symbolic label.
    Written(SymLabel<T>),
}

/// Origin-tracking state for one register during summarization.
#[derive(Clone, Copy, Debug)]
enum OriginState {
    /// Not redefined yet — the incoming origin applies.
    Incoming,
    /// Redefined in-epoch with this origin.
    Known(Option<MemAddr>),
}

/// The composable result of summarizing one epoch.
pub struct EpochSummary<T: TaintLabel> {
    nodes: Vec<Node<T>>,
    /// `(node id, loc)` for every `Incoming` node, resolved first.
    incoming: Vec<(u32, Loc)>,
    events: Vec<Event<T>>,
    /// Final labels of registers the epoch wrote.
    reg_updates: Vec<(ThreadId, Reg, SymLabel<T>)>,
    /// Final origins of registers the epoch wrote.
    origin_updates: Vec<(ThreadId, Reg, Option<MemAddr>)>,
    max_tid: Option<ThreadId>,
    instrs: u64,
    sources: u64,
    /// Tainted-instruction count resolvable at summary time.
    tainted_known: u64,
    /// Steps whose taintedness depends on incoming labels: the step
    /// counts iff any listed node evaluates non-clean.
    tainted_cond: Vec<Vec<u32>>,
    input_delta: Vec<(u16, u64)>,
    output_delta: Vec<(u16, u64)>,
}

impl<T: TaintLabel> EpochSummary<T> {
    /// Number of symbolic nodes the epoch needed (diagnostics: the
    /// sequential composition cost is proportional to this plus the
    /// event count).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of replayable events (mem writes, alerts, outputs).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Records the summarizer stepped to build this summary. A consumer
    /// that knows how many records the epoch holds can use this as an
    /// integrity check: a summary built from a partial or damaged stream
    /// disagrees with the producer's count.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Evaluate a symbolic label against the resolved incoming cache.
    /// Iterative and memoized: each DAG node evaluates exactly once per
    /// composition, so chains shared by many events stay cheap.
    fn eval(&self, cache: &mut [Option<T>], l: &SymLabel<T>) -> T {
        match l {
            SymLabel::Concrete(t) => t.clone(),
            SymLabel::Node(id) => self.eval_node(cache, *id),
        }
    }

    fn eval_node(&self, cache: &mut [Option<T>], id: u32) -> T {
        if let Some(v) = &cache[id as usize] {
            return v.clone();
        }
        let mut stack = vec![id];
        let mut vals: Vec<T> = Vec::new();
        while let Some(&top) = stack.last() {
            if cache[top as usize].is_some() {
                stack.pop();
                continue;
            }
            match &self.nodes[top as usize] {
                Node::Incoming(loc) => {
                    unreachable!("incoming node for {loc:?} not resolved before eval")
                }
                Node::Prop { ctx, args } => {
                    let mut ready = true;
                    for a in args {
                        if let SymLabel::Node(c) = a {
                            if cache[*c as usize].is_none() {
                                stack.push(*c);
                                ready = false;
                            }
                        }
                    }
                    if ready {
                        vals.clear();
                        for a in args {
                            vals.push(match a {
                                SymLabel::Concrete(t) => t.clone(),
                                SymLabel::Node(c) => {
                                    cache[*c as usize].clone().expect("arg evaluated")
                                }
                            });
                        }
                        // Mirror the serial engine: the lattice join is
                        // skipped when every source is clean (the trait
                        // contract fixes propagate(all-clean) = clean).
                        let v = if vals.iter().any(|v| !v.is_clean()) {
                            T::propagate(&vals, ctx)
                        } else {
                            T::default()
                        };
                        cache[top as usize] = Some(v);
                        stack.pop();
                    }
                }
            }
        }
        cache[id as usize].clone().expect("root evaluated")
    }
}

/// Streaming builder of an [`EpochSummary`]: feed it the epoch's effects
/// in order via [`Self::step`], then [`Self::finish`]. Mirrors
/// [`TaintEngine::process`] step for step, but over symbolic labels.
pub struct EpochSummarizer<T: TaintLabel> {
    policy: TaintPolicy,
    nodes: Vec<Node<T>>,
    incoming: Vec<(u32, Loc)>,
    events: Vec<Event<T>>,
    /// Per-tid symbolic register file (rows intern incoming nodes).
    regs: Vec<Vec<SymLabel<T>>>,
    /// Per-tid dirty flags (which registers the epoch wrote).
    written: Vec<Vec<bool>>,
    origins: Vec<Vec<OriginState>>,
    /// Paged shadow overlay (same page geometry as `ShadowMap`).
    mem_pages: Vec<Option<Box<[OverlayCell<T>]>>>,
    input_counts: HashMap<u16, u64>,
    output_counts: HashMap<u16, u64>,
    base: IoBase,
    max_tid: Option<ThreadId>,
    instrs: u64,
    sources: u64,
    tainted_known: u64,
    tainted_cond: Vec<Vec<u32>>,
    /// Scratch for eager all-concrete propagation.
    scratch: Vec<T>,
}

impl<T: TaintLabel> EpochSummarizer<T> {
    /// `base` carries the per-channel `In`/`Out` counts of the stream
    /// prefix before this epoch (see [`IoBase`]).
    pub fn new(policy: TaintPolicy, base: &IoBase) -> EpochSummarizer<T> {
        EpochSummarizer {
            policy,
            nodes: Vec::new(),
            incoming: Vec::new(),
            events: Vec::new(),
            regs: Vec::new(),
            written: Vec::new(),
            origins: Vec::new(),
            mem_pages: Vec::new(),
            input_counts: base.inputs.clone(),
            output_counts: base.outputs.clone(),
            base: base.clone(),
            max_tid: None,
            instrs: 0,
            sources: 0,
            tainted_known: 0,
            tainted_cond: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn intern_incoming(&mut self, loc: Loc) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Incoming(loc));
        self.incoming.push((id, loc));
        id
    }

    fn prop_node(&mut self, ctx: LabelCtx, args: Vec<SymLabel<T>>) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Prop { ctx, args });
        id
    }

    fn ensure_tid(&mut self, tid: ThreadId) {
        while self.regs.len() <= tid as usize {
            let t = self.regs.len() as ThreadId;
            let row: Vec<SymLabel<T>> = (0..NUM_REGS)
                .map(|r| SymLabel::Node(self.intern_incoming(Loc::Reg(t, Reg(r as u8)))))
                .collect();
            self.regs.push(row);
            self.written.push(vec![false; NUM_REGS]);
            self.origins.push(vec![OriginState::Incoming; NUM_REGS]);
        }
    }

    #[inline]
    fn split(addr: MemAddr) -> (usize, usize) {
        let a = addr as usize;
        (a / SHADOW_PAGE_WORDS, a % SHADOW_PAGE_WORDS)
    }

    fn empty_page() -> Box<[OverlayCell<T>]> {
        (0..SHADOW_PAGE_WORDS).map(|_| OverlayCell::Empty).collect()
    }

    /// Symbolic label of shadow word `addr`; interns (and caches) an
    /// incoming node on the first read of an unwritten cell.
    fn mem_label(&mut self, addr: MemAddr) -> SymLabel<T> {
        let (p, off) = Self::split(addr);
        if let Some(Some(page)) = self.mem_pages.get(p) {
            match &page[off] {
                OverlayCell::Incoming(id) => return SymLabel::Node(*id),
                OverlayCell::Written(l) => return l.clone(),
                OverlayCell::Empty => {}
            }
        }
        let id = self.intern_incoming(Loc::Mem(addr));
        if p >= self.mem_pages.len() {
            self.mem_pages.resize_with(p + 1, || None);
        }
        let page = self.mem_pages[p].get_or_insert_with(Self::empty_page);
        page[off] = OverlayCell::Incoming(id);
        SymLabel::Node(id)
    }

    fn mem_store(&mut self, addr: MemAddr, label: SymLabel<T>) {
        let (p, off) = Self::split(addr);
        if p >= self.mem_pages.len() {
            self.mem_pages.resize_with(p + 1, || None);
        }
        let page = self.mem_pages[p].get_or_insert_with(Self::empty_page);
        page[off] = OverlayCell::Written(label);
    }

    /// Summarize one step. Mirrors `TaintEngine::process` exactly, with
    /// symbolic labels standing in for unknown incoming state.
    pub fn step(&mut self, fx: &StepEffects) {
        let tid = fx.tid;
        self.ensure_tid(tid);
        self.max_tid = Some(self.max_tid.map_or(tid, |m| m.max(tid)));
        self.instrs += 1;
        let ctx = LabelCtx { addr: fx.addr, step: fx.step, stmt: fx.insn.stmt };

        let data_uses = fx.insn.data_uses();
        let addr_uses = fx.insn.addr_uses();
        let t = tid as usize;

        // Gather source labels (same order as the serial engine).
        let mut srcs: Vec<SymLabel<T>> = Vec::with_capacity(4);
        for r in &data_uses {
            srcs.push(self.regs[t][r.index()].clone());
        }
        if self.policy.propagate_through_addr {
            for r in &addr_uses {
                srcs.push(self.regs[t][r.index()].clone());
            }
        }
        if let Some((addr, _)) = fx.mem_read {
            srcs.push(self.mem_label(addr));
        }

        // Taintedness of the step: known when a concrete source is
        // tainted or every source is concrete; otherwise conditional on
        // the symbolic sources.
        let mut concrete_tainted = false;
        let mut deps: Vec<u32> = Vec::new();
        for s in &srcs {
            match s {
                SymLabel::Concrete(l) => {
                    if !l.is_clean() {
                        concrete_tainted = true;
                    }
                }
                SymLabel::Node(id) => deps.push(*id),
            }
        }

        // Checks (before the write-side update), same loop order as the
        // engine so the alert stream composes in identical order.
        if self.policy.check_mem_addr || self.policy.check_control {
            for r in &addr_uses {
                let label = self.regs[t][r.index()].clone();
                if let SymLabel::Concrete(l) = &label {
                    if l.is_clean() {
                        continue;
                    }
                }
                let kind = match fx.insn.op {
                    Opcode::Load { .. } => AlertKind::TaintedLoadAddr,
                    Opcode::Store { .. } | Opcode::Atomic { .. } | Opcode::Cas { .. } => {
                        AlertKind::TaintedStoreAddr
                    }
                    Opcode::JumpInd { .. } | Opcode::CallInd { .. } => AlertKind::TaintedControl,
                    _ => continue,
                };
                let wanted = match kind {
                    AlertKind::TaintedControl => self.policy.check_control,
                    _ => self.policy.check_mem_addr,
                };
                if wanted {
                    let origin = match self.origins[t][r.index()] {
                        OriginState::Known(None) => OriginRef::None,
                        OriginState::Known(Some(cell)) => {
                            let l = self.mem_label(cell);
                            OriginRef::Cell(cell, l)
                        }
                        OriginState::Incoming => OriginRef::IncomingReg(r),
                    };
                    self.events.push(Event::Alert {
                        step: fx.step,
                        tid,
                        at: fx.addr,
                        kind,
                        label,
                        origin,
                    });
                }
            }
        }

        // Write-side propagation.
        let is_source = matches!(fx.insn.op, Opcode::In { .. });
        let out_label: SymLabel<T> = if is_source {
            let (ch, _) = fx.input.expect("In always has an input effect");
            let idx = self.input_counts.entry(ch).or_insert(0);
            let l = T::source(&ctx, ch, *idx);
            *idx += 1;
            self.sources += 1;
            SymLabel::Concrete(l)
        } else if deps.is_empty() {
            if concrete_tainted {
                self.scratch.clear();
                for s in &srcs {
                    match s {
                        SymLabel::Concrete(l) => self.scratch.push(l.clone()),
                        SymLabel::Node(_) => unreachable!("deps is empty"),
                    }
                }
                SymLabel::Concrete(T::propagate(&self.scratch, &ctx))
            } else {
                SymLabel::Concrete(T::default())
            }
        } else if fx.reg_write.is_some() || fx.mem_write.is_some() {
            // At least one unknown source: keep the full, ordered
            // propagate call symbolic (even when a concrete source is
            // already tainted — a lattice like a lineage set still
            // depends on the unknown arguments' values).
            SymLabel::Node(self.prop_node(ctx, srcs))
        } else {
            // No destination reads this label (e.g. a branch over an
            // incoming register) — don't grow the DAG for it.
            SymLabel::Concrete(T::default())
        };

        if is_source || concrete_tainted {
            self.tainted_known += 1;
        } else if !deps.is_empty() {
            self.tainted_cond.push(deps);
        }

        if let Some((r, _, _)) = fx.reg_write {
            self.regs[t][r.index()] = out_label.clone();
            self.written[t][r.index()] = true;
            self.origins[t][r.index()] = OriginState::Known(match fx.insn.op {
                Opcode::Load { .. } => fx.mem_read.map(|(a, _)| a),
                _ => None,
            });
        }
        if let Some((addr, _, _)) = fx.mem_write {
            self.mem_store(addr, out_label.clone());
            self.events.push(Event::MemWrite { addr, label: out_label });
        }

        if let Some((ch, _)) = fx.output {
            let idx = self.output_counts.entry(ch).or_insert(0);
            let label = data_uses
                .as_slice()
                .first()
                .map(|r| self.regs[t][r.index()].clone())
                .unwrap_or(SymLabel::Concrete(T::default()));
            self.events.push(Event::Output { ch, idx: *idx, label });
            *idx += 1;
        }
    }

    /// Seal the summary.
    pub fn finish(self) -> EpochSummary<T> {
        let mut reg_updates = Vec::new();
        let mut origin_updates = Vec::new();
        for (t, row) in self.written.iter().enumerate() {
            for (r, dirty) in row.iter().enumerate() {
                if !dirty {
                    continue;
                }
                let tid = t as ThreadId;
                let reg = Reg(r as u8);
                reg_updates.push((tid, reg, self.regs[t][r].clone()));
                match self.origins[t][r] {
                    OriginState::Known(o) => origin_updates.push((tid, reg, o)),
                    OriginState::Incoming => unreachable!("written register has a known origin"),
                }
            }
        }
        let delta = |now: &HashMap<u16, u64>, base: &HashMap<u16, u64>| -> Vec<(u16, u64)> {
            let mut v: Vec<(u16, u64)> = now
                .iter()
                .filter_map(|(ch, n)| {
                    let d = n - base.get(ch).copied().unwrap_or(0);
                    (d > 0).then_some((*ch, d))
                })
                .collect();
            v.sort_unstable();
            v
        };
        EpochSummary {
            input_delta: delta(&self.input_counts, &self.base.inputs),
            output_delta: delta(&self.output_counts, &self.base.outputs),
            nodes: self.nodes,
            incoming: self.incoming,
            events: self.events,
            reg_updates,
            origin_updates,
            max_tid: self.max_tid,
            instrs: self.instrs,
            sources: self.sources,
            tainted_known: self.tainted_known,
            tainted_cond: self.tainted_cond,
        }
    }
}

/// Memoized concrete replay of repeated applications of one summary —
/// the hot-code summary cache's steady-state fast path.
///
/// Applying a summary is a pure function of the labels its `incoming`
/// locations carry at application time. The cache applies the *same*
/// summary over and over, and in steady state the incoming labels
/// converge (a hot loop's taint state is stationary after the first
/// sweeps). So the second application onward can skip the node-DAG
/// evaluation entirely: resolve the incoming labels, compare with the
/// previous application's, and on equality replay the fully
/// concretized action list recorded then — same writes, same alerts,
/// same stats, bit for bit, at a fraction of the cost.
pub struct ApplyMemo<T: TaintLabel> {
    /// Incoming labels at the last recorded application, in
    /// `EpochSummary::incoming` order.
    inputs: Vec<T>,
    /// Concretized actions of that application; `None` until one runs
    /// (or when the application is inherently non-memoizable).
    replay: Option<Replay<T>>,
}

impl<T: TaintLabel> Default for ApplyMemo<T> {
    fn default() -> ApplyMemo<T> {
        ApplyMemo { inputs: Vec::new(), replay: None }
    }
}

impl<T: TaintLabel> ApplyMemo<T> {
    /// Approximate resident bytes (cache-storage accounting).
    pub fn approx_bytes(&self) -> u64 {
        let actions =
            self.replay.as_ref().map(|r| r.actions.len() + r.reg_updates.len()).unwrap_or(0);
        (self.inputs.len() + actions) as u64 * 16
    }
}

struct Replay<T: TaintLabel> {
    /// Writes, firing alerts, and outputs in event order. Alert steps
    /// keep the summary's recorded values; the caller's `step_delta` is
    /// added at replay time.
    actions: Vec<ReplayAction<T>>,
    /// Final concrete labels of registers the epoch wrote.
    reg_updates: Vec<(ThreadId, Reg, T)>,
    /// Conditional tainted steps that fired under these inputs.
    tainted_resolved: u64,
}

enum ReplayAction<T: TaintLabel> {
    Mem(MemAddr, T),
    Alert(TaintAlert<T>),
    Output(u16, u64, T),
}

/// Summarize one epoch of the effects stream in a single pass.
pub fn summarize_epoch<T: TaintLabel>(
    fxs: &[StepEffects],
    policy: TaintPolicy,
    base: &IoBase,
) -> EpochSummary<T> {
    let mut s = EpochSummarizer::new(policy, base);
    for fx in fxs {
        s.step(fx);
    }
    s.finish()
}

impl<T: TaintLabel, R: dift_obs::Recorder> TaintEngine<T, R> {
    /// Compose an epoch summary onto this engine's state — the
    /// sequential stitching pass of epoch-parallel DIFT. After the call
    /// the engine is bit-identical to having `process`ed the epoch's
    /// stream serially: same labels, alerts, output lineage, shadow
    /// state, and exact peak statistics.
    pub fn apply_summary(&mut self, s: &EpochSummary<T>) {
        self.apply_summary_rebased(s, 0);
    }

    /// [`Self::apply_summary`] with every recorded alert step shifted
    /// forward by `step_delta` — the composition primitive of the hot-code
    /// summary cache (`crate::summary_cache`), which replays a summary
    /// recorded at one step range at a later, guard-identical execution
    /// of the same region.
    ///
    /// Only alert steps are rebased: they are the sole absolute step
    /// values a summary stores. Output emit indices are per-channel
    /// *IoBase-relative* counts, not steps, and the cache never applies
    /// summaries containing I/O. Symbolic `Prop` nodes keep their
    /// recorded `ctx` (including the recorded step), which is exact for
    /// labels with [`TaintLabel::STEP_INVARIANT`] — the cache refuses to
    /// install regions for labels without it.
    pub fn apply_summary_rebased(&mut self, s: &EpochSummary<T>, step_delta: u64) {
        self.apply_summary_inner(s, step_delta, None);
    }

    /// [`Self::apply_summary_rebased`] through an [`ApplyMemo`]: when
    /// the summary's incoming labels are unchanged since the memo's last
    /// recorded application, the concretized action list replays without
    /// evaluating the node DAG — the summary cache's steady-state hit
    /// path. Falls back to (and re-records) the full application
    /// whenever any incoming label changed. Either way the engine ends
    /// bit-identical to [`Self::apply_summary_rebased`].
    ///
    /// Returns true when the memo matched (the concrete replay ran);
    /// false when the full path ran and re-recorded the memo. The
    /// summary cache uses this bit to prove replay *fixpoints* for the
    /// even cheaper [`Self::apply_summary_sealed`] path.
    pub fn apply_summary_memoized(
        &mut self,
        s: &EpochSummary<T>,
        step_delta: u64,
        memo: &mut ApplyMemo<T>,
    ) -> bool {
        if let Some(mt) = s.max_tid {
            self.ensure_tid(mt);
        }
        if let Some(replay) = &memo.replay {
            let same = memo.inputs.len() == s.incoming.len()
                && s.incoming.iter().zip(&memo.inputs).all(|((_, loc), prev)| {
                    let v = match *loc {
                        Loc::Reg(tid, r) => self.reg_label(tid, r),
                        Loc::Mem(a) => self.mem.get(a),
                    };
                    v == *prev
                });
            if same {
                for a in &replay.actions {
                    match a {
                        ReplayAction::Mem(addr, l) => self.set_mem_label(*addr, l.clone()),
                        ReplayAction::Alert(al) => {
                            let mut al = al.clone();
                            al.step += step_delta;
                            self.alerts.push(al);
                        }
                        ReplayAction::Output(ch, idx, l) => {
                            self.output_labels.push((*ch, *idx, l.clone()));
                        }
                    }
                }
                for (tid, r, l) in &replay.reg_updates {
                    self.regs[*tid as usize][r.index()] = l.clone();
                }
                if self.track_origins {
                    for (tid, r, o) in &s.origin_updates {
                        self.origins[*tid as usize][r.index()] = *o;
                    }
                }
                self.stats.instrs += s.instrs;
                self.stats.sources += s.sources;
                self.stats.tainted_instrs += s.tainted_known + replay.tainted_resolved;
                for (ch, d) in &s.input_delta {
                    *self.input_counts.entry(*ch).or_insert(0) += *d;
                }
                for (ch, d) in &s.output_delta {
                    *self.output_counts.entry(*ch).or_insert(0) += *d;
                }
                return true;
            }
        }
        // Inputs changed (or first application): run the full path while
        // re-recording the concretized actions for the next hit.
        memo.inputs.clear();
        for (_, loc) in &s.incoming {
            memo.inputs.push(match *loc {
                Loc::Reg(tid, r) => self.reg_label(tid, r),
                Loc::Mem(a) => self.mem.get(a),
            });
        }
        let mut replay =
            Replay { actions: Vec::new(), reg_updates: Vec::new(), tainted_resolved: 0 };
        let memoizable = self.apply_summary_inner(s, step_delta, Some(&mut replay));
        memo.replay = if memoizable { Some(replay) } else { None };
        false
    }

    /// The *sealed* fast path of [`Self::apply_summary_memoized`]: valid
    /// only when the caller proves — by counting engine mutations, see
    /// `SummaryCachedEngine` — that the engine's label state is exactly
    /// the post-state of this memo's replay applied to inputs equal to
    /// the memo's. Every label write the replay would perform is then
    /// already in place, so only the per-execution observables are
    /// appended: alerts (rebased by `step_delta`), output lineage, and
    /// statistics. Returns false (doing nothing) when the memo holds no
    /// replay; the caller must then fall back to the memoized path.
    pub fn apply_summary_sealed(
        &mut self,
        s: &EpochSummary<T>,
        step_delta: u64,
        memo: &ApplyMemo<T>,
    ) -> bool {
        let Some(replay) = &memo.replay else {
            return false;
        };
        for a in &replay.actions {
            match a {
                // Sealed: the shadow already carries this exact label.
                ReplayAction::Mem(..) => {}
                ReplayAction::Alert(al) => {
                    let mut al = al.clone();
                    al.step += step_delta;
                    self.alerts.push(al);
                }
                ReplayAction::Output(ch, idx, l) => {
                    self.output_labels.push((*ch, *idx, l.clone()));
                }
            }
        }
        self.stats.instrs += s.instrs;
        self.stats.sources += s.sources;
        self.stats.tainted_instrs += s.tainted_known + replay.tainted_resolved;
        for (ch, d) in &s.input_delta {
            *self.input_counts.entry(*ch).or_insert(0) += *d;
        }
        for (ch, d) in &s.output_delta {
            *self.output_counts.entry(*ch).or_insert(0) += *d;
        }
        true
    }

    /// Shared application body. When `rec` is given, every concrete
    /// action is also recorded for memoized replay; returns false when
    /// the application is non-memoizable (a firing alert resolved its
    /// origin through live engine state rather than incoming labels).
    fn apply_summary_inner(
        &mut self,
        s: &EpochSummary<T>,
        step_delta: u64,
        mut rec: Option<&mut Replay<T>>,
    ) -> bool {
        let mut memoizable = true;
        if let Some(mt) = s.max_tid {
            self.ensure_tid(mt);
        }
        // Resolve every incoming unknown against the pre-epoch state
        // *before* replaying any write: symbolic labels always refer to
        // epoch-entry state, while live lookups during the replay below
        // see the correctly interleaved mid-epoch state.
        let mut cache: Vec<Option<T>> = vec![None; s.nodes.len()];
        for (id, loc) in &s.incoming {
            let v = match *loc {
                Loc::Reg(tid, r) => self.reg_label(tid, r),
                Loc::Mem(a) => self.mem.get(a),
            };
            cache[*id as usize] = Some(v);
        }

        for ev in &s.events {
            match ev {
                Event::MemWrite { addr, label } => {
                    let l = s.eval(&mut cache, label);
                    if let Some(r) = rec.as_deref_mut() {
                        r.actions.push(ReplayAction::Mem(*addr, l.clone()));
                    }
                    // The engine's own counter-maintaining write keeps
                    // peak statistics exact under replay.
                    self.set_mem_label(*addr, l);
                }
                Event::Alert { step, tid, at, kind, label, origin } => {
                    let l = s.eval(&mut cache, label);
                    if l.is_clean() {
                        continue; // conditional alert did not fire
                    }
                    let origin = match origin {
                        OriginRef::None => None,
                        OriginRef::Cell(cell, sym) => Some((*cell, s.eval(&mut cache, sym))),
                        OriginRef::IncomingReg(r) => {
                            // Resolved through live engine state (the
                            // epoch-entry origin table and mid-replay
                            // shadow), not through incoming labels —
                            // equal inputs do not pin it, so a replay
                            // recording cannot keep this application.
                            memoizable = false;
                            self.origins
                                .get(*tid as usize)
                                .and_then(|row| row[r.index()])
                                .map(|cell| (cell, self.mem.get(cell)))
                        }
                    };
                    let alert = TaintAlert {
                        step: *step,
                        tid: *tid,
                        at: *at,
                        kind: *kind,
                        label: l,
                        origin,
                    };
                    if let Some(r) = rec.as_deref_mut() {
                        r.actions.push(ReplayAction::Alert(alert.clone()));
                    }
                    self.alerts.push(TaintAlert { step: alert.step + step_delta, ..alert });
                }
                Event::Output { ch, idx, label } => {
                    let l = s.eval(&mut cache, label);
                    if let Some(r) = rec.as_deref_mut() {
                        r.actions.push(ReplayAction::Output(*ch, *idx, l.clone()));
                    }
                    self.output_labels.push((*ch, *idx, l));
                }
            }
        }

        for (tid, r, sym) in &s.reg_updates {
            let l = s.eval(&mut cache, sym);
            if let Some(rp) = rec.as_deref_mut() {
                rp.reg_updates.push((*tid, *r, l.clone()));
            }
            self.regs[*tid as usize][r.index()] = l;
        }
        if self.track_origins {
            for (tid, r, o) in &s.origin_updates {
                self.origins[*tid as usize][r.index()] = *o;
            }
        }

        self.stats.instrs += s.instrs;
        self.stats.sources += s.sources;
        self.stats.tainted_instrs += s.tainted_known;
        for deps in &s.tainted_cond {
            if deps.iter().any(|id| !s.eval_node(&mut cache, *id).is_clean()) {
                self.stats.tainted_instrs += 1;
                if let Some(r) = rec.as_deref_mut() {
                    r.tainted_resolved += 1;
                }
            }
        }
        for (ch, d) in &s.input_delta {
            *self.input_counts.entry(*ch).or_insert(0) += *d;
        }
        for (ch, d) in &s.output_delta {
            *self.output_counts.entry(*ch).or_insert(0) += *d;
        }
        memoizable
    }
}

/// Drive `engine` over `stream` via epoch summaries composed in order —
/// the single-threaded reference for the epoch-parallel engine (and the
/// shape the differential tests exercise).
pub fn process_by_epochs<T: TaintLabel>(
    engine: &mut TaintEngine<T>,
    stream: &[StepEffects],
    epoch_len: usize,
) {
    assert!(epoch_len > 0, "epoch length must be positive");
    let policy = engine.policy();
    let mut base = IoBase::default();
    for chunk in stream.chunks(epoch_len) {
        let s = summarize_epoch::<T>(chunk, policy, &base);
        engine.apply_summary(&s);
        base.advance(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{BitTaint, PcTaint};
    use crate::reference::ReferenceTaintEngine;
    use dift_dbi::{Engine, Tool};
    use dift_isa::{BinOp, ProgramBuilder};
    use dift_vm::{Machine, MachineConfig};
    use std::sync::Arc;

    fn capture(p: &Arc<dift_isa::Program>, inputs: &[u64]) -> (Vec<StepEffects>, usize) {
        #[derive(Default)]
        struct Cap(Vec<StepEffects>);
        impl Tool for Cap {
            fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
                self.0.push(fx.clone());
            }
        }
        let mut m = Machine::new(p.clone(), MachineConfig::small());
        m.feed_input(0, inputs);
        let mem_words = m.mem_words();
        let mut cap = Cap::default();
        Engine::new(m).run_tool(&mut cap);
        (cap.0, mem_words)
    }

    fn workload() -> Arc<dift_isa::Program> {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 0);
        b.li(Reg(3), 40);
        b.label("loop");
        b.add(Reg(2), Reg(2), Reg(1));
        b.bini(BinOp::Rem, Reg(4), Reg(2), 97);
        b.li(Reg(5), 300);
        b.store(Reg(4), Reg(5), 0);
        b.load(Reg(6), Reg(5), 0);
        b.bini(BinOp::Sub, Reg(3), Reg(3), 1);
        b.branch(dift_isa::BranchCond::Ne, Reg(3), Reg(0), "loop");
        b.output(Reg(2), 0);
        b.halt();
        Arc::new(b.build().unwrap())
    }

    fn check_epochs<T: TaintLabel>(
        stream: &[StepEffects],
        mem_words: usize,
        policy: TaintPolicy,
        epoch_len: usize,
    ) {
        let mut oracle = ReferenceTaintEngine::<T>::new(policy);
        for fx in stream {
            oracle.process(fx);
        }
        let mut epoch = TaintEngine::<T>::new(policy);
        epoch.pre_size(mem_words);
        process_by_epochs(&mut epoch, stream, epoch_len);
        assert_eq!(epoch.output_labels, oracle.output_labels, "epoch_len={epoch_len}");
        assert_eq!(epoch.alerts, oracle.alerts, "epoch_len={epoch_len}");
        assert_eq!(epoch.tainted_words(), oracle.tainted_words(), "epoch_len={epoch_len}");
        assert_eq!(epoch.stats(), oracle.stats(), "epoch_len={epoch_len}");
    }

    #[test]
    fn epoch_composition_matches_serial_for_all_epoch_lengths() {
        let p = workload();
        let (stream, mem_words) = capture(&p, &[7]);
        for epoch_len in [1, 3, 16, 64, stream.len()] {
            check_epochs::<BitTaint>(&stream, mem_words, TaintPolicy::propagate_only(), epoch_len);
            check_epochs::<PcTaint>(&stream, mem_words, TaintPolicy::propagate_only(), epoch_len);
        }
    }

    #[test]
    fn epoch_composition_matches_serial_with_checks() {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.addi(Reg(2), Reg(1), 100);
        b.li(Reg(3), 1);
        b.store(Reg(3), Reg(2), 0); // tainted store address -> alert
        b.load(Reg(4), Reg(2), 0); // tainted load address -> alert
        b.output(Reg(4), 0);
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let (stream, mem_words) = capture(&p, &[4]);
        let mut policy = TaintPolicy::default();
        for epoch_len in [1, 2, 5, 64] {
            check_epochs::<PcTaint>(&stream, mem_words, policy, epoch_len);
        }
        policy.propagate_through_addr = true;
        for epoch_len in [1, 2, 5, 64] {
            check_epochs::<BitTaint>(&stream, mem_words, policy, epoch_len);
        }
    }

    #[test]
    fn summaries_fold_concrete_chains_eagerly() {
        // A stream whose taint is created *inside* the epoch needs no
        // symbolic nodes beyond the interned register file.
        let p = workload();
        let (stream, _) = capture(&p, &[7]);
        let s =
            summarize_epoch::<BitTaint>(&stream, TaintPolicy::propagate_only(), &IoBase::default());
        assert_eq!(
            s.node_count(),
            NUM_REGS,
            "only the per-tid incoming register nodes should exist"
        );
        // Splitting the same stream mid-loop forces symbolic chains.
        let mid = stream.len() / 2;
        let mut base = IoBase::default();
        base.advance(&stream[..mid]);
        let s2 = summarize_epoch::<BitTaint>(&stream[mid..], TaintPolicy::propagate_only(), &base);
        assert!(s2.node_count() > NUM_REGS, "incoming-dependent chains are symbolic");
    }

    use dift_isa::Reg;
}
