//! Propagation and checking policy.

/// What flows taint and what raises alerts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaintPolicy {
    /// Propagate through address registers of loads (pointer taint):
    /// `x = a[i]` taints `x` when `i` is tainted. Off by default — the
    /// paper's detector uses tainted addresses as *alerts*, not flows.
    pub propagate_through_addr: bool,
    /// Alert when a tainted value is used as a load/store address.
    pub check_mem_addr: bool,
    /// Alert when a tainted value is an indirect jump/call target.
    pub check_control: bool,
    /// Charge instrumentation cycles to the machine (off when the engine
    /// is driven by the multicore helper, which has its own cost model).
    pub charge_cycles: bool,
}

impl Default for TaintPolicy {
    fn default() -> Self {
        TaintPolicy {
            propagate_through_addr: false,
            check_mem_addr: true,
            check_control: true,
            charge_cycles: true,
        }
    }
}

impl TaintPolicy {
    /// Pure propagation, no checks, no charges — lineage tracing mode.
    pub fn propagate_only() -> TaintPolicy {
        TaintPolicy {
            propagate_through_addr: false,
            check_mem_addr: false,
            check_control: false,
            charge_cycles: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_checks_both_sinks() {
        let p = TaintPolicy::default();
        assert!(p.check_mem_addr && p.check_control);
        assert!(!p.propagate_through_addr);
    }

    #[test]
    fn propagate_only_disables_checks() {
        let p = TaintPolicy::propagate_only();
        assert!(!p.check_mem_addr && !p.check_control);
    }
}
