//! Reference DIFT engine — the pre-optimization implementation, kept
//! as a differential-testing oracle and benchmarking baseline.
//!
//! This is the `HashMap`-shadowed, allocating formulation the paged
//! [`crate::ShadowMap`] engine replaced: per-instruction `Vec` source
//! buffers, hashed shadow lookups, and peak accounting that rescans the
//! map. Semantics are the ground truth: the optimized engine must agree
//! with this one on labels, alerts, and counters for every program (see
//! `tests/shadow_diff.rs`), and the throughput delta between the two is
//! what `BENCH_taint.json` records.

use crate::engine::{AlertKind, TaintAlert, TaintStats};
use crate::label::{LabelCtx, TaintLabel};
use crate::policy::TaintPolicy;
use dift_isa::{MemAddr, Opcode, Reg, NUM_REGS};
use dift_vm::{StepEffects, ThreadId};
use std::collections::HashMap;

/// The unoptimized engine. Mirrors [`crate::TaintEngine`]'s observable
/// surface; not a [`dift_dbi::Tool`] — drive it with [`Self::process`].
pub struct ReferenceTaintEngine<T: TaintLabel> {
    policy: TaintPolicy,
    regs: Vec<Vec<T>>,
    origins: Vec<Vec<Option<MemAddr>>>,
    mem: HashMap<MemAddr, T>,
    input_counts: HashMap<u16, u64>,
    pub alerts: Vec<TaintAlert<T>>,
    pub output_labels: Vec<(u16, u64, T)>,
    output_counts: HashMap<u16, u64>,
    stats: TaintStats,
}

impl<T: TaintLabel> ReferenceTaintEngine<T> {
    pub fn new(policy: TaintPolicy) -> ReferenceTaintEngine<T> {
        ReferenceTaintEngine {
            policy,
            regs: Vec::new(),
            origins: Vec::new(),
            mem: HashMap::new(),
            input_counts: HashMap::new(),
            alerts: Vec::new(),
            output_labels: Vec::new(),
            output_counts: HashMap::new(),
            stats: TaintStats::default(),
        }
    }

    pub fn stats(&self) -> &TaintStats {
        &self.stats
    }

    pub fn tainted_words(&self) -> usize {
        self.mem.len()
    }

    pub fn mem_label(&self, addr: MemAddr) -> T {
        self.mem.get(&addr).cloned().unwrap_or_default()
    }

    /// Tainted memory as sorted `(addr, label)` pairs.
    pub fn tainted_cells(&self) -> Vec<(MemAddr, T)> {
        let mut v: Vec<(MemAddr, T)> = self.mem.iter().map(|(a, l)| (*a, l.clone())).collect();
        v.sort_by_key(|(a, _)| *a);
        v
    }

    fn ensure_tid(&mut self, tid: ThreadId) {
        while self.regs.len() <= tid as usize {
            self.regs.push(vec![T::default(); NUM_REGS]);
            self.origins.push(vec![None; NUM_REGS]);
        }
    }

    fn set_mem_label(&mut self, addr: MemAddr, label: T) {
        if label.is_clean() {
            self.mem.remove(&addr);
        } else {
            self.mem.insert(addr, label);
        }
        if self.mem.len() > self.stats.peak_tainted_words {
            self.stats.peak_tainted_words = self.mem.len();
            // The O(n) rescan the optimized engine's running counters
            // replaced — kept verbatim as the oracle.
            self.stats.peak_shadow_bytes = self.mem.values().map(|l| l.shadow_bytes()).sum();
        }
    }

    /// Process one step's effects (seed-engine semantics, allocating).
    pub fn process(&mut self, fx: &StepEffects) {
        let tid = fx.tid;
        self.ensure_tid(tid);
        self.stats.instrs += 1;
        let ctx = LabelCtx { addr: fx.addr, step: fx.step, stmt: fx.insn.stmt };

        let t = tid as usize;
        let mut sources: Vec<T> = Vec::with_capacity(4);
        for r in &fx.insn.data_uses() {
            sources.push(self.regs[t][r.index()].clone());
        }
        if self.policy.propagate_through_addr {
            for r in &fx.insn.addr_uses() {
                sources.push(self.regs[t][r.index()].clone());
            }
        }
        if let Some((addr, _)) = fx.mem_read {
            sources.push(self.mem_label(addr));
        }
        let any_tainted = sources.iter().any(|s| !s.is_clean());

        if self.policy.check_mem_addr || self.policy.check_control {
            for r in &fx.insn.addr_uses() {
                let label = &self.regs[t][r.index()];
                if label.is_clean() {
                    continue;
                }
                let kind = match fx.insn.op {
                    Opcode::Load { .. } => AlertKind::TaintedLoadAddr,
                    Opcode::Store { .. } | Opcode::Atomic { .. } | Opcode::Cas { .. } => {
                        AlertKind::TaintedStoreAddr
                    }
                    Opcode::JumpInd { .. } | Opcode::CallInd { .. } => AlertKind::TaintedControl,
                    _ => continue,
                };
                let wanted = match kind {
                    AlertKind::TaintedControl => self.policy.check_control,
                    _ => self.policy.check_mem_addr,
                };
                if wanted {
                    let origin = self.origins[t][r.index()]
                        .map(|cell| (cell, self.mem.get(&cell).cloned().unwrap_or_default()));
                    self.alerts.push(TaintAlert {
                        step: fx.step,
                        tid,
                        at: fx.addr,
                        kind,
                        label: label.clone(),
                        origin,
                    });
                }
            }
        }

        let is_source = matches!(fx.insn.op, Opcode::In { .. });
        let out_label = if is_source {
            let (ch, _) = fx.input.expect("In always has an input effect");
            let idx = self.input_counts.entry(ch).or_insert(0);
            let l = T::source(&ctx, ch, *idx);
            *idx += 1;
            self.stats.sources += 1;
            l
        } else {
            T::propagate(&sources, &ctx)
        };

        if any_tainted || is_source {
            self.stats.tainted_instrs += 1;
        }

        if let Some((r, _, _)) = fx.reg_write {
            self.regs[t][r.index()] = out_label.clone();
            self.origins[t][r.index()] = match fx.insn.op {
                Opcode::Load { .. } => fx.mem_read.map(|(a, _)| a),
                _ => None,
            };
        }
        if let Some((addr, _, _)) = fx.mem_write {
            self.set_mem_label(addr, out_label.clone());
        }

        if let Some((ch, _)) = fx.output {
            let idx = self.output_counts.entry(ch).or_insert(0);
            let label = fx
                .insn
                .data_uses()
                .as_slice()
                .first()
                .map(|r| self.regs[t][r.index()].clone())
                .unwrap_or_default();
            self.output_labels.push((ch, *idx, label));
            *idx += 1;
        }
    }

    /// Label of a register (clean for unseen tids).
    pub fn reg_label(&self, tid: ThreadId, r: Reg) -> T {
        self.regs.get(tid as usize).map(|rs| rs[r.index()].clone()).unwrap_or_default()
    }
}
