//! Taint label lattices.

use dift_isa::{Addr, StmtId};

/// Context available when a label is created or propagated.
#[derive(Clone, Copy, Debug)]
pub struct LabelCtx {
    /// Address of the executing instruction.
    pub addr: Addr,
    /// Global step of the executing instruction.
    pub step: u64,
    /// Source statement of the executing instruction.
    pub stmt: StmtId,
}

/// A taint label. `Default` must be the clean (bottom) element.
pub trait TaintLabel: Clone + PartialEq + Default + std::fmt::Debug {
    /// True when [`Self::propagate`] never reads `ctx.step` — its result
    /// depends only on the sources plus the instruction's address and
    /// statement. The hot-code summary cache
    /// (`crate::summary_cache`) replays a summary recorded at one step
    /// range at later step ranges; its guard pins every input of
    /// `propagate` *except* `ctx.step`, so rebasing is provably exact
    /// only for step-invariant labels (DESIGN.md §13). Labels that
    /// stamp the step must leave this `false` (the conservative
    /// default); the cache then degrades to the plain engine instead of
    /// producing stale step stamps.
    const STEP_INVARIANT: bool = false;

    /// True for the clean/bottom label.
    fn is_clean(&self) -> bool;

    /// Label of a value produced from `sources` by the instruction at
    /// `ctx`. Must return clean when every source is clean.
    ///
    /// Takes labels by slice (not `&[&Self]`) so the engine can pass an
    /// inline scratch array without building a per-instruction `Vec` of
    /// references.
    fn propagate(sources: &[Self], ctx: &LabelCtx) -> Self;

    /// Label created at a taint source (an `In` instruction): `index` is
    /// the running count of words read from `channel`.
    fn source(ctx: &LabelCtx, channel: u16, index: u64) -> Self;

    /// Approximate shadow bytes one stored label costs (memory-overhead
    /// accounting; E7 reports this for lineage sets).
    fn shadow_bytes(&self) -> usize;
}

/// Boolean taint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitTaint(pub bool);

impl TaintLabel for BitTaint {
    /// Boolean OR ignores the context entirely.
    const STEP_INVARIANT: bool = true;

    fn is_clean(&self) -> bool {
        !self.0
    }

    fn propagate(sources: &[Self], _ctx: &LabelCtx) -> Self {
        BitTaint(sources.iter().any(|s| s.0))
    }

    fn source(_ctx: &LabelCtx, _channel: u16, _index: u64) -> Self {
        BitTaint(true)
    }

    fn shadow_bytes(&self) -> usize {
        1
    }
}

/// PC taint (§3.3): zero = untainted; non-zero = `1 + PC` of the most
/// recent instruction that wrote the (tainted) location. On an attack
/// alert this PC points at a root-cause candidate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcTaint(pub u32);

impl PcTaint {
    /// The tainted-writer PC, if tainted.
    pub fn pc(&self) -> Option<Addr> {
        (self.0 != 0).then(|| self.0 - 1)
    }

    pub fn at(addr: Addr) -> PcTaint {
        PcTaint(addr + 1)
    }
}

impl TaintLabel for PcTaint {
    /// The stamp is `ctx.addr` — the guard pins instruction addresses,
    /// so replay at a different step produces the identical label.
    const STEP_INVARIANT: bool = true;

    fn is_clean(&self) -> bool {
        self.0 == 0
    }

    fn propagate(sources: &[Self], ctx: &LabelCtx) -> Self {
        if sources.iter().any(|s| s.0 != 0) {
            // The new value is tainted; its label is the PC of the
            // instruction writing it — the paper's key twist.
            PcTaint::at(ctx.addr)
        } else {
            PcTaint(0)
        }
    }

    fn source(ctx: &LabelCtx, _channel: u16, _index: u64) -> Self {
        PcTaint::at(ctx.addr)
    }

    fn shadow_bytes(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(addr: Addr) -> LabelCtx {
        LabelCtx { addr, step: 0, stmt: 0 }
    }

    #[test]
    fn bit_taint_or_semantics() {
        let t = BitTaint(true);
        let c = BitTaint(false);
        assert!(c.is_clean());
        assert!(!BitTaint::propagate(&[c, c], &ctx(1)).0);
        assert!(BitTaint::propagate(&[c, t], &ctx(1)).0);
        assert!(BitTaint::source(&ctx(1), 0, 0).0);
    }

    #[test]
    fn pc_taint_tracks_most_recent_writer() {
        let t = PcTaint::at(10);
        let c = PcTaint(0);
        assert_eq!(t.pc(), Some(10));
        assert!(c.is_clean());
        // Propagation stamps the *current* PC, not the source's.
        let out = PcTaint::propagate(&[t, c], &ctx(55));
        assert_eq!(out.pc(), Some(55));
        // Clean sources stay clean.
        assert!(PcTaint::propagate(&[c], &ctx(55)).is_clean());
        // PC 0 is representable (shifted encoding).
        assert_eq!(PcTaint::at(0).pc(), Some(0));
    }

    #[test]
    fn shadow_bytes() {
        assert_eq!(BitTaint(true).shadow_bytes(), 1);
        assert_eq!(PcTaint::at(3).shadow_bytes(), 4);
    }
}
