//! Flat paged shadow memory for taint labels.
//!
//! The hot path of software DIFT is the per-instruction shadow lookup:
//! with a `HashMap<MemAddr, T>` every load/store pays a hash plus
//! probing, and peak-memory accounting rescans the whole map. This
//! structure replaces it with a paged dense array: a page table of
//! `Option<Box<Page>>` indexed by `addr / SHADOW_PAGE_WORDS`, where each
//! page is a flat `[T]` slab allocated on the first tainted write into
//! its range and freed as soon as its last tainted word is cleaned.
//!
//! Every mutation maintains running `tainted_words` / `shadow_bytes`
//! counters, so peak tracking is O(1) per write instead of an O(n)
//! rescan — the quadratic-peak-accounting fix rides along for free.

use crate::label::TaintLabel;
use dift_isa::{MemAddr, SHADOW_PAGE_WORDS};

struct Page<T> {
    labels: Box<[T]>,
    /// Tainted words within this page; the page is freed at zero.
    tainted: u32,
}

impl<T: TaintLabel> Page<T> {
    fn new() -> Page<T> {
        Page { labels: (0..SHADOW_PAGE_WORDS).map(|_| T::default()).collect(), tainted: 0 }
    }
}

/// Paged dense shadow array over data memory.
pub struct ShadowMap<T> {
    pages: Vec<Option<Box<Page<T>>>>,
    tainted_words: usize,
    shadow_bytes: usize,
    live_pages: usize,
    page_allocs: u64,
    page_frees: u64,
}

impl<T: TaintLabel> Default for ShadowMap<T> {
    fn default() -> Self {
        ShadowMap::new()
    }
}

impl<T: TaintLabel> ShadowMap<T> {
    pub fn new() -> ShadowMap<T> {
        ShadowMap {
            pages: Vec::new(),
            tainted_words: 0,
            shadow_bytes: 0,
            live_pages: 0,
            page_allocs: 0,
            page_frees: 0,
        }
    }

    /// Reserve page-table slots for `mem_words` of data memory so the
    /// steady state never grows the table. Pages themselves stay
    /// unallocated until tainted.
    pub fn pre_size(&mut self, mem_words: usize) {
        let pages = mem_words.div_ceil(SHADOW_PAGE_WORDS);
        if self.pages.len() < pages {
            self.pages.resize_with(pages, || None);
        }
    }

    #[inline]
    fn split(addr: MemAddr) -> (usize, usize) {
        let a = addr as usize;
        (a / SHADOW_PAGE_WORDS, a % SHADOW_PAGE_WORDS)
    }

    /// Label of `addr`; clean default when the page was never tainted.
    #[inline]
    pub fn get(&self, addr: MemAddr) -> T {
        let (p, off) = Self::split(addr);
        match self.pages.get(p) {
            Some(Some(page)) => page.labels[off].clone(),
            _ => T::default(),
        }
    }

    /// Borrowed label of `addr`, when its page is resident.
    #[inline]
    pub fn get_ref(&self, addr: MemAddr) -> Option<&T> {
        let (p, off) = Self::split(addr);
        match self.pages.get(p) {
            Some(Some(page)) => Some(&page.labels[off]),
            _ => None,
        }
    }

    /// Write `label` at `addr`, maintaining the running counters.
    pub fn set(&mut self, addr: MemAddr, label: T) {
        let (p, off) = Self::split(addr);
        let clean = label.is_clean();
        if p >= self.pages.len() {
            if clean {
                return; // never materialize a page for a clean write
            }
            self.pages.resize_with(p + 1, || None);
        }
        let slot = &mut self.pages[p];
        let page = match slot {
            Some(page) => page,
            None => {
                if clean {
                    return;
                }
                self.live_pages += 1;
                self.page_allocs += 1;
                slot.insert(Box::new(Page::new()))
            }
        };
        let old = &mut page.labels[off];
        match (old.is_clean(), clean) {
            (true, false) => {
                page.tainted += 1;
                self.tainted_words += 1;
                self.shadow_bytes += label.shadow_bytes();
            }
            (false, true) => {
                page.tainted -= 1;
                self.tainted_words -= 1;
                self.shadow_bytes -= old.shadow_bytes();
            }
            (false, false) => {
                self.shadow_bytes += label.shadow_bytes();
                self.shadow_bytes -= old.shadow_bytes();
            }
            (true, true) => return, // clean over clean: nothing to record
        }
        *old = label;
        if page.tainted == 0 {
            // Last tainted word gone — return the page's slab.
            *slot = None;
            self.live_pages -= 1;
            self.page_frees += 1;
        }
    }

    /// Currently tainted words (running counter, O(1)).
    #[inline]
    pub fn tainted_words(&self) -> usize {
        self.tainted_words
    }

    /// Shadow bytes across all currently tainted words (running counter).
    #[inline]
    pub fn shadow_bytes(&self) -> usize {
        self.shadow_bytes
    }

    /// Resident (allocated) shadow pages.
    pub fn live_pages(&self) -> usize {
        self.live_pages
    }

    /// Cumulative page allocations over the map's lifetime.
    pub fn page_allocs(&self) -> u64 {
        self.page_allocs
    }

    /// Cumulative page frees (pages whose last tainted word was cleaned).
    pub fn page_frees(&self) -> u64 {
        self.page_frees
    }

    /// All tainted `(addr, label)` pairs, ascending — for tests and
    /// differential comparison against reference engines.
    pub fn iter_tainted(&self) -> impl Iterator<Item = (MemAddr, &T)> + '_ {
        self.pages.iter().enumerate().flat_map(|(p, page)| {
            page.iter().flat_map(move |page| {
                page.labels
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.is_clean())
                    .map(move |(off, l)| ((p * SHADOW_PAGE_WORDS + off) as MemAddr, l))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{BitTaint, PcTaint};

    #[test]
    fn clean_writes_never_allocate() {
        let mut s = ShadowMap::<BitTaint>::new();
        s.set(0, BitTaint(false));
        s.set(1 << 40, BitTaint(false));
        assert_eq!(s.live_pages(), 0);
        assert_eq!(s.tainted_words(), 0);
        assert!(s.get(0).is_clean());
    }

    #[test]
    fn pages_allocate_on_taint_and_free_when_clean() {
        let mut s = ShadowMap::<BitTaint>::new();
        let a = (3 * SHADOW_PAGE_WORDS + 17) as MemAddr;
        s.set(a, BitTaint(true));
        assert_eq!(s.live_pages(), 1);
        assert_eq!(s.tainted_words(), 1);
        assert!(!s.get(a).is_clean());
        s.set(a, BitTaint(false));
        assert_eq!(s.live_pages(), 0, "emptied page is returned");
        assert_eq!(s.tainted_words(), 0);
        assert_eq!(s.shadow_bytes(), 0);
        // Cumulative churn counters keep counting across alloc/free.
        s.set(a, BitTaint(true));
        assert_eq!(s.page_allocs(), 2);
        assert_eq!(s.page_frees(), 1);
    }

    #[test]
    fn counters_track_label_width() {
        let mut s = ShadowMap::<PcTaint>::new();
        s.set(10, PcTaint::at(1));
        s.set(11, PcTaint::at(2));
        assert_eq!(s.shadow_bytes(), 8);
        s.set(10, PcTaint::at(9)); // tainted -> tainted, same width
        assert_eq!(s.shadow_bytes(), 8);
        s.set(11, PcTaint(0));
        assert_eq!(s.shadow_bytes(), 4);
        assert_eq!(s.tainted_words(), 1);
    }

    #[test]
    fn iter_tainted_is_sorted_and_exact() {
        let mut s = ShadowMap::<BitTaint>::new();
        for &a in &[5u64, 4096 * 2 + 1, 40, 4096 * 2] {
            s.set(a, BitTaint(true));
        }
        s.set(40, BitTaint(false));
        let got: Vec<u64> = s.iter_tainted().map(|(a, _)| a).collect();
        assert_eq!(got, vec![5, 4096 * 2, 4096 * 2 + 1]);
    }

    #[test]
    fn pre_size_reserves_table_only() {
        let mut s = ShadowMap::<BitTaint>::new();
        s.pre_size(1 << 20);
        assert_eq!(s.live_pages(), 0);
        s.set(12345, BitTaint(true));
        assert_eq!(s.live_pages(), 1);
    }
}
