//! The generic DIFT engine (a DBI tool).

use crate::costs;
use crate::label::{LabelCtx, TaintLabel};
use crate::policy::TaintPolicy;
use crate::shadow::ShadowMap;
use dift_dbi::Tool;
use dift_isa::{Addr, MemAddr, Opcode, Reg, NUM_REGS};
use dift_obs::{Metric, NoopRecorder, Recorder};
use dift_vm::{Machine, RunResult, StepEffects, ThreadId};
use std::collections::HashMap;

/// Upper bound on per-instruction source labels: ≤2 data uses (3 for
/// CAS via `reg_uses` shapes), ≤1 address use under pointer-taint, plus
/// the memory-read label — 8 leaves slack for ISA growth. Sized so the
/// hot path gathers sources into an inline array and never allocates.
const MAX_SOURCES: usize = 8;

/// Why an alert fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// Tainted value used as a load address.
    TaintedLoadAddr,
    /// Tainted value used as a store address.
    TaintedStoreAddr,
    /// Tainted value used as an indirect jump/call target.
    TaintedControl,
}

/// One attack-detection alert.
#[derive(Clone, Debug, PartialEq)]
pub struct TaintAlert<T> {
    pub step: u64,
    pub tid: ThreadId,
    /// Instruction that performed the suspicious use.
    pub at: Addr,
    pub kind: AlertKind,
    /// The offending label — for [`crate::PcTaint`] this carries the PC
    /// of the instruction that last wrote the tainted value, i.e. the
    /// root-cause candidate.
    pub label: T,
    /// When the offending register was produced by a load, the memory
    /// cell it came from and that cell's label *at alert time*. For a
    /// memory-overwrite attack this is the paper's root-cause pointer:
    /// the most recent instruction that wrote the corrupted location
    /// (e.g. the overflowing store).
    pub origin: Option<(MemAddr, T)>,
}

/// Engine statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaintStats {
    pub instrs: u64,
    /// Instructions that touched at least one tainted value.
    pub tainted_instrs: u64,
    /// Taint sources created (input words read).
    pub sources: u64,
    /// Peak count of tainted memory words (exact: updated on every
    /// shadow write from the running counter).
    pub peak_tainted_words: usize,
    /// Peak shadow bytes across tainted memory words (exact).
    pub peak_shadow_bytes: usize,
}

/// The DIFT engine, generic over the label lattice and an observability
/// [`Recorder`].
///
/// With the default [`NoopRecorder`] every probe monomorphizes away and
/// the engine compiles to the same machine code as an unprobed one
/// (`crates/bench/benches/obs.rs` keeps that honest). Construct with a
/// live recorder via [`TaintEngine::with_recorder`].
///
/// Fields are crate-visible so the epoch-summary composition pass
/// (`crate::summary`) can splice a summarized window of execution into
/// the engine's state exactly as if it had been processed serially.
pub struct TaintEngine<T: TaintLabel, R: Recorder = NoopRecorder> {
    pub(crate) policy: TaintPolicy,
    /// Origins feed alert root-cause pointers only; when the policy has
    /// every check disabled they are unobservable, so the hot path skips
    /// maintaining them.
    pub(crate) track_origins: bool,
    pub(crate) regs: Vec<Vec<T>>,
    /// Per (tid, reg): the memory cell a register was most recently
    /// loaded from (None after any non-load definition).
    pub(crate) origins: Vec<Vec<Option<MemAddr>>>,
    pub(crate) mem: ShadowMap<T>,
    pub(crate) input_counts: HashMap<u16, u64>,
    pub alerts: Vec<TaintAlert<T>>,
    /// Labels observed at `Out` instructions: `(channel, emit index,
    /// label)` — the lineage of each output word.
    pub output_labels: Vec<(u16, u64, T)>,
    pub(crate) output_counts: HashMap<u16, u64>,
    pub(crate) stats: TaintStats,
    /// The probe sink. Public so callers can drain a live recorder
    /// after a run; with [`NoopRecorder`] it is a ZST.
    pub obs: R,
}

impl<T: TaintLabel> TaintEngine<T> {
    /// Unprobed engine (the default `R = NoopRecorder` is inferred at
    /// existing call sites; default type parameters do not drive fn
    /// inference, which is why `new` lives on this narrower impl).
    pub fn new(policy: TaintPolicy) -> TaintEngine<T> {
        TaintEngine::with_recorder(policy, NoopRecorder)
    }
}

impl<T: TaintLabel, R: Recorder> TaintEngine<T, R> {
    /// Engine wired to a live recorder.
    pub fn with_recorder(policy: TaintPolicy, obs: R) -> TaintEngine<T, R> {
        TaintEngine {
            policy,
            track_origins: policy.check_mem_addr || policy.check_control,
            regs: Vec::new(),
            origins: Vec::new(),
            mem: ShadowMap::new(),
            input_counts: HashMap::new(),
            alerts: Vec::new(),
            output_labels: Vec::new(),
            output_counts: HashMap::new(),
            stats: TaintStats::default(),
            obs,
        }
    }

    /// Gauge the shadow-memory metrics into the recorder. Called from
    /// [`Tool::on_finish`]; direct drivers (the multicore helper) call
    /// it before draining `obs`.
    pub fn flush_obs(&mut self) {
        if R::ENABLED {
            self.obs.gauge(Metric::TaintPageAllocs, self.mem.page_allocs());
            self.obs.gauge(Metric::TaintPageFrees, self.mem.page_frees());
            self.obs.gauge(Metric::TaintLivePages, self.mem.live_pages() as u64);
            self.obs.gauge(Metric::TaintTaintedWords, self.mem.tainted_words() as u64);
            self.obs.gauge(Metric::TaintShadowBytes, self.mem.shadow_bytes() as u64);
        }
    }

    pub fn stats(&self) -> &TaintStats {
        &self.stats
    }

    /// The policy this engine runs under.
    pub fn policy(&self) -> TaintPolicy {
        self.policy
    }

    /// Reserve the shadow page table for `mem_words` of data memory so
    /// the steady-state hot path never grows it. Called automatically
    /// from [`Tool::on_start`]; the multicore helper, which drives
    /// [`Self::process`] directly, calls it with the producer's size.
    pub fn pre_size(&mut self, mem_words: usize) {
        self.mem.pre_size(mem_words);
    }

    /// The memory shadow (tests, differential comparison).
    pub fn shadow(&self) -> &ShadowMap<T> {
        &self.mem
    }

    pub(crate) fn ensure_tid(&mut self, tid: ThreadId) {
        while self.regs.len() <= tid as usize {
            self.regs.push(vec![T::default(); NUM_REGS]);
            self.origins.push(vec![None; NUM_REGS]);
        }
    }

    /// Label of a register (clean default for unseen tids — read-only,
    /// so observing a register never grows engine state).
    pub fn reg_label(&self, tid: ThreadId, r: Reg) -> T {
        self.regs.get(tid as usize).map(|rs| rs[r.index()].clone()).unwrap_or_default()
    }

    /// Label of a memory word (clean if never written tainted).
    pub fn mem_label(&self, addr: MemAddr) -> T {
        self.mem.get(addr)
    }

    #[inline]
    pub(crate) fn set_mem_label(&mut self, addr: MemAddr, label: T) {
        self.mem.set(addr, label);
        // Running counters make peak tracking O(1) per write; the old
        // HashMap engine rescanned the whole map at every new peak.
        if self.mem.tainted_words() > self.stats.peak_tainted_words {
            self.stats.peak_tainted_words = self.mem.tainted_words();
        }
        if self.mem.shadow_bytes() > self.stats.peak_shadow_bytes {
            self.stats.peak_shadow_bytes = self.mem.shadow_bytes();
        }
    }

    /// Externally taint a register (tests, attack setup).
    pub fn taint_reg(&mut self, tid: ThreadId, r: Reg, label: T) {
        self.ensure_tid(tid);
        self.regs[tid as usize][r.index()] = label;
    }

    /// Number of currently tainted memory words.
    pub fn tainted_words(&self) -> usize {
        self.mem.tainted_words()
    }

    /// Process one step's effects — also callable outside the Tool
    /// interface (the multicore helper thread drives this directly).
    ///
    /// Steady-state this performs zero heap allocations: source labels
    /// gather into an inline array, the shadow lookup is two array
    /// indexes, and peaks update from running counters.
    pub fn process(&mut self, fx: &StepEffects) {
        let tid = fx.tid;
        self.ensure_tid(tid);
        self.stats.instrs += 1;
        if R::ENABLED {
            self.obs.add(Metric::TaintProcessCalls, 1);
        }
        let ctx = LabelCtx { addr: fx.addr, step: fx.step, stmt: fx.insn.stmt };

        // Operand queries are pure functions of the opcode — compute
        // each exactly once per step.
        let data_uses = fx.insn.data_uses();
        let addr_uses = fx.insn.addr_uses();

        // Gather source labels into an inline buffer (no allocation).
        let t = tid as usize;
        let mut sources: [T; MAX_SOURCES] = std::array::from_fn(|_| T::default());
        let mut nsrc = 0usize;
        {
            // One outer bounds check for the whole gather.
            let regs_t = &self.regs[t];
            for r in &data_uses {
                debug_assert!(nsrc < MAX_SOURCES, "data-use gather exceeds MAX_SOURCES");
                sources[nsrc] = regs_t[r.index()].clone();
                nsrc += 1;
            }
            if self.policy.propagate_through_addr {
                for r in &addr_uses {
                    debug_assert!(nsrc < MAX_SOURCES, "addr-use gather exceeds MAX_SOURCES");
                    sources[nsrc] = regs_t[r.index()].clone();
                    nsrc += 1;
                }
            }
        }
        if let Some((addr, _)) = fx.mem_read {
            debug_assert!(
                nsrc < MAX_SOURCES,
                "memory-read gather exceeds MAX_SOURCES; widen the budget for this ISA shape"
            );
            sources[nsrc] = self.mem.get(addr);
            nsrc += 1;
        }
        let sources = &sources[..nsrc];
        let any_tainted = sources.iter().any(|s| !s.is_clean());

        // Checks (before the write-side update).
        if self.policy.check_mem_addr || self.policy.check_control {
            for r in &addr_uses {
                let label = &self.regs[t][r.index()];
                if label.is_clean() {
                    continue;
                }
                let kind = match fx.insn.op {
                    Opcode::Load { .. } => AlertKind::TaintedLoadAddr,
                    Opcode::Store { .. } | Opcode::Atomic { .. } | Opcode::Cas { .. } => {
                        AlertKind::TaintedStoreAddr
                    }
                    Opcode::JumpInd { .. } | Opcode::CallInd { .. } => AlertKind::TaintedControl,
                    _ => continue,
                };
                let wanted = match kind {
                    AlertKind::TaintedControl => self.policy.check_control,
                    _ => self.policy.check_mem_addr,
                };
                if wanted {
                    let origin = self.origins[t][r.index()].map(|cell| (cell, self.mem.get(cell)));
                    self.alerts.push(TaintAlert {
                        step: fx.step,
                        tid,
                        at: fx.addr,
                        kind,
                        label: label.clone(),
                        origin,
                    });
                    if R::ENABLED {
                        self.obs.add(Metric::TaintAlerts, 1);
                    }
                }
            }
        }

        // Write-side propagation.
        let is_source = matches!(fx.insn.op, Opcode::In { .. });
        let out_label = if is_source {
            let (ch, _) = fx.input.expect("In always has an input effect");
            let idx = self.input_counts.entry(ch).or_insert(0);
            let l = T::source(&ctx, ch, *idx);
            *idx += 1;
            self.stats.sources += 1;
            l
        } else if any_tainted {
            T::propagate(sources, &ctx)
        } else {
            // The trait contract fixes propagate(all-clean) = clean, so
            // the dominant untainted case skips the lattice join.
            T::default()
        };

        if any_tainted || is_source {
            self.stats.tainted_instrs += 1;
        }
        if R::ENABLED {
            if is_source {
                self.obs.add(Metric::TaintSources, 1);
            }
            if any_tainted {
                self.obs.add(Metric::TaintTaintedSteps, 1);
                self.obs.observe(Metric::TaintJoinWidth, nsrc as u64);
            } else if !is_source {
                self.obs.add(Metric::TaintCleanFastPath, 1);
            }
        }

        if let Some((r, _, _)) = fx.reg_write {
            self.regs[t][r.index()] = out_label.clone();
            if self.track_origins {
                self.origins[t][r.index()] = match fx.insn.op {
                    Opcode::Load { .. } => fx.mem_read.map(|(a, _)| a),
                    _ => None,
                };
            }
        }
        if let Some((addr, _, _)) = fx.mem_write {
            self.set_mem_label(addr, out_label);
        }

        // Output sink labels.
        if let Some((ch, _)) = fx.output {
            let idx = self.output_counts.entry(ch).or_insert(0);
            let label = data_uses
                .as_slice()
                .first()
                .map(|r| self.regs[t][r.index()].clone())
                .unwrap_or_default();
            self.output_labels.push((ch, *idx, label));
            *idx += 1;
        }
    }
}

impl<T: TaintLabel, R: Recorder> Tool for TaintEngine<T, R> {
    fn on_start(&mut self, m: &mut Machine) {
        // Pre-size the shadow page table to the machine's data memory so
        // the steady-state hot path never reallocates it.
        self.mem.pre_size(m.mem_words());
    }

    fn after(&mut self, m: &mut Machine, fx: &StepEffects) {
        if self.policy.charge_cycles {
            let mut c = costs::TAINT_PER_INSN;
            if fx.mem_read.is_some() || fx.mem_write.is_some() {
                c += costs::TAINT_PER_MEM;
            }
            m.charge(c);
        }
        self.process(fx);
    }

    fn on_finish(&mut self, _m: &mut Machine, _r: &RunResult) {
        self.flush_obs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{BitTaint, PcTaint};
    use dift_dbi::Engine;
    use dift_isa::{BinOp, Program, ProgramBuilder};
    use dift_vm::MachineConfig;
    use std::sync::Arc;

    fn run<T: TaintLabel>(
        p: &Arc<Program>,
        policy: TaintPolicy,
        inputs: &[u64],
    ) -> (TaintEngine<T>, dift_vm::RunResult) {
        let mut m = Machine::new(p.clone(), MachineConfig::small());
        m.feed_input(0, inputs);
        let mut engine = Engine::new(m);
        let mut taint = TaintEngine::<T>::new(policy);
        let r = engine.run_tool(&mut taint);
        (taint, r)
    }

    #[test]
    fn taint_flows_input_to_output() {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.bini(BinOp::Mul, Reg(2), Reg(1), 3);
        b.output(Reg(2), 0);
        b.li(Reg(3), 7); // clean
        b.output(Reg(3), 0);
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let (t, r) = run::<BitTaint>(&p, TaintPolicy::propagate_only(), &[5]);
        assert!(r.status.is_clean());
        assert_eq!(t.output_labels.len(), 2);
        assert!(!t.output_labels[0].2.is_clean(), "derived from input");
        assert!(t.output_labels[1].2.is_clean(), "constant");
        assert_eq!(t.stats().sources, 1);
    }

    #[test]
    fn taint_flows_through_memory() {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 200);
        b.store(Reg(1), Reg(2), 0); // mem[200] tainted
        b.load(Reg(3), Reg(2), 0);
        b.output(Reg(3), 0);
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let (t, _) = run::<BitTaint>(&p, TaintPolicy::propagate_only(), &[9]);
        assert!(!t.output_labels[0].2.is_clean());
        assert_eq!(t.tainted_words(), 1);
        assert_eq!(t.stats().peak_tainted_words, 1);
    }

    #[test]
    fn overwrite_with_clean_value_untaints() {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 200);
        b.store(Reg(1), Reg(2), 0); // tainted
        b.li(Reg(3), 0);
        b.store(Reg(3), Reg(2), 0); // clean overwrite
        b.load(Reg(4), Reg(2), 0);
        b.output(Reg(4), 0);
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let (t, _) = run::<BitTaint>(&p, TaintPolicy::propagate_only(), &[9]);
        assert!(t.output_labels[0].2.is_clean());
        assert_eq!(t.tainted_words(), 0);
    }

    #[test]
    fn tainted_indirect_call_raises_control_alert() {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0); // attacker-controlled
        b.call_ind(Reg(1)); // jump through tainted pointer
        b.halt();
        b.func("gadget");
        b.ret();
        let p = Arc::new(b.build().unwrap());
        // Input value = address of `gadget` so the run stays clean.
        let gadget = p.func_by_name("gadget").unwrap();
        let entry = p.funcs()[gadget as usize].entry as u64;
        let (t, r) = run::<BitTaint>(&p, TaintPolicy::default(), &[entry]);
        assert!(r.status.is_clean());
        assert_eq!(t.alerts.len(), 1);
        assert_eq!(t.alerts[0].kind, AlertKind::TaintedControl);
    }

    #[test]
    fn tainted_store_address_raises_alert_with_pc_label() {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0); // 0: tainted index
        b.addi(Reg(2), Reg(1), 100); // 1: tainted address  <- last writer
        b.li(Reg(3), 7);
        b.store(Reg(3), Reg(2), 0); // 3: alert here
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let (t, _) = run::<PcTaint>(&p, TaintPolicy::default(), &[4]);
        assert_eq!(t.alerts.len(), 1);
        let a = &t.alerts[0];
        assert_eq!(a.kind, AlertKind::TaintedStoreAddr);
        assert_eq!(a.at, 3);
        // The PC label names the most recent writer of the tainted value
        // — the addi at address 1, the root-cause candidate.
        assert_eq!(a.label.pc(), Some(1));
    }

    #[test]
    fn pointer_taint_policy_propagates_through_addresses() {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0); // tainted index
        b.li(Reg(2), 100);
        b.add(Reg(3), Reg(2), Reg(1));
        b.load(Reg(4), Reg(3), 0); // value from tainted address
        b.output(Reg(4), 0);
        b.halt();
        b.data(105, 11);
        let p = Arc::new(b.build().unwrap());

        let mut pol = TaintPolicy::propagate_only();
        let (t, _) = run::<BitTaint>(&p, pol, &[5]);
        assert!(t.output_labels[0].2.is_clean(), "no pointer taint by default");

        pol.propagate_through_addr = true;
        let (t2, _) = run::<BitTaint>(&p, pol, &[5]);
        assert!(!t2.output_labels[0].2.is_clean(), "pointer taint flows");
    }

    #[test]
    fn peak_shadow_accounting_is_exact() {
        // Taint three words, clean two, re-taint one: the peak is the
        // *maximum concurrent* count (3), not the final count (2) nor
        // the total ever tainted (4) — and bytes must match exactly.
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0);
        b.li(Reg(2), 200);
        b.store(Reg(1), Reg(2), 0); // mem[200] tainted
        b.store(Reg(1), Reg(2), 1); // mem[201] tainted
        b.store(Reg(1), Reg(2), 2); // mem[202] tainted -> peak 3
        b.li(Reg(3), 0);
        b.store(Reg(3), Reg(2), 0); // clean mem[200]
        b.store(Reg(3), Reg(2), 1); // clean mem[201]
        b.store(Reg(1), Reg(2), 7); // mem[207] tainted (back to 2)
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let (t, _) = run::<PcTaint>(&p, TaintPolicy::propagate_only(), &[9]);
        assert_eq!(t.tainted_words(), 2);
        assert_eq!(t.stats().peak_tainted_words, 3);
        assert_eq!(t.stats().peak_shadow_bytes, 3 * 4, "three PcTaint words at peak");
        assert_eq!(t.shadow().shadow_bytes(), 2 * 4);
    }

    #[test]
    fn unseen_tid_reg_label_is_clean_without_mutation() {
        let e = TaintEngine::<BitTaint>::new(TaintPolicy::default());
        assert!(e.reg_label(7, Reg(3)).is_clean());
        // Read-only observation: no per-thread state materialized.
        assert_eq!(e.tainted_words(), 0);
    }

    #[test]
    fn widest_cas_shape_stays_within_source_budget() {
        // CAS under pointer-taint propagation is the widest gather the
        // ISA produces today: a data use (`new`), an address use
        // (`base`, gathered because `propagate_through_addr` is on), and
        // the memory-read label — all through a tainted pointer, so the
        // address checks fire too. The debug_assert guards in
        // `process()` must hold and the labels must match the reference
        // engine bit for bit.
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.input(Reg(1), 0); // tainted value
        b.input(Reg(2), 0); // tainted index
        b.bini(BinOp::And, Reg(3), Reg(2), 63);
        b.li(Reg(4), 100);
        b.add(Reg(4), Reg(4), Reg(3)); // tainted address
        b.store(Reg(1), Reg(4), 0); // seed tainted memory through it
        b.cas(Reg(5), Reg(4), Reg(1), Reg(1)); // base + expected + new, reads and writes memory
        b.output(Reg(5), 0);
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let pol = TaintPolicy { propagate_through_addr: true, ..Default::default() };

        let mut m = Machine::new(p.clone(), MachineConfig::small());
        m.feed_input(0, &[9, 5]);
        let mut cap_fx: Vec<dift_vm::StepEffects> = Vec::new();
        struct Cap<'a>(&'a mut Vec<dift_vm::StepEffects>);
        impl Tool for Cap<'_> {
            fn after(&mut self, _m: &mut Machine, fx: &dift_vm::StepEffects) {
                self.0.push(fx.clone());
            }
        }
        Engine::new(m).run_tool(&mut Cap(&mut cap_fx));

        let mut fast = TaintEngine::<PcTaint>::new(pol);
        let mut oracle = crate::ReferenceTaintEngine::<PcTaint>::new(pol);
        for fx in &cap_fx {
            fast.process(fx);
            oracle.process(fx);
        }
        // The tainted store address and the tainted CAS address both alert.
        assert_eq!(fast.alerts.len(), 2);
        assert_eq!(fast.alerts[1].kind, AlertKind::TaintedStoreAddr);
        assert!(!fast.output_labels[0].2.is_clean(), "CAS result carries taint");
        assert_eq!(fast.output_labels, oracle.output_labels);
        assert_eq!(fast.alerts, oracle.alerts);
    }

    #[test]
    fn charging_increases_cycles() {
        let mut b = ProgramBuilder::new();
        b.func("main");
        b.li(Reg(1), 5);
        b.li(Reg(2), 6);
        b.add(Reg(3), Reg(1), Reg(2));
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let mut bare = Machine::new(p.clone(), MachineConfig::small());
        let native = bare.run().cycles;
        let (_, r) = run::<BitTaint>(&p, TaintPolicy::default(), &[]);
        assert!(r.cycles > native);
    }

    use dift_isa::Reg;
}
