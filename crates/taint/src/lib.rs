//! # dift-taint — dynamic information flow tracking engines
//!
//! The core DIFT machinery of the paper, generalized over a *label
//! lattice* so one engine serves all three of the paper's instantiations:
//!
//! * [`BitTaint`] — classic boolean taint (§3.3's baseline): a value is
//!   tainted iff any of its sources was.
//! * [`PcTaint`] — the paper's bug-location extension: instead of a
//!   boolean, a tainted location carries **the PC of the most recent
//!   instruction that wrote it**, so an attack alert directly names a
//!   candidate root-cause statement.
//! * lineage sets (`dift-lineage`) — labels are *sets of input
//!   identifiers*, the generalized DIFT of §3.4.
//!
//! The engine ([`TaintEngine`]) is a DBI tool: sources are `In`
//! instructions, propagation follows data uses (optionally address uses —
//! pointer taint — and control, per [`TaintPolicy`]), and the attack
//! detector raises an [`TaintAlert`] whenever tainted data is used as a
//! store/load address or an indirect jump/call target — the "input
//! validation error" policy motivated by the 72 %-of-CVEs observation.

pub mod engine;
pub mod label;
pub mod policy;
pub mod reference;
pub mod shadow;
pub mod summary;

pub use engine::{AlertKind, TaintAlert, TaintEngine, TaintStats};
pub use label::{BitTaint, LabelCtx, PcTaint, TaintLabel};
pub use policy::TaintPolicy;
pub use reference::ReferenceTaintEngine;
pub use shadow::ShadowMap;
pub use summary::{
    process_by_epochs, summarize_epoch, EpochSummarizer, EpochSummary, IoBase, Loc, SymLabel,
};

/// Cycle charges for the software (same-core) DIFT engine. Calibrated so
/// inline software DIFT lands at a few-× slowdown, the regime from which
/// the multicore offload (E3) wins its 48 %.
pub mod costs {
    /// Per-instruction shadow bookkeeping.
    pub const TAINT_PER_INSN: u64 = 6;
    /// Extra per memory-shadow access.
    pub const TAINT_PER_MEM: u64 = 2;
}
