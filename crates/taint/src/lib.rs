//! # dift-taint — dynamic information flow tracking engines
//!
//! The core DIFT machinery of the paper, generalized over a *label
//! lattice* so one engine serves all three of the paper's instantiations:
//!
//! * [`BitTaint`] — classic boolean taint (§3.3's baseline): a value is
//!   tainted iff any of its sources was.
//! * [`PcTaint`] — the paper's bug-location extension: instead of a
//!   boolean, a tainted location carries **the PC of the most recent
//!   instruction that wrote it**, so an attack alert directly names a
//!   candidate root-cause statement.
//! * lineage sets (`dift-lineage`) — labels are *sets of input
//!   identifiers*, the generalized DIFT of §3.4.
//!
//! The engine ([`TaintEngine`]) is a DBI tool: sources are `In`
//! instructions, propagation follows data uses (optionally address uses —
//! pointer taint — and control, per [`TaintPolicy`]), and the attack
//! detector raises an [`TaintAlert`] whenever tainted data is used as a
//! store/load address or an indirect jump/call target — the "input
//! validation error" policy motivated by the 72 %-of-CVEs observation.

pub mod engine;
pub mod label;
pub mod policy;
pub mod reference;
pub mod shadow;
pub mod summary;
pub mod summary_cache;

pub use engine::{AlertKind, TaintAlert, TaintEngine, TaintStats};
pub use label::{BitTaint, LabelCtx, PcTaint, TaintLabel};
pub use policy::TaintPolicy;
pub use reference::ReferenceTaintEngine;
pub use shadow::ShadowMap;
pub use summary::{
    process_by_epochs, summarize_epoch, ApplyMemo, EpochSummarizer, EpochSummary, IoBase, Loc,
    SymLabel,
};
pub use summary_cache::{
    StepOutcome, SummaryCacheConfig, SummaryCacheStats, SummaryCachedEngine, SummaryTool,
};

/// Cycle charges for the software (same-core) DIFT engine. Calibrated so
/// inline software DIFT lands at a few-× slowdown, the regime from which
/// the multicore offload (E3) wins its 48 %.
pub mod costs {
    /// Per-instruction shadow bookkeeping.
    pub const TAINT_PER_INSN: u64 = 6;
    /// Extra per memory-shadow access.
    pub const TAINT_PER_MEM: u64 = 2;
    /// Per-instruction guard comparison on the summary-cache fast path
    /// (a fingerprint compare is far cheaper than shadow propagation).
    pub const SUMMARY_GUARD_PER_INSN: u64 = 1;
    /// Flat cost of composing one cached summary onto the engine.
    pub const SUMMARY_APPLY_BASE: u64 = 16;
    /// Per summary event (shadow write, alert check, output) replayed by
    /// an application.
    pub const SUMMARY_APPLY_PER_EVENT: u64 = 2;
    /// Summarization overhead per instruction while recording a region.
    pub const SUMMARY_RECORD_PER_INSN: u64 = 2;
}
