//! Observability must not perturb semantics: a `TaintEngine` wired to a
//! live `StatsRecorder` must produce bit-identical outputs, alerts, and
//! statistics to the default no-op-instrumented engine, for arbitrary
//! programs. This is the contract that makes the probes safe to leave
//! in the hot path.

use dift_dbi::Engine;
use dift_isa::{BinOp, Program, ProgramBuilder, Reg};
use dift_obs::{Metric, Recorder, StatsRecorder};
use dift_taint::{PcTaint, TaintEngine, TaintPolicy};
use dift_vm::{Machine, MachineConfig};
use proptest::prelude::*;
use std::sync::Arc;

const OPS: [BinOp; 6] = [BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::And, BinOp::Min, BinOp::Shl];

#[derive(Clone, Debug)]
enum Step {
    Alu { op: usize, rd: u8, rs1: u8, rs2: u8 },
    Store { rs: u8, slot: u8 },
    Load { rd: u8, slot: u8 },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..OPS.len(), 1u8..10, 1u8..10, 1u8..10).prop_map(|(op, rd, rs1, rs2)| Step::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..10, 0u8..8).prop_map(|(rs, slot)| Step::Store { rs, slot }),
        (1u8..10, 0u8..8).prop_map(|(rd, slot)| Step::Load { rd, slot }),
    ]
}

fn build(ninputs: usize, steps: &[Step]) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    b.func("main");
    for i in 0..ninputs {
        b.input(Reg(i as u8 + 1), 0);
    }
    b.li(Reg(11), 500);
    for s in steps {
        match s {
            Step::Alu { op, rd, rs1, rs2 } => {
                b.bin(OPS[*op], Reg(*rd), Reg(*rs1), Reg(*rs2));
            }
            Step::Store { rs, slot } => {
                b.store(Reg(*rs), Reg(11), *slot as i64);
            }
            Step::Load { rd, slot } => {
                b.load(Reg(*rd), Reg(11), *slot as i64);
            }
        }
    }
    for i in 1..10u8 {
        b.output(Reg(i), 1);
    }
    b.halt();
    Arc::new(b.build().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Enabled-vs-disabled recorder: identical engine outputs.
    #[test]
    fn recorder_does_not_perturb_semantics(steps in proptest::collection::vec(step(), 1..40)) {
        let p = build(2, &steps);
        let policy = TaintPolicy::default();

        let mut m1 = Machine::new(p.clone(), MachineConfig::small());
        m1.feed_input(0, &[3, 4]);
        let mut plain = TaintEngine::<PcTaint>::new(policy);
        let r1 = Engine::new(m1).run_tool(&mut plain);

        let mut m2 = Machine::new(p, MachineConfig::small());
        m2.feed_input(0, &[3, 4]);
        let mut probed =
            TaintEngine::<PcTaint, StatsRecorder>::with_recorder(policy, StatsRecorder::new());
        let r2 = Engine::new(m2).run_tool(&mut probed);

        prop_assert_eq!(r1.cycles, r2.cycles, "probes must not change modeled time");
        prop_assert_eq!(&plain.output_labels, &probed.output_labels);
        prop_assert_eq!(&plain.alerts, &probed.alerts);
        prop_assert_eq!(plain.stats(), probed.stats());
        prop_assert_eq!(plain.tainted_words(), probed.tainted_words());
        let plain_shadow: Vec<_> =
            plain.shadow().iter_tainted().map(|(a, l)| (a, *l)).collect();
        let probed_shadow: Vec<_> =
            probed.shadow().iter_tainted().map(|(a, l)| (a, *l)).collect();
        prop_assert_eq!(plain_shadow, probed_shadow);

        // And when the feature is on, the recorder agrees with the
        // engine's own counters — the probes observe, not invent.
        if StatsRecorder::ENABLED {
            prop_assert_eq!(
                probed.obs.get(Metric::TaintProcessCalls), probed.stats().instrs
            );
            prop_assert_eq!(probed.obs.get(Metric::TaintSources), probed.stats().sources);
            prop_assert_eq!(
                probed.obs.get(Metric::TaintAlerts) as usize, probed.alerts.len()
            );
            prop_assert_eq!(
                probed.obs.get(Metric::TaintTaintedWords) as usize, probed.tainted_words()
            );
        }
    }
}
