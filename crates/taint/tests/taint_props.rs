//! Property tests on taint propagation.

use dift_dbi::Engine;
use dift_isa::{BinOp, Program, ProgramBuilder, Reg};
use dift_taint::{BitTaint, PcTaint, TaintEngine, TaintLabel, TaintPolicy};
use dift_vm::{Machine, MachineConfig};
use proptest::prelude::*;
use std::sync::Arc;

const OPS: [BinOp; 6] = [BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::And, BinOp::Min, BinOp::Shl];

#[derive(Clone, Debug)]
enum Step {
    Alu { op: usize, rd: u8, rs1: u8, rs2: u8 },
    Store { rs: u8, slot: u8 },
    Load { rd: u8, slot: u8 },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..OPS.len(), 1u8..10, 1u8..10, 1u8..10).prop_map(|(op, rd, rs1, rs2)| Step::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..10, 0u8..8).prop_map(|(rs, slot)| Step::Store { rs, slot }),
        (1u8..10, 0u8..8).prop_map(|(rd, slot)| Step::Load { rd, slot }),
    ]
}

/// Build a program reading `ninputs` words then applying `steps`, then
/// emitting r1..r9 on channel 1.
fn build(ninputs: usize, steps: &[Step]) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    b.func("main");
    for i in 0..ninputs {
        b.input(Reg(i as u8 + 1), 0);
    }
    b.li(Reg(11), 500); // slot base
    for s in steps {
        match s {
            Step::Alu { op, rd, rs1, rs2 } => {
                b.bin(OPS[*op], Reg(*rd), Reg(*rs1), Reg(*rs2));
            }
            Step::Store { rs, slot } => {
                b.store(Reg(*rs), Reg(11), *slot as i64);
            }
            Step::Load { rd, slot } => {
                b.load(Reg(*rd), Reg(11), *slot as i64);
            }
        }
    }
    for i in 1..10u8 {
        b.output(Reg(i), 1);
    }
    b.halt();
    Arc::new(b.build().unwrap())
}

fn run_bits(p: &Arc<Program>, inputs: &[u64]) -> Vec<bool> {
    let mut m = Machine::new(p.clone(), MachineConfig::small());
    m.feed_input(0, inputs);
    let mut t = TaintEngine::<BitTaint>::new(TaintPolicy::propagate_only());
    let mut e = Engine::new(m);
    let r = e.run_tool(&mut t);
    assert!(r.status.is_clean());
    t.output_labels.iter().map(|(_, _, l)| !l.is_clean()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Monotonicity: reading MORE tainted inputs never reduces the set of
    /// tainted outputs (compare 1-input vs 3-input programs with the same
    /// step suffix — the extra reads only add taint).
    #[test]
    fn more_inputs_never_untaint_outputs(steps in proptest::collection::vec(step(), 1..30)) {
        let p1 = build(1, &steps);
        let p3 = build(3, &steps);
        let o1 = run_bits(&p1, &[7]);
        let o3 = run_bits(&p3, &[7, 8, 9]);
        // Registers r2, r3 start tainted in p3 (inputs) instead of clean:
        // anything tainted in the 1-input run must stay tainted in the
        // 3-input run.
        for (i, (&a, &b)) in o1.iter().zip(&o3).enumerate() {
            prop_assert!(!a || b, "output {i} lost taint when inputs grew");
        }
    }

    /// Bit taint and PC taint have identical *taintedness*: a value is
    /// PC-tainted iff it is bit-tainted, for any program.
    #[test]
    fn pc_and_bit_taintedness_coincide(steps in proptest::collection::vec(step(), 1..30)) {
        let p = build(2, &steps);
        let bits = run_bits(&p, &[3, 4]);
        let mut m = Machine::new(p, MachineConfig::small());
        m.feed_input(0, &[3, 4]);
        let mut t = TaintEngine::<PcTaint>::new(TaintPolicy::propagate_only());
        let mut e = Engine::new(m);
        e.run_tool(&mut t);
        let pcs: Vec<bool> = t.output_labels.iter().map(|(_, _, l)| !l.is_clean()).collect();
        prop_assert_eq!(bits, pcs);
    }

    /// A program with no inputs has no taint anywhere, ever.
    #[test]
    fn no_inputs_no_taint(steps in proptest::collection::vec(step(), 1..30)) {
        let p = build(0, &steps);
        let outs = run_bits(&p, &[]);
        prop_assert!(outs.iter().all(|t| !t));
    }
}
