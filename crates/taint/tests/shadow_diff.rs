//! Differential property test: the paged-shadow engine vs the retained
//! HashMap reference oracle.
//!
//! Randomized programs (ALU mixes, direct and *indirect* memory traffic
//! through possibly-tainted addresses) run once; the recorded effects
//! stream drives both engines, which must agree on every observable:
//! output labels, alerts (including origin pointers), live tainted
//! cells, and exact peak statistics.

use dift_dbi::{Engine, Tool};
use dift_isa::{BinOp, Program, ProgramBuilder, Reg};
use dift_taint::{
    process_by_epochs, BitTaint, PcTaint, ReferenceTaintEngine, TaintEngine, TaintLabel,
    TaintPolicy,
};
use dift_vm::{Machine, MachineConfig, StepEffects};
use proptest::prelude::*;
use std::sync::Arc;

const OPS: [BinOp; 6] = [BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::And, BinOp::Min, BinOp::Shl];

#[derive(Clone, Debug)]
enum Step {
    Alu {
        op: usize,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Store {
        rs: u8,
        slot: u8,
    },
    Load {
        rd: u8,
        slot: u8,
    },
    /// Store through an address derived from a (possibly tainted)
    /// register — the alert-generating path.
    StoreVia {
        rs: u8,
    },
    /// Load through a derived address.
    LoadVia {
        rd: u8,
        rs: u8,
    },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..OPS.len(), 1u8..10, 1u8..10, 1u8..10).prop_map(|(op, rd, rs1, rs2)| Step::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..10, 0u8..8).prop_map(|(rs, slot)| Step::Store { rs, slot }),
        (1u8..10, 0u8..8).prop_map(|(rd, slot)| Step::Load { rd, slot }),
        (1u8..10).prop_map(|rs| Step::StoreVia { rs }),
        (1u8..10, 1u8..10).prop_map(|(rd, rs)| Step::LoadVia { rd, rs }),
    ]
}

fn build(ninputs: usize, steps: &[Step]) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    b.func("main");
    for i in 0..ninputs {
        b.input(Reg(i as u8 + 1), 0);
    }
    b.li(Reg(11), 500); // direct-slot base
    for s in steps {
        match s {
            Step::Alu { op, rd, rs1, rs2 } => {
                b.bin(OPS[*op], Reg(*rd), Reg(*rs1), Reg(*rs2));
            }
            Step::Store { rs, slot } => {
                b.store(Reg(*rs), Reg(11), *slot as i64);
            }
            Step::Load { rd, slot } => {
                b.load(Reg(*rd), Reg(11), *slot as i64);
            }
            Step::StoreVia { rs } => {
                // Address = 500 + (r[rs] & 63): stays in-bounds while
                // keeping the source register's taint on the address.
                b.bini(BinOp::And, Reg(12), Reg(*rs), 63);
                b.add(Reg(12), Reg(12), Reg(11));
                b.store(Reg(*rs), Reg(12), 0);
            }
            Step::LoadVia { rd, rs } => {
                b.bini(BinOp::And, Reg(12), Reg(*rs), 63);
                b.add(Reg(12), Reg(12), Reg(11));
                b.load(Reg(*rd), Reg(12), 0);
            }
        }
    }
    for i in 1..10u8 {
        b.output(Reg(i), 1);
    }
    b.halt();
    Arc::new(b.build().unwrap())
}

/// Tool that records the effects stream so both engines can be driven
/// from the identical input.
#[derive(Default)]
struct Capture {
    fxs: Vec<StepEffects>,
}

impl Tool for Capture {
    fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
        self.fxs.push(fx.clone());
    }
}

fn assert_engines_agree<T: TaintLabel>(p: &Arc<Program>, inputs: &[u64], policy: TaintPolicy) {
    let mut m = Machine::new(p.clone(), MachineConfig::small());
    m.feed_input(0, inputs);
    let mem_words = m.mem_words();
    let mut cap = Capture::default();
    Engine::new(m).run_tool(&mut cap);

    let mut fast = TaintEngine::<T>::new(policy);
    fast.pre_size(mem_words);
    let mut oracle = ReferenceTaintEngine::<T>::new(policy);
    for fx in &cap.fxs {
        fast.process(fx);
        oracle.process(fx);
    }

    assert_eq!(fast.output_labels, oracle.output_labels, "output lineage must agree");
    assert_eq!(fast.alerts, oracle.alerts, "alerts (incl. origins) must agree");
    assert_eq!(fast.tainted_words(), oracle.tainted_words());
    let fast_cells: Vec<(u64, T)> =
        fast.shadow().iter_tainted().map(|(a, l)| (a, l.clone())).collect();
    assert_eq!(fast_cells, oracle.tainted_cells(), "live shadow cells must agree");
    assert_eq!(fast.stats(), oracle.stats(), "stats incl. exact peaks must agree");

    // Epoch-parallel summaries composed in order must be bit-identical
    // too: same labels, alerts (with origins), output lineage, live
    // cells, and exact peak statistics, at every epoch granularity.
    for epoch_len in [5usize, 17, 64] {
        let mut epoch = TaintEngine::<T>::new(policy);
        epoch.pre_size(mem_words);
        process_by_epochs(&mut epoch, &cap.fxs, epoch_len);
        assert_eq!(
            epoch.output_labels, oracle.output_labels,
            "epoch_len={epoch_len}: output lineage must agree"
        );
        assert_eq!(epoch.alerts, oracle.alerts, "epoch_len={epoch_len}: alerts must agree");
        assert_eq!(epoch.tainted_words(), oracle.tainted_words(), "epoch_len={epoch_len}");
        let cells: Vec<(u64, T)> =
            epoch.shadow().iter_tainted().map(|(a, l)| (a, l.clone())).collect();
        assert_eq!(cells, oracle.tainted_cells(), "epoch_len={epoch_len}: live cells");
        assert_eq!(epoch.stats(), oracle.stats(), "epoch_len={epoch_len}: stats incl. peaks");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Propagation-only mode: labels and peaks agree for any program.
    #[test]
    fn shadow_map_matches_hashmap_oracle_propagate_only(
        steps in proptest::collection::vec(step(), 1..40),
        inputs in proptest::collection::vec(0u64..1000, 0..4),
    ) {
        let p = build(inputs.len(), &steps);
        assert_engines_agree::<BitTaint>(&p, &inputs, TaintPolicy::propagate_only());
        assert_engines_agree::<PcTaint>(&p, &inputs, TaintPolicy::propagate_only());
    }

    /// Detector mode (alerts on) with pointer taint: the alert stream
    /// and origin pointers agree too.
    #[test]
    fn shadow_map_matches_hashmap_oracle_with_checks(
        steps in proptest::collection::vec(step(), 1..40),
        inputs in proptest::collection::vec(0u64..1000, 1..4),
    ) {
        let p = build(inputs.len(), &steps);
        let mut policy = TaintPolicy::default();
        assert_engines_agree::<PcTaint>(&p, &inputs, policy);
        policy.propagate_through_addr = true;
        assert_engines_agree::<BitTaint>(&p, &inputs, policy);
    }
}
