//! Differential property test: [`SummaryCachedEngine`] vs the plain
//! [`TaintEngine`] on randomized *looped* programs.
//!
//! The cache's contract is behavioral identity — labels, alerts
//! (including origin pointers), live shadow cells, output lineage, and
//! exact peak statistics must match the plain engine bit for bit, no
//! matter how the guards fare. Random loop bodies (ALU mixes, loads and
//! stores against a fixed buffer, tainted-address accesses, divisions
//! that can trap, data-dependent branches that diverge mid-region) run
//! over both a **fixed** scan base (guards hold, summaries apply) and a
//! **moving** one (every sweep's addresses differ, guards must bail),
//! through both the per-step [`SummaryCachedEngine::process`] entry and
//! the batched [`SummaryCachedEngine::process_stream`] entry, pinned
//! and unpinned.

use dift_dbi::{Engine, Tool};
use dift_isa::{BinOp, BranchCond, Program, ProgramBuilder, Reg};
use dift_taint::{
    BitTaint, PcTaint, SummaryCacheConfig, SummaryCachedEngine, TaintEngine, TaintLabel,
    TaintPolicy,
};
use dift_vm::{Machine, MachineConfig, StepEffects};
use proptest::prelude::*;
use std::sync::Arc;

const OPS: [BinOp; 8] =
    [BinOp::Add, BinOp::Xor, BinOp::Mul, BinOp::And, BinOp::Shl, BinOp::Min, BinOp::Div, BinOp::Or];

/// Scan-buffer base; sized so `base + sweeps + 63 < mem_words` for
/// [`MachineConfig::small`].
const BUF: i64 = 500;

/// One random inner-loop statement. Data registers are `R1..=R8`;
/// `R9` = scan base, `R10` = inner index, `R11` = sweeps left,
/// `R12` = scratch address.
#[derive(Clone, Debug)]
enum Stmt {
    Alu {
        op: usize,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// `rd = mem[base + slot]` — fixed slot off the (possibly moving)
    /// scan base.
    Load {
        rd: u8,
        slot: u8,
    },
    /// `mem[base + slot] = rs`.
    Store {
        rs: u8,
        slot: u8,
    },
    /// Store through a data-derived (possibly tainted) address —
    /// the alert path, and per-sweep address variation even under a
    /// fixed base.
    StoreVia {
        rs: u8,
    },
    /// Skip the next statement when `rs1 < rs2` (signed): a
    /// data-dependent branch, so the sweep's path can diverge
    /// mid-region and the guard must bail exactly there.
    SkipIf {
        rs1: u8,
        rs2: u8,
    },
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..OPS.len(), 1u8..9, 1u8..9, 1u8..9).prop_map(|(op, rd, rs1, rs2)| Stmt::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..9, 0u8..8).prop_map(|(rd, slot)| Stmt::Load { rd, slot }),
        (1u8..9, 0u8..8).prop_map(|(rs, slot)| Stmt::Store { rs, slot }),
        (1u8..9).prop_map(|rs| Stmt::StoreVia { rs }),
        (1u8..9, 1u8..9).prop_map(|(rs1, rs2)| Stmt::SkipIf { rs1, rs2 }),
    ]
}

/// Build a looped program: ingest `ninputs` tainted words into the scan
/// buffer, run `sweeps` outer iterations of the random body, emit the
/// data registers. With `moving` the scan base advances one word per
/// sweep, so every sweep's address stream differs and guards must bail.
fn build(ninputs: usize, sweeps: u8, body: &[Stmt], moving: bool) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(Reg(9), BUF);
    for i in 0..ninputs {
        b.input(Reg(13), 0);
        b.store(Reg(13), Reg(9), i as i64);
        b.li(Reg(i as u8 + 1), i as i64 + 3); // seed the data regs too
    }
    b.li(Reg(11), sweeps as i64);
    b.label("sweep");
    // A `SkipIf` branches forward over the next statement; `pending`
    // holds its label until that statement has been emitted.
    let mut pending: Option<String> = None;
    let mut skip = 0usize;
    for s in body {
        if let Stmt::SkipIf { rs1, rs2 } = s {
            if let Some(l) = pending.take() {
                b.label(&l); // consecutive branch: previous one skips nothing
            }
            let l = format!("skip{skip}");
            skip += 1;
            b.branch(BranchCond::Lt, Reg(*rs1), Reg(*rs2), l.as_str());
            pending = Some(l);
            continue;
        }
        match s {
            Stmt::Alu { op, rd, rs1, rs2 } => {
                b.bin(OPS[*op], Reg(*rd), Reg(*rs1), Reg(*rs2));
            }
            Stmt::Load { rd, slot } => {
                b.load(Reg(*rd), Reg(9), *slot as i64);
            }
            Stmt::Store { rs, slot } => {
                b.store(Reg(*rs), Reg(9), *slot as i64);
            }
            Stmt::StoreVia { rs } => {
                // Address = BUF + (r[rs] & 63): in bounds, taint rides
                // on the address register.
                b.bini(BinOp::And, Reg(12), Reg(*rs), 63);
                b.add(Reg(12), Reg(12), Reg(9));
                b.store(Reg(*rs), Reg(12), 0);
            }
            Stmt::SkipIf { .. } => unreachable!("handled above"),
        }
        if let Some(l) = pending.take() {
            b.label(&l);
        }
    }
    if let Some(l) = pending.take() {
        b.label(&l);
    }
    if moving {
        b.addi(Reg(9), Reg(9), 1);
    }
    b.bini(BinOp::Sub, Reg(11), Reg(11), 1);
    b.branch(BranchCond::Ne, Reg(11), Reg(0), "sweep");
    for i in 1..9u8 {
        b.output(Reg(i), 1);
    }
    b.halt();
    Arc::new(b.build().unwrap())
}

#[derive(Default)]
struct Capture {
    fxs: Vec<StepEffects>,
}

impl Tool for Capture {
    fn after(&mut self, _m: &mut Machine, fx: &StepEffects) {
        self.fxs.push(fx.clone());
    }
}

fn capture(p: &Arc<Program>, inputs: &[u64]) -> (Vec<StepEffects>, usize) {
    let mut m = Machine::new(p.clone(), MachineConfig::small());
    m.feed_input(0, inputs);
    let mem_words = m.mem_words();
    let mut cap = Capture::default();
    Engine::new(m).run_tool(&mut cap);
    (cap.fxs, mem_words)
}

fn cache_cfg() -> SummaryCacheConfig {
    SummaryCacheConfig { hot_threshold: 2, ..SummaryCacheConfig::default() }
}

/// Run the cached engine over `stream` in one of the four drive modes
/// and assert every observable matches `plain`. Returns the hit count
/// so callers can assert the cache actually engaged where it must.
fn assert_cached_matches<T: TaintLabel>(
    p: &Arc<Program>,
    stream: &[StepEffects],
    mem_words: usize,
    policy: TaintPolicy,
    plain: &TaintEngine<T>,
    pinned: bool,
    streaming: bool,
) -> u64 {
    let mut cached = SummaryCachedEngine::<T>::new(policy, cache_cfg());
    cached.engine_mut().pre_size(mem_words);
    if pinned {
        cached.pin_program(p);
    }
    if streaming {
        cached.process_stream(stream);
    } else {
        for fx in stream {
            cached.process(fx);
        }
    }
    cached.finish();

    let tag = format!("pinned={pinned} streaming={streaming}");
    let e = cached.engine();
    assert_eq!(e.output_labels, plain.output_labels, "{tag}: output lineage must agree");
    assert_eq!(e.alerts, plain.alerts, "{tag}: alerts (incl. origins) must agree");
    assert_eq!(e.tainted_words(), plain.tainted_words(), "{tag}: tainted words");
    let cached_cells: Vec<(u64, T)> =
        e.shadow().iter_tainted().map(|(a, l)| (a, l.clone())).collect();
    let plain_cells: Vec<(u64, T)> =
        plain.shadow().iter_tainted().map(|(a, l)| (a, l.clone())).collect();
    assert_eq!(cached_cells, plain_cells, "{tag}: live shadow cells must agree");
    assert_eq!(e.stats(), plain.stats(), "{tag}: stats incl. exact peaks must agree");
    cached.stats().hits
}

fn assert_all_modes<T: TaintLabel>(p: &Arc<Program>, inputs: &[u64], policy: TaintPolicy) -> u64 {
    let (stream, mem_words) = capture(p, inputs);
    let mut plain = TaintEngine::<T>::new(policy);
    plain.pre_size(mem_words);
    for fx in &stream {
        plain.process(fx);
    }
    let mut hits = 0;
    for pinned in [false, true] {
        for streaming in [false, true] {
            hits += assert_cached_matches(p, &stream, mem_words, policy, &plain, pinned, streaming);
        }
    }
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fixed scan base: the cacheable regime. Checks-on policy so the
    /// alert stream (tainted stores, tainted addresses) is compared too.
    #[test]
    fn cached_engine_matches_plain_on_fixed_buffers(
        body in proptest::collection::vec(stmt(), 1..16),
        sweeps in 3u8..9,
        inputs in proptest::collection::vec(0u64..1000, 1..5),
    ) {
        let p = build(inputs.len(), sweeps, &body, false);
        assert_all_modes::<BitTaint>(&p, &inputs, TaintPolicy::default());
        assert_all_modes::<PcTaint>(&p, &inputs, TaintPolicy::propagate_only());
    }

    /// Moving scan base: every sweep shifts the address stream, so
    /// guards bail and the fallback path must stay bit-identical.
    #[test]
    fn cached_engine_matches_plain_on_moving_buffers(
        body in proptest::collection::vec(stmt(), 1..16),
        sweeps in 3u8..9,
        inputs in proptest::collection::vec(0u64..1000, 1..5),
    ) {
        let p = build(inputs.len(), sweeps, &body, true);
        assert_all_modes::<BitTaint>(&p, &inputs, TaintPolicy::default());
        let addr = TaintPolicy { propagate_through_addr: true, ..TaintPolicy::default() };
        assert_all_modes::<BitTaint>(&p, &inputs, addr);
    }
}

/// The proptest must not pass vacuously: a branch-free fixed-base body
/// has stable shape, so the cache must actually hit it.
#[test]
fn fixed_buffer_loops_actually_hit_the_cache() {
    let body = vec![
        Stmt::Load { rd: 1, slot: 0 },
        Stmt::Alu { op: 0, rd: 2, rs1: 2, rs2: 1 },
        Stmt::Store { rs: 2, slot: 4 },
    ];
    let p = build(2, 8, &body, false);
    let hits = assert_all_modes::<BitTaint>(&p, &[7, 9], TaintPolicy::default());
    assert!(hits > 0, "shape-stable loop must produce summary hits, got {hits}");
}
