//! Property-based cross-crate tests: determinism and invariants of the
//! substrate that every experiment depends on.

use dift::replay::{record, replay_full, RunSpec};
use dift::vm::{Machine, MachineConfig};
use dift_isa::{BinOp, BranchCond, Program, ProgramBuilder, Reg};
use proptest::prelude::*;
use std::sync::Arc;

/// Generate a small random-but-safe two-thread program: each thread does
/// arithmetic over a private region plus some shared-counter fetch-adds.
fn random_program(ops: &[u8], shared_hits: u8) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.li(Reg(1), 0);
    b.spawn(Reg(5), "worker", Reg(1));
    emit_thread_body(&mut b, ops, shared_hits, 600, "m");
    b.join(Reg(5));
    b.li(Reg(2), 700);
    b.load(Reg(3), Reg(2), 0);
    b.output(Reg(3), 0);
    b.halt();
    b.func("worker");
    emit_thread_body(&mut b, ops, shared_hits, 650, "w");
    b.halt();
    Arc::new(b.build().unwrap())
}

fn emit_thread_body(b: &mut ProgramBuilder, ops: &[u8], shared_hits: u8, base: i64, p: &str) {
    b.li(Reg(10), base);
    b.li(Reg(11), 1);
    b.li(Reg(12), 700); // shared counter
    for (i, op) in ops.iter().enumerate() {
        match op % 5 {
            0 => {
                b.bini(BinOp::Add, Reg(11), Reg(11), (*op as i64) + 1);
            }
            1 => {
                b.store(Reg(11), Reg(10), (i % 8) as i64);
            }
            2 => {
                b.load(Reg(13), Reg(10), (i % 8) as i64);
                b.bin(BinOp::Xor, Reg(11), Reg(11), Reg(13));
            }
            3 => {
                b.bini(BinOp::Mul, Reg(11), Reg(11), 3);
            }
            _ => {
                b.bini(BinOp::And, Reg(11), Reg(11), 0xFFFF);
            }
        }
    }
    for _ in 0..shared_hits {
        b.li(Reg(14), 1);
        b.fetch_add(Reg(15), Reg(12), Reg(14));
    }
    // A small loop to give the scheduler decision points.
    b.li(Reg(16), 4);
    b.label(&format!("{p}_l"));
    b.bini(BinOp::Sub, Reg(16), Reg(16), 1);
    b.branch(BranchCond::Ne, Reg(16), Reg(0), format!("{p}_l"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded run can be recorded and replayed to an identical
    /// outcome — the foundation of §2.2.
    #[test]
    fn any_seeded_run_replays_identically(
        ops in proptest::collection::vec(0u8..250, 1..24),
        shared in 0u8..6,
        seed in 1u64..5000,
    ) {
        let program = random_program(&ops, shared);
        let spec = RunSpec::new(program, MachineConfig::small().with_seed(seed).with_quantum(3));
        let rec = record(&spec, 64);
        prop_assert!(rec.result.status.is_clean());
        let (m, r) = replay_full(&spec, &rec.log);
        prop_assert_eq!(r.steps, rec.result.steps);
        prop_assert_eq!(m.output(0).to_vec(), rec.output0);
    }

    /// The shared counter's final value equals the total fetch-add count
    /// under every schedule (atomicity of the ISA's RMW ops).
    #[test]
    fn fetch_add_total_is_schedule_independent(
        ops in proptest::collection::vec(0u8..250, 1..16),
        shared in 1u8..6,
        seed in 1u64..5000,
    ) {
        let program = random_program(&ops, shared);
        let mut m = Machine::new(program, MachineConfig::small().with_seed(seed).with_quantum(2));
        let r = m.run();
        prop_assert!(r.status.is_clean());
        prop_assert_eq!(m.output(0), &[2 * shared as u64]);
    }

    /// Round-robin and any seeded schedule execute the same per-thread
    /// instruction mix (only the interleaving differs): total steps are
    /// schedule independent for race-free effects.
    #[test]
    fn step_totals_are_schedule_independent(
        ops in proptest::collection::vec(0u8..250, 1..16),
        seed in 1u64..5000,
    ) {
        let program = random_program(&ops, 1);
        let rr = {
            let mut m = Machine::new(program.clone(), MachineConfig::small().with_quantum(3));
            m.run().steps
        };
        let seeded = {
            let mut m = Machine::new(
                program,
                MachineConfig::small().with_seed(seed).with_quantum(3),
            );
            m.run().steps
        };
        prop_assert_eq!(rr, seeded);
    }

    /// Checkpoint/restore at an arbitrary cut point resumes to the same
    /// final state.
    #[test]
    fn checkpoint_cut_points_resume_identically(
        ops in proptest::collection::vec(0u8..250, 1..20),
        cut in 1u64..200,
    ) {
        let program = random_program(&ops, 2);
        let cfg = MachineConfig::small().with_quantum(3);
        let mut reference = Machine::new(program.clone(), cfg.clone());
        reference.run();
        let want = reference.output(0).to_vec();

        let mut m = Machine::new(program.clone(), cfg.clone());
        for _ in 0..cut {
            if m.pending().is_none() {
                break;
            }
            m.step();
        }
        let cp = m.checkpoint();
        let mut resumed = Machine::new(program, cfg);
        resumed.restore(&cp);
        resumed.run();
        prop_assert_eq!(resumed.output(0).to_vec(), want);
    }
}
