//! Cross-crate integration: the full debugging pipelines from the paper,
//! run end to end through the public facade (`dift::*`).

use dift::dbi::Engine;
use dift::ddg::{OnTrac, OnTracConfig};
use dift::replay::{record, reduce, replay_full, replay_reduced_with_tracing, RunSpec};
use dift::slicing::{KindMask, Slicer};
use dift::taint::{BitTaint, PcTaint, TaintEngine, TaintLabel, TaintPolicy};
use dift::vm::{ExitStatus, Machine, MachineConfig};
use dift::workloads::server::{server, ServerConfig};
use dift::workloads::spec::{all_spec, Size};

/// Trace → slice → check: for every SPEC-like kernel, the backward slice
/// of the final output reaches at least one input-ish definition and the
/// slice is closed under dependences.
#[test]
fn trace_then_slice_every_spec_kernel() {
    for w in all_spec(Size::Tiny) {
        let m = w.machine();
        let mem = m.config().mem_words;
        let mut tracer = OnTrac::new(&w.program, mem, OnTracConfig::unoptimized(1 << 24));
        let mut engine = Engine::new(m);
        let r = engine.run_tool(&mut tracer);
        assert!(r.status.is_clean(), "{}: {:?}", w.name, r.status);

        let graph = tracer.graph(&w.program);
        let last = graph.last_step().expect("non-empty graph");
        let slice = Slicer::new(&graph).backward(&[last], KindMask::classic());
        assert!(slice.len() > 2, "{}: slice too small", w.name);

        // Closure invariant: every dependence of a slice member whose
        // kind is traversable leads to another slice member.
        for &s in &slice.steps {
            for d in graph.defs_of(s) {
                if KindMask::classic().allows(d.kind) {
                    assert!(
                        slice.contains_step(d.def),
                        "{}: slice not closed at {} -> {}",
                        w.name,
                        d.user,
                        d.def
                    );
                }
            }
        }
    }
}

/// Record → replay determinism across the whole server workload.
#[test]
fn server_record_replay_round_trip() {
    let w = server(ServerConfig::default());
    let spec = RunSpec { program: w.program.clone(), config: w.config(), inputs: w.inputs.clone() };
    let rec = record(&spec, 500);
    assert!(rec.result.status.is_clean());
    let (m, r) = replay_full(&spec, &rec.log);
    assert_eq!(r.steps, rec.result.steps, "replay step count");
    assert_eq!(
        m.output(1),
        {
            let mut m2 = spec.machine();
            m2.run();
            m2.output(1).to_vec()
        }
        .as_slice()
    );
}

/// The full §2.2 story: buggy server → log → reduce → traced replay →
/// slice from the fault captures the bug's dependences.
#[test]
fn buggy_server_reduction_and_fault_slice() {
    let w = server(ServerConfig { with_bug: true, requests_per_worker: 50, ..Default::default() });
    let spec = RunSpec { program: w.program.clone(), config: w.config(), inputs: w.inputs.clone() };
    let rec = record(&spec, 600);
    let (_, _, _, fstep) = rec.fault.expect("bug fires");
    let plan = reduce(&rec.log, fstep);
    let traced =
        replay_reduced_with_tracing(&spec, &rec.log, &plan, OnTracConfig::unoptimized(1 << 24));
    assert!(matches!(traced.status, ExitStatus::Faulted { .. }));

    // Slice backward from the last traced step (the wild jump's feeder).
    let last = traced.graph.last_step().expect("deps captured");
    let slice = Slicer::new(&traced.graph).backward(&[last], KindMask::classic());
    assert!(!slice.is_empty());
}

/// DIFT engines agree: bit taint and PC taint flag the same instructions
/// (PC taint additionally names writers).
#[test]
fn bit_and_pc_taint_agree_on_alert_sites() {
    for case in dift::attack::all_cases() {
        let run = |policy: TaintPolicy| {
            let mut m = Machine::new(case.program.clone(), MachineConfig::small());
            m.feed_input(0, &case.attack_input);
            let mut bit = TaintEngine::<BitTaint>::new(policy);
            let mut pc = TaintEngine::<PcTaint>::new(policy);
            let mut e = Engine::new(m);
            let mut tools: [&mut dyn dift::dbi::Tool; 2] = [&mut bit, &mut pc];
            e.run(&mut tools);
            (
                bit.alerts.iter().map(|a| (a.step, a.at)).collect::<Vec<_>>(),
                pc.alerts.iter().map(|a| (a.step, a.at)).collect::<Vec<_>>(),
            )
        };
        let (bit_sites, pc_sites) = run(case.policy);
        assert_eq!(bit_sites, pc_sites, "{}", case.name);
        assert!(!bit_sites.is_empty(), "{}", case.name);
    }
}

/// ONTRAC's optimized trace still supports the same slice as the
/// unoptimized one for cross-block dependences (soundness of the
/// optimizations for debugging).
#[test]
fn optimized_trace_preserves_cross_block_slice_membership() {
    let w = dift::workloads::spec::mcf_like(Size::Tiny);
    let run = |cfg: OnTracConfig| {
        let m = w.machine();
        let mem = m.config().mem_words;
        let mut tracer = OnTrac::new(&w.program, mem, cfg);
        let mut engine = Engine::new(m);
        engine.run_tool(&mut tracer);
        tracer.graph(&w.program)
    };
    let full = run(OnTracConfig::unoptimized(1 << 24));
    let opt = run(OnTracConfig::optimized(1 << 24));
    // Redundant-load elision may drop *repeat* loads of a definition, but
    // the first load must survive: every store whose value was consumed
    // (a def referenced by some MemData dependence in the full graph)
    // must still be the def of at least one surviving MemData record.
    let full_defs: std::collections::BTreeSet<u64> = full
        .deps()
        .iter()
        .filter(|d| d.kind == dift::ddg::DepKind::MemData)
        .map(|d| d.def)
        .collect();
    let opt_defs: std::collections::BTreeSet<u64> = opt
        .deps()
        .iter()
        .filter(|d| d.kind == dift::ddg::DepKind::MemData)
        .map(|d| d.def)
        .collect();
    assert!(!full_defs.is_empty());
    let lost: Vec<u64> = full_defs.difference(&opt_defs).copied().collect();
    assert!(
        lost.is_empty(),
        "every consumed store must keep its first-load record; lost defs: {lost:?}"
    );
}

/// Lineage and taint agree on *whether* outputs are input-derived.
#[test]
fn lineage_and_taint_agree_on_input_reachability() {
    use dift::lineage::{BddBackend, LineageEngine};
    let p = dift::workloads::science::binning(32, 8);
    let mut lin = LineageEngine::new(BddBackend::new(12));
    let mut taint = TaintEngine::<BitTaint>::new(TaintPolicy::propagate_only());
    let mut e = Engine::new(p.workload.machine());
    {
        let mut tools: [&mut dyn dift::dbi::Tool; 2] = [&mut lin, &mut taint];
        e.run(&mut tools);
    }
    assert_eq!(lin.outputs.len(), taint.output_labels.len());
    for ((_, idx, elems), (_, tidx, label)) in lin.outputs.iter().zip(&taint.output_labels) {
        assert_eq!(idx, tidx);
        assert_eq!(!elems.is_empty(), !label.is_clean(), "output {idx}");
    }
}
