//! # dift — Scalable Dynamic Information Flow Tracking
//!
//! Root package of the workspace: re-exports [`dift_core`] and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use dift_core::*;
