//! Run the full vulnerability suite under PC-taint DIFT (§3.3): every
//! attack is detected, benign inputs raise no alert, and the PC label (or
//! the corrupted cell's last-writer PC) names the root-cause instruction.
//!
//! ```text
//! cargo run --example attack_detection
//! ```

use dift::attack::{all_cases, evaluate_case};
use dift_isa::disasm;

fn main() {
    for case in all_cases() {
        let report = evaluate_case(&case);
        println!("== {} — {}", case.name, case.description);
        println!("   benign run alerts : {}", report.benign_alerts);
        println!("   attack run alerts : {}", report.attack_alerts);
        let pointed = report.label_pc.or(report.origin_pc);
        if let Some(pc) = pointed {
            let insn = case.program.fetch(pc);
            println!("   PC-taint points at: insn {pc}: {insn}");
        }
        println!(
            "   root cause (insn {}): {}",
            case.root_cause,
            case.program.fetch(case.root_cause)
        );
        println!(
            "   verdict           : detected={} root-cause-hit={}\n",
            report.detected(),
            report.root_cause_hit()
        );
        assert!(report.detected());
    }
    // Show a disassembly snippet of one case for flavour.
    let case = &all_cases()[0];
    println!("--- listing of `{}` ---", case.name);
    let listing = disasm::disassemble(&case.program);
    for line in listing.lines().take(24) {
        println!("{line}");
    }
}
