//! Quickstart: write a program for the DIFT substrate, run it under
//! boolean taint tracking, and watch an alert fire when attacker-derived
//! data reaches a control transfer.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dift::dbi::Engine;
use dift::isa::{ProgramBuilder, Reg};
use dift::taint::{BitTaint, TaintEngine, TaintPolicy};
use dift::vm::{Machine, MachineConfig};
use std::sync::Arc;

fn main() {
    // A tiny program: read a word from input, use it as a jump table
    // index WITHOUT validation, and dispatch through it.
    let mut b = ProgramBuilder::new();
    b.func("main");
    b.input(Reg(1), 0); // attacker-controlled
    b.li(Reg(2), 300); // jump table base
    b.add(Reg(3), Reg(2), Reg(1));
    b.load(Reg(4), Reg(3), 0); // fetch handler address
    b.call_ind(Reg(4)); // dispatch — tainted target!
    b.halt();
    b.func("handler_a");
    b.li(Reg(5), 10);
    b.output(Reg(5), 0);
    b.ret();
    b.func("handler_b");
    b.li(Reg(5), 20);
    b.output(Reg(5), 0);
    b.ret();
    let program = Arc::new(b.build().unwrap());

    // Install the jump table in the data image... via memory writes at
    // startup instead: the builder could also use .data(); here we poke
    // the machine directly to show the API.
    let entry_a = program.func_by_name("handler_a").unwrap();
    let entry_b = program.func_by_name("handler_b").unwrap();
    let addr_a = program.funcs()[entry_a as usize].entry as u64;
    let addr_b = program.funcs()[entry_b as usize].entry as u64;

    let mut machine = Machine::new(program, MachineConfig::small());
    machine.set_mem(300, addr_a).unwrap();
    machine.set_mem(301, addr_b).unwrap();
    machine.feed_input(0, &[1]); // select handler_b

    // Attach the DIFT engine. Pointer taint is on: the handler address is
    // *selected* by the tainted index (a table lookup), so the taint must
    // flow through the load's address operand to reach the dispatch.
    let policy = TaintPolicy { propagate_through_addr: true, ..TaintPolicy::default() };
    let mut taint = TaintEngine::<BitTaint>::new(policy);
    let mut engine = Engine::new(machine);
    let result = engine.run_tool(&mut taint);
    let machine = engine.into_machine();

    println!("run status:       {:?}", result.status);
    println!("program output:   {:?}", machine.output(0));
    println!("instructions:     {}", result.steps);
    println!("alerts raised:    {}", taint.alerts.len());
    for a in &taint.alerts {
        println!("  -> step {} @ insn {}: {:?}", a.step, a.at, a.kind);
    }
    assert!(
        taint.alerts.iter().any(|a| matches!(a.kind, dift::taint::AlertKind::TaintedControl)),
        "the unvalidated dispatch must be flagged"
    );
    println!("\nThe indirect call through input-derived data was detected — the");
    println!("policy the paper builds its attack detection on (§3.3).");
}
