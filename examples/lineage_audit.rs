//! Scientific data validation via lineage tracing (§3.4): run a pipeline
//! whose outputs must be audited, trace the lineage of every output with
//! the roBDD-backed engine, and verify it against ground truth —
//! flagging any output whose provenance is unexpected.
//!
//! ```text
//! cargo run --example lineage_audit
//! ```

use dift::dbi::Engine;
use dift::lineage::{BddBackend, LineageEngine};
use dift::workloads::science::binning;

fn main() {
    // A binning/aggregation pipeline: 64 instrument readings, bins of 8.
    let pipeline = binning(64, 8);
    println!("pipeline: {}", pipeline.workload.name);

    let mut engine = LineageEngine::new(BddBackend::new(12));
    let mut dbi = Engine::new(pipeline.workload.machine());
    let result = dbi.run_tool(&mut engine);
    assert!(result.status.is_clean());

    println!(
        "traced {} instructions, {} set unions, peak shadow {} bytes",
        engine.stats().instrs,
        engine.stats().unions,
        engine.stats().peak_shadow_bytes
    );

    // Audit: every output's lineage must match the pipeline's declared
    // provenance. A mismatch would mean a bug (or contamination) in the
    // external computation — the paper's wet-bench-saving check.
    let mut clean = true;
    for (k, expected) in pipeline.expected_lineage.iter().enumerate() {
        let got = engine.output_lineage(0, k as u64).expect("every output is traced");
        let ok = got == expected.as_slice();
        println!(
            "output {k}: lineage = inputs {:?}{}",
            compress_ranges(got),
            if ok { "" } else { "  <-- UNEXPECTED PROVENANCE" }
        );
        clean &= ok;
    }
    assert!(clean);
    println!("\nAll outputs validated against their declared input provenance.");
}

/// Pretty-print an index list as ranges (the clustering the roBDD
/// exploits is visible right here).
fn compress_ranges(xs: &[u64]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < xs.len() {
        let start = xs[i];
        let mut end = start;
        while i + 1 < xs.len() && xs[i + 1] == end + 1 {
            i += 1;
            end = xs[i];
        }
        out.push(if start == end { format!("{start}") } else { format!("{start}..={end}") });
        i += 1;
    }
    out
}
