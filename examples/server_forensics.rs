//! The MySQL scenario of §2.2, end to end on the synthetic server:
//!
//! 1. run the long multithreaded server with lightweight checkpointing &
//!    logging (the failure strikes late, from a malformed request),
//! 2. analyze the replay log to find the failure-relevant region,
//! 3. deterministically replay only that region with fine-grained tracing,
//! 4. show the dependence count collapsing,
//! 5. search for an environment patch that avoids the fault in future runs.
//!
//! ```text
//! cargo run --example server_forensics
//! ```

use dift::ddg::OnTracConfig;
use dift::replay::{avoid_fault_hinted, record, reduce, replay_reduced_with_tracing, RunSpec};
use dift::workloads::server::{server, ServerConfig};

fn main() {
    let cfg = ServerConfig { with_bug: true, requests_per_worker: 120, ..Default::default() };
    let w = server(cfg);
    let spec = RunSpec { program: w.program.clone(), config: w.config(), inputs: w.inputs.clone() };

    // Phase 1: logging (normal production mode).
    let rec = record(&spec, 2_000);
    let (tid, at, fault, fstep) = rec.fault.expect("the malformed request crashes a worker");
    println!(
        "logged run: {} steps, {} checkpoints, {} events logged",
        rec.result.steps, rec.stats.checkpoints, rec.stats.events_logged
    );
    println!("failure: thread {tid} at insn {at}: {fault} (step {fstep})");

    // Phase 2: execution reduction.
    let plan = reduce(&rec.log, fstep);
    println!(
        "reduction: replay from checkpoint #{} — {:.1}% of the execution",
        plan.cp_index,
        plan.reduction_ratio() * 100.0
    );

    // Phase 3: replay the relevant region with tracing on.
    let traced =
        replay_reduced_with_tracing(&spec, &rec.log, &plan, OnTracConfig::unoptimized(1 << 24));
    println!(
        "replay: status {:?}, {} instructions traced, {} dependences captured",
        traced.status, traced.stats.instrs, traced.stats.deps_recorded
    );
    assert!(
        matches!(traced.status, dift::vm::ExitStatus::Faulted { .. }),
        "the fault must reproduce deterministically"
    );

    // Phase 4: fault avoidance — find an environment patch. The replay
    // log names the last input word the faulting thread consumed; records
    // around it are the prime suspects.
    let suspect =
        rec.log.input_events.iter().rev().find(|(step, t, _)| *t == tid && *step <= fstep).map(
            |(step, _, ch)| {
                let idx =
                    rec.log.input_events.iter().filter(|(s, _, c)| c == ch && s < step).count();
                (*ch, idx)
            },
        );
    println!("suspect input: {suspect:?}");
    let outcome = avoid_fault_hinted(&spec, 256, suspect);
    match outcome.patch {
        Some(patch) => {
            println!("environment patch found after {} attempts: {patch:?}", outcome.attempts);
            println!("future runs consult the patch file and avoid the fault.");
        }
        None => println!("no avoiding alteration found in {} attempts", outcome.attempts),
    }
}
