//! A debugging session on a seeded fault, end to end:
//!
//! 1. trace the failing run with ONTRAC (fixed-size circular buffer),
//! 2. compute the backward dynamic slice of the wrong output,
//! 3. rank the slice with value replacement,
//! 4. report the prime fault candidate.
//!
//! ```text
//! cargo run --example debug_session
//! ```

use dift::dbi::Engine;
use dift::ddg::{OnTrac, OnTracConfig};
use dift::faultloc::{value_replacement_rank, VrConfig};
use dift::slicing::{KindMask, Slicer};
use dift::vm::{Machine, MachineConfig};
use dift_faultloc::suite::wrong_operator;

fn main() {
    // A seeded fault: a running minimum computed with `Max`.
    let case = wrong_operator();
    println!("case: {} (faulty stmt id = {})", case.name, case.faulty_stmt);

    // The failing run.
    let mut machine = Machine::new(case.program.clone(), MachineConfig::small());
    machine.feed_input(0, &case.input);

    // 1. ONTRAC tracing.
    let mem = machine.config().mem_words;
    let mut tracer = OnTrac::new(&case.program, mem, OnTracConfig::unoptimized(1 << 22));
    let mut engine = Engine::new(machine);
    let result = engine.run_tool(&mut tracer);
    let machine = engine.into_machine();
    println!(
        "failing output = {:?} (expected {:?}), {} deps recorded",
        machine.output(0),
        case.expected_output,
        tracer.stats().deps_recorded
    );
    assert!(result.status.is_clean());

    // 2. Backward slice from the output instance.
    let graph = tracer.graph(&case.program);
    let out_step = graph.last_step().expect("graph non-empty");
    let slice = Slicer::new(&graph).backward(&[out_step], KindMask::classic());
    println!("backward slice: {} dynamic steps over {} statements", slice.len(), slice.stmts.len());
    println!("slice contains faulty stmt: {}", slice.contains_stmt(case.faulty_stmt));

    // 3. Value-replacement ranking.
    let vr = value_replacement_rank(
        &case.program,
        &MachineConfig::small(),
        &case.input,
        &case.expected_output,
        VrConfig::default(),
    );
    println!("value replacement performed {} re-executions", vr.runs);
    for (i, (stmt, score)) in vr.ranked.iter().enumerate() {
        let marker = if *stmt == case.faulty_stmt { "  <-- the injected bug" } else { "" };
        println!("  rank {}: stmt {} (score {score}){marker}", i + 1, stmt);
    }
    let rank = vr.rank_of(case.faulty_stmt).expect("fault must be ranked");
    assert!(rank <= 3, "fault should rank near the top");
    println!("\nThe faulty statement ranked #{rank} — the §3.1 workflow reproduced.");
}
