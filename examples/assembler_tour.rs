//! Tour of the toolchain: assemble a program from text, disassemble it
//! back, run it natively, then run it under ONTRAC and slice the output.
//!
//! ```text
//! cargo run --example assembler_tour
//! ```

use dift::dbi::Engine;
use dift::ddg::{OnTrac, OnTracConfig};
use dift::slicing::{KindMask, Slicer};
use dift::vm::{Machine, MachineConfig};
use dift_isa::{assemble, disasm::disassemble};
use std::sync::Arc;

const SOURCE: &str = r"
; dot-product of two 8-element vectors, then a scaled checksum
.func main
    li    r1, 0          ; i
    li    r2, 8          ; n
    li    r3, 100        ; base of vector a
    li    r4, 120        ; base of vector b
    li    r5, 0          ; acc
loop:
    bgeu  r1, r2, done
    add   r6, r3, r1
    ld    r7, (r6)
    add   r6, r4, r1
    ld    r8, (r6)
    mul   r7, r7, r8
    add   r5, r5, r7
    addi  r1, r1, 1
    j     loop
done:
    call  scale
    out   r5, ch0
    halt
.func scale
    shri  r5, r5, 1
    ret
.data 100 1 2 3 4 5 6 7 8
.data 120 8 7 6 5 4 3 2 1
";

fn main() {
    // Assemble.
    let program = Arc::new(assemble(SOURCE).expect("assembles"));
    println!("assembled {} instructions; listing:\n", program.len());
    print!("{}", disassemble(&program));

    // Native run.
    let mut m = Machine::new(program.clone(), MachineConfig::small());
    let r = m.run();
    let dot: u64 = (1..=8u64).map(|i| i * (9 - i)).sum();
    println!("\nnative: output = {:?} (expected {}), {} cycles", m.output(0), dot / 2, r.cycles);
    assert_eq!(m.output(0), &[dot / 2]);

    // Traced run + backward slice of the output.
    let m = Machine::new(program.clone(), MachineConfig::small());
    let mem = m.config().mem_words;
    let mut tracer = OnTrac::new(&program, mem, OnTracConfig::optimized(1 << 22));
    let mut engine = Engine::new(m);
    let traced = engine.run_tool(&mut tracer);
    println!(
        "traced: {} deps recorded, {:.2} B/instr, slowdown {:.1}x",
        tracer.stats().deps_recorded,
        tracer.stats().bytes_per_instr(),
        traced.cycles as f64 / r.cycles as f64,
    );

    let graph = tracer.graph(&program);
    let out_step = graph.last_step().expect("non-empty");
    let slice = Slicer::new(&graph).backward(&[out_step], KindMask::classic());
    println!(
        "backward slice of the output: {} dynamic steps over {} instructions",
        slice.len(),
        slice.addrs.len()
    );
    assert!(slice.len() > 10);
}
