//! Deterministic random stream for case generation.

/// xorshift64* generator. Deliberately deterministic: the same test
/// always sees the same case sequence, so failures reproduce exactly.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test name so each test gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}
