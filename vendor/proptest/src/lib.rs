//! Offline vendored mini-proptest.
//!
//! Implements the slice of proptest this workspace uses: the
//! `proptest!` test macro with `pat in strategy` bindings and an
//! optional `#![proptest_config(...)]`, integer-range / tuple / `Just` /
//! `prop_map` / `prop_oneof!` / `collection::vec` strategies, and the
//! `prop_assert*` / `prop_assume!` macros. Generation is a deterministic
//! xorshift stream (same values every run); there is no shrinking — a
//! failing case panics with the assertion message directly.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Anything usable as the size argument of [`vec`].
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }
    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }
    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end.max(self.start + 1))
        }
    }
    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// `vec(strategy, 1..30)` or `vec(strategy, 11)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }
}

/// Run configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Result of one generated case: either ran to completion or was
/// discarded by `prop_assume!`.
pub enum TestCaseOutcome {
    Ran,
    Discarded,
}

#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Deterministic per-test seed derived from the test name.
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let __outcome = (|| -> $crate::TestCaseOutcome {
                    $crate::proptest!(@bind __rng; $($args)*);
                    $body
                    $crate::TestCaseOutcome::Ran
                })();
                let _ = (__case, __outcome);
            }
        }
    )*};
    // Argument munchers: `pat in strategy` and `name: Type` (Arbitrary).
    (@bind $rng:ident;) => {};
    (@bind $rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $name:ident: $ty:ty) => {
        let $name = <$ty as $crate::strategy::Arbitrary>::arbitrary(&mut $rng);
    };
    (@bind $rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::strategy::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Discard the current case if the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::TestCaseOutcome::Discarded;
        }
    };
}
