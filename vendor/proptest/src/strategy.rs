//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Types with a whole-domain default strategy (`name: Type` arguments
/// in `proptest!`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).saturating_sub(self.start as u64).max(1);
                (self.start as u64 + rng.below(span)) as $t
            }
        }
    )*};
}
uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64).max(1) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize);

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between alternatives (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Result of [`crate::collection::vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max - self.min).max(1) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}
