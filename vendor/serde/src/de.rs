//! Deserialization error plumbing (the slice of `serde::de` used here).

/// Errors constructible from a message, as `serde::de::Error` provides.
pub trait Error: Sized + std::fmt::Debug {
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}
