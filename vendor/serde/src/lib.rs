//! Offline vendored mini-serde.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a small, functional replacement for the slice of
//! serde it actually uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs/enums (including `#[serde(with = "...")]`), and JSON
//! round-trips via the sibling `serde_json` vendor crate.
//!
//! The design collapses serde's visitor architecture into a concrete
//! [`Value`] tree: serializers receive a fully-built `Value`, and
//! deserializers hand one out. That is all the workspace needs.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod value;

pub use value::Value;

/// A type that can serialize itself into a [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Receives a fully-built [`Value`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error: de::Error;
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// Hands out a fully-built [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can deserialize itself from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    match t.serialize(value::ValueSerializer) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Reconstruct a value from a [`Value`] tree (`None` on shape mismatch).
pub fn from_value<T: for<'de> Deserialize<'de>>(v: &Value) -> Option<T> {
    T::deserialize(value::ValueDeserializer::new(v.clone())).ok()
}

// ---- primitive impls ---------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                v.as_u64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| de::Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::I64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                v.as_i64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| de::Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            _ => Err(de::Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            _ => Err(de::Error::custom("expected number")),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}
impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            _ => Err(de::Error::custom("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(|x| to_value(x)).collect()))
    }
}
impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        let seq = v.as_seq().ok_or_else(|| de::Error::custom("expected sequence"))?;
        seq.iter().map(|x| from_value(x).ok_or_else(|| de::Error::custom("bad element"))).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(match self {
            Some(x) => to_value(x),
            None => Value::Null,
        })
    }
}
impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Null => Ok(None),
            other => {
                from_value(&other).map(Some).ok_or_else(|| de::Error::custom("bad option payload"))
            }
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (*self).serialize(s)
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Seq(vec![$(to_value(&self.$n)),+]))
            }
        }
        impl<'de, $($t: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                let v = d.take_value()?;
                let seq = v.as_seq().ok_or_else(|| de::Error::custom("expected tuple"))?;
                Ok(($(
                    from_value(seq.get($n).ok_or_else(|| de::Error::custom("short tuple"))?)
                        .ok_or_else(|| de::Error::custom("bad tuple element"))?,
                )+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// A `Value` serializes as itself — lets hand-built trees flow through
/// generic `Serialize` plumbing (e.g. mixed into derived structs).
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}
impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

/// Map keys serialized as JSON object keys (strings).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Option<Self>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Option<Self> {
        Some(s.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Option<Self> {
                s.parse().ok()
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i64);

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Map(self.iter().map(|(k, v)| (k.to_key(), to_value(v))).collect()))
    }
}
impl<'de, K: MapKey + Ord, V: for<'a> Deserialize<'a>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        let entries = v.as_map().ok_or_else(|| de::Error::custom("expected map"))?;
        entries
            .iter()
            .map(|(k, v)| {
                let key = K::from_key(k).ok_or_else(|| de::Error::custom("bad map key"))?;
                let val = from_value(v).ok_or_else(|| de::Error::custom("bad map value"))?;
                Ok((key, val))
            })
            .collect()
    }
}
