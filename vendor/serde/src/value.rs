//! The concrete data-model tree all (de)serialization flows through.

use crate::de;

/// A JSON-shaped value tree. Maps preserve insertion order so emitted
/// JSON is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a struct field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Interpret a single-entry map as an enum variant `(name, payload)`.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self.as_map()? {
            [(k, v)] => Some((k.as_str(), v)),
            _ => None,
        }
    }
}

/// Serializer whose output *is* the [`Value`] tree. Infallible.
pub struct ValueSerializer;

/// The uninhabited error of [`ValueSerializer`].
#[derive(Debug)]
pub enum NoError {}

impl de::Error for NoError {
    fn custom<T: std::fmt::Display>(_msg: T) -> Self {
        unreachable!("ValueSerializer never fails")
    }
}

impl crate::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = NoError;
    fn serialize_value(self, v: Value) -> Result<Value, NoError> {
        Ok(v)
    }
}

/// Deserializer reading back out of a [`Value`] tree.
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    pub fn new(value: Value) -> ValueDeserializer {
        ValueDeserializer { value }
    }
}

/// Error for [`ValueDeserializer`].
#[derive(Debug)]
pub struct ValueError(pub String);

impl de::Error for ValueError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl std::fmt::Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<'de> crate::Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;
    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.value)
    }
}
