//! Offline vendored mini-crossbeam: just the bounded MPMC-ish channel
//! surface the workspace uses, backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Bounded channel; `send` blocks when the buffer is full, matching
    /// crossbeam's backpressure semantics.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender { tx: Tx::Bounded(tx) }, Receiver { rx })
    }

    /// Unbounded channel; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { tx: Tx::Unbounded(tx) }, Receiver { rx })
    }

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
            }
        }
    }

    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { tx: self.tx.clone() }
        }
    }

    /// Why a `send_timeout` gave the value back.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The buffer stayed full for the whole timeout.
        Timeout(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    impl<T> Sender<T> {
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Bounded(tx) => tx.send(v),
                Tx::Unbounded(tx) => tx.send(v),
            }
        }

        /// Bounded-channel send that gives up (returning the value) if
        /// the buffer stays full past `timeout` — the primitive a
        /// producer needs to survive a consumer that stopped draining.
        /// Polls `try_send` with a short sleep; precise enough for
        /// stall detection, which works in tens of milliseconds.
        pub fn send_timeout(&self, v: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let tx = match &self.tx {
                Tx::Bounded(tx) => tx,
                Tx::Unbounded(tx) => {
                    return tx.send(v).map_err(|e| SendTimeoutError::Disconnected(e.0))
                }
            };
            let deadline = Instant::now() + timeout;
            let mut v = v;
            loop {
                match tx.try_send(v) {
                    Ok(()) => return Ok(()),
                    Err(mpsc::TrySendError::Disconnected(back)) => {
                        return Err(SendTimeoutError::Disconnected(back));
                    }
                    Err(mpsc::TrySendError::Full(back)) => {
                        if Instant::now() >= deadline {
                            return Err(SendTimeoutError::Timeout(back));
                        }
                        v = back;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
        }
    }

    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout)
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.rx.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_timeout_returns_the_value_when_full() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            match tx.send_timeout(2, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(v)) => assert_eq!(v, 2),
                other => panic!("expected timeout, got {other:?}"),
            }
            assert_eq!(rx.recv().unwrap(), 1);
            tx.send_timeout(3, Duration::from_millis(10)).unwrap();
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn send_timeout_reports_disconnect() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(matches!(
                tx.send_timeout(1, Duration::from_millis(5)),
                Err(SendTimeoutError::Disconnected(1))
            ));
        }

        #[test]
        fn unbounded_never_blocks() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), 0);
        }
    }
}
