//! Offline vendored mini-crossbeam: just the bounded MPMC-ish channel
//! surface the workspace uses, backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Bounded channel; `send` blocks when the buffer is full, matching
    /// crossbeam's backpressure semantics.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender { tx }, Receiver { rx })
    }

    pub struct Sender<T> {
        tx: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { tx: self.tx.clone() }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            self.tx.send(v)
        }
    }

    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.rx.iter()
        }
    }
}
