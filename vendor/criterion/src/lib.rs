//! Offline vendored mini-criterion.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group`
//! surface the workspace benches use, but measures with plain
//! `std::time::Instant` and prints one line per benchmark. Honors
//! `sample_size` and `measurement_time` loosely; no statistics, plots,
//! or baselines. In `cargo test` mode (bench binaries built as tests)
//! the loop is short enough to be instant.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    /// Quick mode: single sample per bench (used when run under
    /// `cargo test`, where bench bodies only need to be exercised).
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Criterion's harness=false binaries receive `--bench` from
        // `cargo bench` and `--test` from `cargo test --benches`.
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_millis(1000),
            quick: self.quick,
            _crit: std::marker::PhantomData,
        }
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(name, &mut f);
        g.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    quick: bool,
    _crit: std::marker::PhantomData<&'a ()>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        if self.quick {
            f(&mut b);
        } else {
            let deadline = Instant::now() + self.measurement_time;
            for _ in 0..self.sample_size {
                f(&mut b);
                if Instant::now() >= deadline {
                    break;
                }
            }
        }
        let per_iter = if b.iters > 0 { b.elapsed.as_nanos() as f64 / b.iters as f64 } else { 0.0 };
        let label = if self.name.is_empty() { name } else { format!("{}/{}", self.name, name) };
        println!("bench: {label:<40} {per_iter:>14.1} ns/iter ({} iters)", b.iters);
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one closure invocation (repeated by the harness loop).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
