//! Offline vendored mini serde_json: serializes the mini-serde [`Value`]
//! tree to JSON text and parses JSON text back into one.

pub use serde::Value;
use serde::{de, Deserialize, Serialize};

/// Error type for both serialization (infallible in practice) and parsing.
#[derive(Debug)]
pub struct Error(pub String);

impl de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---- writing -----------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: whole floats print with a trailing `.0`.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

pub fn to_string<T: Serialize + ?Sized>(t: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&serde::to_value(t), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(t: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&serde::to_value(t), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(t: &T) -> Result<Vec<u8>> {
    to_string(t).map(String::into_bytes)
}

// ---- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("bad utf8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(&b'e') | Some(&b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(&b'+') | Some(&b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).or_else(|_| self.err("bad float"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).or_else(|_| self.err("bad int"))
        } else {
            text.parse::<u64>().map(Value::U64).or_else(|_| self.err("bad uint"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }
}

pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    serde::from_value(&v).ok_or_else(|| Error("shape mismatch".into()))
}

pub fn from_slice<T: for<'de> Deserialize<'de>>(b: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(b).map_err(|_| Error("invalid utf8".into()))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::I64(-2), Value::Null])),
            ("b".into(), Value::Str("x\"y\n".into())),
            ("c".into(), Value::F64(1.5)),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        let mut p = Parser::new(&out);
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn whole_floats_keep_point() {
        let mut out = String::new();
        write_value(&Value::F64(2.0), &mut out, None, 0);
        assert_eq!(out, "2.0");
    }
}
