//! `#[derive(Serialize, Deserialize)]` for the vendored mini-serde.
//!
//! Implemented directly on `proc_macro` token trees (the offline build
//! has no `syn`/`quote`): a small parser extracts the item's shape —
//! struct with named fields, tuple struct, or enum with unit / tuple /
//! struct variants — and code is generated as formatted strings. The
//! only field attribute honoured is `#[serde(with = "module")]`, which
//! routes that field through `module::serialize` / `module::deserialize`
//! exactly like real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- item model --------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(with = "...")]` module path, if present.
    with: Option<String>,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

// ---- parsing -----------------------------------------------------------

/// Extract `with = "..."` from a `#[serde(...)]` attribute body.
fn serde_with(group: &proc_macro::Group) -> Option<String> {
    let mut trees = group.stream().into_iter();
    match trees.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match trees.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let mut it = inner.stream().into_iter();
    while let Some(t) = it.next() {
        if let TokenTree::Ident(i) = &t {
            if i.to_string() == "with" {
                // `with = "module"`
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (it.next(), it.next())
                {
                    if eq.as_char() == '=' {
                        let s = lit.to_string();
                        return Some(s.trim_matches('"').to_string());
                    }
                }
            }
        }
    }
    None
}

/// Split a token list on top-level commas, tracking `<...>` depth so
/// multi-parameter generics like `BTreeMap<String, Addr>` stay whole.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse one named field: attrs, optional visibility, `name: Type`.
fn parse_field(tokens: &[TokenTree]) -> Option<Field> {
    let mut with = None;
    let mut i = 0;
    // Attributes.
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g)) if p.as_char() == '#' => {
                if let Some(w) = serde_with(g) {
                    with = Some(w);
                }
                i += 2;
            }
            _ => break,
        }
    }
    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    // `name : Type`
    match (&tokens.get(i), &tokens.get(i + 1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Punct(c))) if c.as_char() == ':' => {
            Some(Field { name: name.to_string(), with })
        }
        _ => None,
    }
}

fn parse_variant(tokens: &[TokenTree]) -> Option<Variant> {
    let mut i = 0;
    // Skip attributes (doc comments etc.).
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(_)) if p.as_char() == '#' => i += 2,
            _ => break,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    let shape = match tokens.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            VariantShape::Tuple(split_commas(&inner).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let fields = split_commas(&inner).iter().filter_map(|f| parse_field(f)).collect();
            VariantShape::Struct(fields)
        }
        _ => VariantShape::Unit,
    };
    Some(Variant { name, shape })
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match (&tokens.get(i), &tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(_))) if p.as_char() == '#' => i += 2,
            _ => break,
        }
    }
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected struct or enum".into()),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 2;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("mini-serde derive does not support generics on `{name}`"));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        _ => return Err(format!("expected a body for `{name}`")),
    };
    let inner: Vec<TokenTree> = body.stream().into_iter().collect();
    match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => {
            let fields = split_commas(&inner).iter().filter_map(|f| parse_field(f)).collect();
            Ok(Item::Struct { name, fields })
        }
        ("struct", Delimiter::Parenthesis) => {
            Ok(Item::TupleStruct { name, arity: split_commas(&inner).len() })
        }
        ("enum", Delimiter::Brace) => {
            let variants = split_commas(&inner).iter().filter_map(|v| parse_variant(v)).collect();
            Ok(Item::Enum { name, variants })
        }
        _ => Err(format!("unsupported item shape for `{name}`")),
    }
}

// ---- codegen -----------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                let fname = &f.name;
                match &f.with {
                    Some(module) => pushes.push_str(&format!(
                        "__m.push((\"{fname}\".to_string(), match {module}::serialize(&self.{fname}, ::serde::value::ValueSerializer) {{ Ok(v) => v, Err(e) => match e {{}} }}));\n"
                    )),
                    None => pushes.push_str(&format!(
                        "__m.push((\"{fname}\".to_string(), ::serde::to_value(&self.{fname})));\n"
                    )),
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize<S: ::serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {{
                        let mut __m: Vec<(String, ::serde::Value)> = Vec::new();
                        {pushes}
                        ::serde::Serializer::serialize_value(s, ::serde::Value::Map(__m))
                    }}
                }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> =
                    (0..*arity).map(|i| format!("::serde::to_value(&self.{i})")).collect();
                format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize<S: ::serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {{
                        ::serde::Serializer::serialize_value(s, {body})
                    }}
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> =
                                binds.iter().map(|b| format!("::serde::to_value({b})")).collect();
                            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let elems: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{0}\".to_string(), ::serde::to_value({0}))", f.name)
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn serialize<S: ::serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {{
                        let __v = match self {{ {arms} }};
                        ::serde::Serializer::serialize_value(s, __v)
                    }}
                }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                match &f.with {
                    Some(module) => inits.push_str(&format!(
                        "{fname}: {module}::deserialize(::serde::value::ValueDeserializer::new(__v.field(\"{fname}\")?.clone())).ok()?,\n"
                    )),
                    None => inits.push_str(&format!(
                        "{fname}: ::serde::from_value(__v.field(\"{fname}\")?)?,\n"
                    )),
                }
            }
            (name, format!("Some({name} {{ {inits} }})"))
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Some({name}(::serde::from_value(&__v)?))")
            } else {
                let elems: Vec<String> =
                    (0..*arity).map(|i| format!("::serde::from_value(__seq.get({i})?)?")).collect();
                format!("{{ let __seq = __v.as_seq()?; Some({name}({})) }}", elems.join(", "))
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Some({name}::{vname}),\n"))
                    }
                    VariantShape::Tuple(arity) => {
                        let ctor = if *arity == 1 {
                            format!("Some({name}::{vname}(::serde::from_value(__inner)?))")
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::from_value(__seq.get({i})?)?"))
                                .collect();
                            format!(
                                "{{ let __seq = __inner.as_seq()?; Some({name}::{vname}({})) }}",
                                elems.join(", ")
                            )
                        };
                        payload_arms.push_str(&format!("\"{vname}\" => {ctor},\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{0}: ::serde::from_value(__inner.field(\"{0}\")?)?",
                                    f.name
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => Some({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "{{
                    if let Some(__s) = __v.as_str() {{
                        return match __s {{ {unit_arms} _ => None }};
                    }}
                    let (__k, __inner) = __v.as_variant()?;
                    match __k {{ {payload_arms} _ => None }}
                }}"
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{
            fn deserialize<D: ::serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {{
                let __v = ::serde::Deserializer::take_value(d)?;
                let __r: Option<Self> = (|| {body})();
                match __r {{
                    Some(x) => Ok(x),
                    None => Err(<D::Error as ::serde::de::Error>::custom(\"invalid {name}\")),
                }}
            }}
        }}"
    )
}

fn emit(result: Result<String, String>) -> TokenStream {
    match result {
        Ok(code) => code.parse().expect("mini-serde derive generated invalid code"),
        Err(msg) => format!("compile_error!(\"{msg}\");").parse().unwrap(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(parse_item(input).map(|item| gen_serialize(&item)))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(parse_item(input).map(|item| gen_deserialize(&item)))
}
