//! Offline vendored mini-bytes: `BytesMut` as a thin wrapper over
//! `Vec<u8>` plus the `Buf`/`BufMut` methods the workspace uses.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Consuming reads; implemented for `&[u8]` so decoders can walk a
/// reborrowed slice.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("buffer underflow");
        *self = rest;
        *first
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_be_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }

    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let v = u64::from_be_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }
}

/// Appending writes.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}
